"""Extension ablation: the full component grid on one target.

Beyond the paper's Fig 5, this crosses SUFE and DAAN independently:
full model / w/o SUFE / w/o DA / w/o both, isolating each module's
contribution (DESIGN.md §4).
"""

from repro.evaluation.tables import format_series

from common import FAST_CONFIG, PUBLIC_GROUP, emit, make_experiment

VARIANTS = [
    ("full", dict()),
    ("w/o SUFE", dict(use_sufe=False)),
    ("w/o DA", dict(use_da=False)),
    ("w/o both", dict(use_sufe=False, use_da=False)),
]


def test_component_grid(benchmark):
    experiment = make_experiment("bgl", PUBLIC_GROUP, seed=85)
    experiment.prepare()

    def run_grid():
        return [
            100.0 * experiment.run_logsynergy(
                FAST_CONFIG.with_overrides(**overrides),
                method_name=f"LogSynergy {name}",
            ).metrics.f1
            for name, overrides in VARIANTS
        ]

    f1s = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    emit("ablation_components", format_series(
        "Extension: SUFE x DAAN component grid on BGL (F1 %)",
        [name for name, _ in VARIANTS], {"F1": f1s}, x_label="variant",
    ))
    # Shape: the full model is not meaningfully beaten by stripped variants.
    assert f1s[0] >= max(f1s[1:]) - 5.0, f"full model should lead (got {f1s})"
