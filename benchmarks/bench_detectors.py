"""Detector portfolio benchmark: per-scenario F1, member vs ensemble.

Each scenario from the catalog (steady traffic, a volume storm of
normal-looking lines, ramping template drift, a seasonal rate swing and
the day-0 stream — a never-catalogued system with no trained model)
is fuzzed into a labeled stream, then scored window-by-window by every
solo member and by the default ensemble spec.  The point of the table
is the paper's day-0 story: with zero training data the model member
degrades on every call, yet the unsupervised portfolio keeps the F1
above the floor the fuzz invariant enforces.

Written machine-readable as BENCH_detectors.json at the repo root.
``--smoke`` runs only the day-0 scenario, asserts the floor, and
writes no files (the seconds-scale pass used by scripts/smoke.sh).
"""

import sys

import numpy as np

from repro.detectors import DEFAULT_DETECTORS_SPEC, ensemble_from_spec
from repro.evaluation.metrics import binary_metrics
from repro.obs import MetricsRegistry
from repro.testing.fuzzer import LogStreamFuzzer

from common import emit, emit_json

SEED = 7
WINDOW = 10
STEP = 5
MEMBERS = ("ewma", "lof", "rules", "model")
# Must match repro.testing.invariants.DAY0_F1_FLOOR — the same bar the
# fuzz suite enforces per-episode.
DAY0_F1_FLOOR = 0.6


def _stream(scenario: str):
    if scenario == "day0":
        # The invariant-suite day-0 recipe: a fresh system name speaking
        # an existing dialect, no catalog entry, no trained model.
        fuzzer = LogStreamFuzzer(
            systems=("day0",), dialects={"day0": "bgl"},
            lines_per_system=160, anomaly_bursts=4, burst_length=(3, 6),
            parameter_noise=0.1,
        )
    else:
        fuzzer = LogStreamFuzzer(
            systems=("bgl",), lines_per_system=240, anomaly_bursts=3,
            burst_length=(3, 6), parameter_noise=0.1, scenario=scenario,
        )
    return fuzzer.generate(SEED)


def _windows(records):
    return [records[start:start + WINDOW]
            for start in range(0, len(records) - WINDOW + 1, STEP)]


def _f1(stream, spec: str) -> tuple[float, int]:
    """Window F1 of a fresh ensemble over the stream, plus the degraded
    model-member consultation count (0 unless the spec includes it)."""
    ensemble = ensemble_from_spec(spec, registry=MetricsRegistry())
    truth = stream.expected_window_labels(WINDOW, STEP)
    y_true, y_pred = [], []
    for system, records in stream.by_system().items():
        scores = ensemble.score_windows(system, _windows(records))
        for ordinal, score in enumerate(scores):
            y_true.append(int(truth[system][ordinal]))
            y_pred.append(int(score > ensemble.threshold))
    f1 = binary_metrics(np.array(y_true), np.array(y_pred)).f1
    errors = (ensemble.member_error_count("model")
              if any(m.name == "model" for m in ensemble.members) else 0)
    return f1, errors


SCENARIOS = ("steady", "volume-burst", "template-drift", "seasonal", "day0")


def _score_scenario(scenario: str) -> dict:
    stream = _stream(scenario)
    row = {"scenario": scenario,
           "records": len(stream.records),
           "members": {}}
    for name in MEMBERS:
        f1, _ = _f1(stream, f"{name}:max")
        row["members"][name] = round(f1, 3)
    ensemble_f1, model_errors = _f1(stream, DEFAULT_DETECTORS_SPEC)
    row["ensemble_f1"] = round(ensemble_f1, 3)
    row["degraded_model_calls"] = model_errors
    return row


def smoke() -> None:
    """Day-0 only: the portfolio must clear the fuzz-suite floor with
    the model member degrading on every consultation."""
    row = _score_scenario("day0")
    print(f"day-0 ensemble F1 {row['ensemble_f1']:.3f} "
          f"(floor {DAY0_F1_FLOOR:.2f}, "
          f"{row['degraded_model_calls']} degraded model calls)")
    assert row["degraded_model_calls"] > 0, \
        "day-0 must exercise the no-pipeline model path"
    assert row["ensemble_f1"] >= DAY0_F1_FLOOR, \
        f"day-0 F1 {row['ensemble_f1']:.3f} below floor {DAY0_F1_FLOOR:.2f}"


def test_detector_portfolio():
    rows = [_score_scenario(scenario) for scenario in SCENARIOS]

    lines = [
        "Detector portfolio benchmark (window F1 per scenario, seed "
        f"{SEED}, window={WINDOW} step={STEP})",
        f"{'scenario':<16} " +
        " ".join(f"{name:>7}" for name in MEMBERS) +
        f" {'ensemble':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:<16} " +
            " ".join(f"{row['members'][name]:>7.3f}" for name in MEMBERS) +
            f" {row['ensemble_f1']:>9.3f}"
        )
    day0 = next(row for row in rows if row["scenario"] == "day0")
    lines.append(
        f"day-0 floor                 : ensemble {day0['ensemble_f1']:.3f} "
        f">= {DAY0_F1_FLOOR:.2f} with {day0['degraded_model_calls']} "
        "degraded model calls")
    emit("detectors", "\n".join(lines))
    emit_json("detectors", {
        "benchmark": "detector_portfolio",
        "workload": {
            "seed": SEED,
            "window": WINDOW,
            "step": STEP,
            "spec": DEFAULT_DETECTORS_SPEC,
        },
        "results": rows,
        "day0_floor": DAY0_F1_FLOOR,
    })

    assert day0["degraded_model_calls"] > 0
    assert day0["ensemble_f1"] >= DAY0_F1_FLOOR
    # The combiner never loses to its own worst unsupervised member.
    for row in rows:
        worst = min(row["members"][name] for name in ("ewma", "lof", "rules"))
        assert row["ensemble_f1"] >= worst - 1e-9, row["scenario"]


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_detector_portfolio()
