"""§VI deployment benchmarks: online pipeline throughput, pattern-library
gating, and the deployment-efficiency comparison (§VI-C1).

Reproduction targets: the pattern library absorbs a meaningful fraction of
windows on a production-shaped (repetitive) stream; end-to-end deployment
time undercuts the rule-based timeline by >90 %.

Timing comes from the ``repro.obs`` registry the service runs under — a
span around ``process`` for wall time plus the service's own per-window
latency histogram — rather than hand-rolled ``perf_counter`` bookkeeping.
"""

from repro.deploy import OnlineService, deployment_speedup
from repro.evaluation.splits import continuous_target_split, source_training_slice
from repro.core import LogSynergy
from repro.logs import LogGenerator, build_dataset
from repro.obs import MetricsRegistry, use_registry

from common import FAST_CONFIG, emit

_STREAM_LINES = 6000


def _fit_model():
    datasets = {
        name: build_dataset(name, scale=0.003, seed=index)
        for index, name in enumerate(["bgl", "spirit", "thunderbird"])
    }
    sources = {
        name: source_training_slice(ds.sequences, 500)
        for name, ds in datasets.items() if name != "thunderbird"
    }
    split = continuous_target_split(datasets["thunderbird"].sequences, 80)
    model = LogSynergy(FAST_CONFIG.with_overrides(epochs=6))
    model.fit(sources, "thunderbird", split.train)
    return model


def test_deployment_online_pipeline(benchmark):
    model = _fit_model()
    stream = LogGenerator("thunderbird", seed=70, repeat_probability=0.9).generate(_STREAM_LINES)

    def run():
        registry = MetricsRegistry()
        with use_registry(registry):
            service = OnlineService(model)
            with registry.tracer.span("deployment.process", lines=_STREAM_LINES):
                service.process(stream)
        return service, registry

    service, registry = benchmark.pedantic(run, rounds=1, iterations=1)
    (process_span,) = registry.tracer.find("deployment.process")
    elapsed = process_span.duration
    throughput = _STREAM_LINES / elapsed
    stats = service.stats
    latency = registry.histogram("service.window_seconds")
    speedup = deployment_speedup()
    lines = [
        "Deployment benchmark (reproduced, Section VI)",
        f"stream lines processed      : {_STREAM_LINES}",
        f"throughput                  : {throughput:,.0f} lines/s",
        f"windows seen                : {stats.windows_seen}",
        f"model invocations           : {stats.model_invocations}",
        f"pattern-library skip rate   : {stats.model_skip_rate:.2%}",
        f"anomaly alerts raised       : {stats.anomalies_raised}",
        f"window latency p50 / p95    : {latency.percentile(0.5) * 1e3:.2f} ms "
        f"/ {latency.percentile(0.95) * 1e3:.2f} ms",
        "",
        "Deployment-efficiency comparison (Section VI-C1):",
        f"rule-based timeline         : {speedup['rule_based_hours']:,.0f} engineer-hours",
        f"LogSynergy timeline         : {speedup['logsynergy_hours']:,.1f} hours",
        f"reduction                   : {speedup['reduction']:.1%} (paper claims >90 %)",
    ]
    emit("deployment", "\n".join(lines))

    assert stats.model_skip_rate > 0.2, "pattern library must absorb redundancy"
    assert latency.count == stats.windows_seen
    assert speedup["reduction"] > 0.9
    assert throughput > 50
