"""Fig 5: ablation of LEI, SUFE and transfer learning, all six datasets.

Four variants per target:
  * LogSynergy (full),
  * LogSynergy w/o LEI (raw Drain templates instead of interpretations),
  * LogSynergy w/o SUFE (domain adaptation only, no disentanglement),
  * direct application of NeuralLog (trained on sources only; the paper's
    no-transfer-learning reference).

Reproduction target (shape): the full model dominates; removing LEI hurts
most (dialect vocabularies are disjoint); removing SUFE hurts but less;
direct NeuralLog trails the full model everywhere.
"""

import pytest

from repro.evaluation.tables import format_series

from common import (
    BASELINE_KWARGS, FAST_CONFIG, ISP_GROUP, PUBLIC_GROUP, emit, make_experiment,
)

ALL_TARGETS = [(t, PUBLIC_GROUP) for t in PUBLIC_GROUP] + [(t, ISP_GROUP) for t in ISP_GROUP]
VARIANTS = ["LogSynergy", "w/o LEI", "w/o SUFE", "direct NeuralLog"]

_SERIES: dict[str, list[float]] = {name: [] for name in VARIANTS}
_DONE: list[str] = []


@pytest.mark.parametrize("target,group", ALL_TARGETS, ids=[t for t, _ in ALL_TARGETS])
def test_fig5_ablation(benchmark, target, group):
    experiment = make_experiment(target, group, seed=50)
    experiment.prepare()

    def run_variants():
        scores = {}
        scores["LogSynergy"] = experiment.run_logsynergy(FAST_CONFIG).metrics.f1
        scores["w/o LEI"] = experiment.run_logsynergy(
            FAST_CONFIG.with_overrides(use_lei=False), method_name="LogSynergy w/o LEI"
        ).metrics.f1
        scores["w/o SUFE"] = experiment.run_logsynergy(
            FAST_CONFIG.with_overrides(use_sufe=False), method_name="LogSynergy w/o SUFE"
        ).metrics.f1
        scores["direct NeuralLog"] = experiment.run_baseline(
            "NeuralLog", fit_on_sources=True, **BASELINE_KWARGS["NeuralLog"]
        ).metrics.f1
        return scores

    scores = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    for name in VARIANTS:
        _SERIES[name].append(100.0 * scores[name])
    _DONE.append(experiment.target)

    # Emit before asserting so a failed shape check on one target cannot
    # suppress the figure.
    if len(_DONE) == len(ALL_TARGETS):
        emit("fig5", format_series(
            "Fig 5 (reproduced): ablation of LEI, SUFE and transfer learning (F1 %)",
            _DONE, _SERIES, x_label="target",
        ))

    # Shape assertions per target: the full model is never (meaningfully)
    # beaten by its ablations.  Tolerance reflects single-seed variance at
    # reduced scale.
    tolerance = 8.0
    assert 100 * scores["LogSynergy"] >= 100 * scores["w/o LEI"] - tolerance
    assert 100 * scores["LogSynergy"] >= 100 * scores["w/o SUFE"] - tolerance
    assert 100 * scores["LogSynergy"] >= 100 * scores["direct NeuralLog"] - tolerance
