"""Training-throughput benchmark: fused kernels vs the seed composition.

PR 4's fused BPTT/attention/loss nodes (repro.nn.kernels) exist to cut
the Python-graph overhead that dominates CPU training.  This benchmark
times the same fits with the fused kernels on and off
(``use_fused_kernels``) and reports sequences/second for:

* ``Trainer.fit`` on a synthetic LogSynergy workload (transformer
  encoder: fused attention + fused losses), and
* the recurrent registry baselines DeepLog / LogAnomaly / LogRobust
  fitted on the standard audit probe data (fused LSTM/BiLSTM BPTT).

Results print as a block, persist to benchmarks/results/, and land
machine-readable in BENCH_train.json at the repo root.

Acceptance bars: >= 2x sequences/second on the recurrent baselines and
>= 1.3x on LogSynergy ``Trainer.fit``.

``python benchmarks/bench_train_throughput.py --smoke`` runs a
seconds-scale LogSynergy-only sanity pass (scripts/smoke.sh) that writes
no result files.
"""

import sys
import time

import numpy as np

from repro.analysis.audit import probe_data
from repro.baselines.registry import make_baseline
from repro.config import LogSynergyConfig
from repro.core import LogSynergyModel, LogSynergyTrainer, TrainingBatch
from repro.nn import use_fused_kernels

from common import emit, emit_json

# Injectable-clock idiom: referenced here, called only inside _time_fit.
_CLOCK = time.perf_counter

RECURRENT_MIN_SPEEDUP = 2.0
LOGSYNERGY_MIN_SPEEDUP = 1.3

# Registry baselines whose training is dominated by recurrent BPTT,
# at the same reduced widths as common.BASELINE_KWARGS.  Eight epochs
# keep the timed region dominated by BPTT rather than the one-time
# Drain parse + encode that every fit pays identically in both modes.
RECURRENT_BASELINES = {
    "DeepLog": dict(epochs=8, hidden_size=32, num_layers=2, top_k=9),
    "LogAnomaly": dict(epochs=8, hidden_size=32, num_layers=2, top_k=9),
    "LogRobust": dict(epochs=8, hidden_size=32, num_layers=2),
}


def _logsynergy_config(smoke: bool) -> LogSynergyConfig:
    return LogSynergyConfig(
        d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
        embedding_dim=32, epochs=1 if smoke else 2, batch_size=32,
        window=8, seed=0,
    )


def _synthetic_batch(config: LogSynergyConfig, count: int) -> TrainingBatch:
    rng = np.random.default_rng(config.seed)
    return TrainingBatch(
        sequences=rng.standard_normal(
            (count, config.window, config.embedding_dim)
        ).astype(np.float32),
        anomaly_labels=(rng.random(count) < 0.2).astype(np.float32),
        system_labels=rng.integers(0, 2, size=count),
        domain_labels=rng.integers(0, 2, size=count),
    )


def _time_fit(fit, fused: bool, repeats: int = 1, clock=_CLOCK) -> float:
    """Best-of-``repeats`` wall time for one full fit."""
    best = float("inf")
    with use_fused_kernels(fused):
        for _ in range(repeats):
            started = clock()
            fit()
            best = min(best, clock() - started)
    return best


def _time_pair(fit, repeats: int) -> dict:
    """Best-of-``repeats`` for both modes, interleaved.

    Alternating fused/unfused runs keeps both measurement windows exposed
    to the same CPU frequency/load drift, so the ratio is not biased by
    one mode monopolizing the warm (or cold) end of the benchmark.
    """
    times = {True: float("inf"), False: float("inf")}
    for _ in range(repeats):
        for fused in (True, False):
            times[fused] = min(times[fused], _time_fit(fit, fused))
    return times


def _row(name: str, sequences: int, times: dict) -> dict:
    fused_s, unfused_s = times[True], times[False]
    return {
        "workload": name,
        "sequences": sequences,
        "fused_seconds": round(fused_s, 4),
        "unfused_seconds": round(unfused_s, 4),
        "fused_seq_per_s": round(sequences / fused_s, 2),
        "unfused_seq_per_s": round(sequences / unfused_s, 2),
        "speedup": round(unfused_s / fused_s, 3),
    }


def _logsynergy_row(smoke: bool) -> dict:
    config = _logsynergy_config(smoke)
    count = 96 if smoke else 384
    data = _synthetic_batch(config, count)

    def fit():
        model = LogSynergyModel(config, num_systems=2)
        LogSynergyTrainer(model, config).fit(data)

    fit()  # warmup: absorbs first-call allocator/import costs
    times = _time_pair(fit, repeats=1 if smoke else 3)
    return _row("LogSynergy", count * config.epochs, times)


def _baseline_row(name: str, kwargs: dict, data) -> dict:
    sources, target, target_train = data
    sequences = sum(len(split) for split in sources.values()) + len(target_train)

    def fit():
        make_baseline(name, **kwargs).fit(sources, target, target_train)

    fit()  # warmup: first fit pays one-time parser/allocator costs
    times = _time_pair(fit, repeats=3)
    return _row(name, sequences * kwargs["epochs"], times)


def _format(rows: list[dict]) -> str:
    lines = [
        "Training-throughput benchmark (fused kernels vs seed composition)",
        f"bars: recurrent baselines >= {RECURRENT_MIN_SPEEDUP}x, "
        f"LogSynergy Trainer.fit >= {LOGSYNERGY_MIN_SPEEDUP}x",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<11}: {row['fused_seq_per_s']:>8,.1f} seq/s fused "
            f"vs {row['unfused_seq_per_s']:>8,.1f} unfused "
            f"({row['fused_seconds']:.2f}s vs {row['unfused_seconds']:.2f}s) "
            f"-> {row['speedup']:.2f}x"
        )
    return "\n".join(lines)


def test_train_throughput():
    rows = [_logsynergy_row(smoke=False)]
    data = probe_data(seed=0)
    for name, kwargs in RECURRENT_BASELINES.items():
        rows.append(_baseline_row(name, kwargs, data))

    emit("train_throughput", _format(rows))
    emit_json("train", {
        "benchmark": "train_throughput",
        "bars": {
            "recurrent_min_speedup": RECURRENT_MIN_SPEEDUP,
            "logsynergy_min_speedup": LOGSYNERGY_MIN_SPEEDUP,
        },
        "results": rows,
    })

    logsynergy = rows[0]
    assert logsynergy["speedup"] >= LOGSYNERGY_MIN_SPEEDUP, (
        f"LogSynergy fit speedup {logsynergy['speedup']:.2f}x "
        f"< {LOGSYNERGY_MIN_SPEEDUP}x"
    )
    for row in rows[1:]:
        assert row["speedup"] >= RECURRENT_MIN_SPEEDUP, (
            f"{row['workload']} speedup {row['speedup']:.2f}x "
            f"< {RECURRENT_MIN_SPEEDUP}x"
        )


def _smoke() -> int:
    row = _logsynergy_row(smoke=True)
    print(_format([row]))
    if row["speedup"] <= 0:
        print("smoke: non-positive speedup", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(_smoke())
    test_train_throughput()
