"""Table IV: P/R/F1 on BGL, Spirit and Thunderbird.

Each public dataset in turn is the target system; the other two are the
sources.  All ten methods plus LogSynergy run on the shared continuous
splits.  Reproduction target (shape, not absolute numbers): LogSynergy
posts the best F1 on every target; unsupervised methods show the
high-recall/low-precision failure mode; cross-system baselines on raw
text underperform.
"""

import pytest

from repro.evaluation.tables import format_results_table

from common import (
    BASELINE_KWARGS, FAST_CONFIG, MAX_TEST, METHOD_ORDER, N_SOURCE, N_TARGET,
    PUBLIC_GROUP, emit, make_experiment,
)

_RESULTS = []


@pytest.mark.parametrize("target", PUBLIC_GROUP)
def test_table4_target(benchmark, target):
    experiment = make_experiment(target, PUBLIC_GROUP, seed=PUBLIC_GROUP.index(target))
    experiment.prepare()

    def run_all():
        results = []
        for method in METHOD_ORDER:
            if method == "LogSynergy":
                results.append(experiment.run_logsynergy(FAST_CONFIG))
            else:
                results.append(experiment.run_baseline(method, **BASELINE_KWARGS[method]))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    outcome = experiment.run([])  # empty shell to carry results
    outcome.results = results
    _RESULTS.append(outcome)

    if len(_RESULTS) == len(PUBLIC_GROUP):
        emit("table4", format_results_table(
            _RESULTS, METHOD_ORDER,
            title=(
                "Table IV (reproduced): P/R/F1 on BGL, Spirit, Thunderbird\n"
                f"(scale: n_s={N_SOURCE}, n_t={N_TARGET}, test<={MAX_TEST} per target)"
            ),
        ))

    by_method = outcome.by_method()
    best = max(by_method, key=lambda m: by_method[m].metrics.f1)
    assert best == "LogSynergy", (
        f"on {target} LogSynergy must post the top F1 (got {best})"
    )
    # The unsupervised single-system methods must show the paper's
    # high-recall / low-precision signature on at least one of them.
    assert any(
        by_method[m].metrics.recall > 0.9 and by_method[m].metrics.precision < 0.5
        for m in ("DeepLog", "LogAnomaly")
    )
