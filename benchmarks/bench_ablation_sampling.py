"""Extension ablation: continuous vs random target sampling (§IV-A1).

The paper follows Le & Zhang (ICSE '22) in using continuous sampling to
avoid data leakage; random splits let future templates leak into training
and inflate scores.  This bench measures both policies on the same data.

Reproduction target (shape): the random split scores at least as high as
the continuous split (usually higher) — the leakage the paper avoids.
"""

from repro.core import LogSynergy
from repro.evaluation.metrics import binary_metrics
from repro.evaluation.splits import (
    continuous_target_split, random_split, source_training_slice,
)
from repro.evaluation.tables import format_series
from repro.logs import build_dataset

from common import FAST_CONFIG, N_SOURCE, N_TARGET, PUBLIC_GROUP, SCALE, emit


def _run(split, sources):
    model = LogSynergy(FAST_CONFIG)
    model.fit(sources, "bgl", split.train)
    predictions = model.predict(split.test[:800])
    return 100.0 * binary_metrics([s.label for s in split.test[:800]], predictions).f1


def test_sampling_policy_leakage(benchmark):
    datasets = {
        name: build_dataset(name, scale=SCALE, seed=90 + index)
        for index, name in enumerate(PUBLIC_GROUP)
    }
    sources = {
        name: source_training_slice(ds.sequences, N_SOURCE)
        for name, ds in datasets.items() if name != "bgl"
    }
    sequences = datasets["bgl"].sequences

    def run_both():
        continuous = _run(continuous_target_split(sequences, N_TARGET), sources)
        randomized = _run(random_split(sequences, N_TARGET, seed=91), sources)
        return continuous, randomized

    continuous, randomized = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit("ablation_sampling", format_series(
        "Extension: sampling policy and data leakage on BGL (F1 %)",
        ["continuous (paper)", "random (leaky)"],
        {"F1": [continuous, randomized]}, x_label="policy",
    ))
    assert randomized >= continuous - 10.0, (
        "random sampling should not score far below continuous "
        f"(continuous={continuous:.1f}, random={randomized:.1f})"
    )
