"""Shared infrastructure for the table/figure benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts at
reduced scale (single CPU): the workload, parameter values and method set
match the paper; dataset sizes and model widths are scaled as recorded in
EXPERIMENTS.md.  Each benchmark prints its rows and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest capture.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import LogSynergyConfig
from repro.evaluation.experiment import CrossSystemExperiment

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

# --- Reduced-scale knobs (paper value -> here) -------------------------
# Dataset scale: full logs -> 0.6 % of Table III line counts.
SCALE = 0.006
# The ISP systems' anomaly ratios are 0.17 %-3.8 % (Table III); at 0.4 %
# public-group scale they would contain almost no anomalies, so that group runs at 10 %
# scale with proportionally larger sample budgets and test caps.
ISP_SCALE = 0.1
ISP_N_SOURCE = 5000
ISP_N_TARGET = 600
ISP_MAX_TEST = 12000
# n_s: 50,000 -> 1,000 sequences per source system.
N_SOURCE = 1000
# n_t: 5,000 -> 100 sequences from the target.
N_TARGET = 100
# Test set cap per target (keeps baseline prediction affordable).
MAX_TEST = 800

PUBLIC_GROUP = ["bgl", "spirit", "thunderbird"]
ISP_GROUP = ["system_a", "system_b", "system_c"]

# Reduced LogSynergy config: every architectural ratio of §IV-A4 kept,
# widths shrunk for CPU training.
FAST_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=2, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=16, batch_size=64, learning_rate=5e-4,
    n_source=N_SOURCE, n_target=N_TARGET,
)

# Baseline kwargs scaled the same way (original layer/hidden choices from
# §IV-A2, shrunk proportionally).
BASELINE_KWARGS = {
    "DeepLog": dict(epochs=4, hidden_size=32, num_layers=2, top_k=9),
    "LogAnomaly": dict(epochs=4, hidden_size=32, num_layers=2, top_k=9),
    "PLELog": dict(epochs=4, hidden_size=25),
    "SpikeLog": dict(epochs=4, hidden_size=32),
    "NeuralLog": dict(epochs=4, d_model=32, num_layers=1, d_ff=64),
    "LogRobust": dict(epochs=4, hidden_size=32, num_layers=2),
    "PreLog": dict(pretrain_epochs=4, tune_epochs=4, d_model=32, d_ff=64),
    "LogTAD": dict(epochs=4, hidden_size=32, num_layers=2),
    "LogTransfer": dict(source_epochs=4, target_epochs=4, hidden_size=32, num_layers=2),
    "MetaLog": dict(meta_episodes=12, adapt_steps=10, hidden_size=25, num_layers=2),
}

METHOD_ORDER = [
    "DeepLog", "LogAnomaly", "PLELog", "SpikeLog", "NeuralLog", "LogRobust",
    "PreLog", "LogTAD", "LogTransfer", "MetaLog", "LogSynergy",
]


def make_experiment(target: str, group: list[str], seed: int = 0,
                    n_source: int | None = None, n_target: int | None = None,
                    scale: float | None = None,
                    max_test: int | None = None) -> CrossSystemExperiment:
    """Build the standard leave-one-out experiment for ``target``.

    Scale, sample budgets and test cap default per group: the sparse ISP
    systems use the ``ISP_*`` knobs so their splits contain enough
    anomalies for stable metrics.
    """
    is_isp = target in ISP_GROUP
    if scale is None:
        scale = ISP_SCALE if is_isp else SCALE
    if max_test is None:
        max_test = ISP_MAX_TEST if is_isp else MAX_TEST
    if n_source is None:
        n_source = ISP_N_SOURCE if is_isp else N_SOURCE
    if n_target is None:
        n_target = ISP_N_TARGET if is_isp else N_TARGET
    sources = [name for name in group if name != target]
    return CrossSystemExperiment(
        target, sources, scale=scale, n_source=n_source, n_target=n_target,
        max_test=max_test, seed=seed,
    )


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result as ``BENCH_<name>.json`` at the
    repo root (the convention CI diffs run-over-run)."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path
