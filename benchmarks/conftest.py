"""Pytest bootstrap for the benchmark directory.

Having a conftest here puts ``benchmarks/`` on ``sys.path`` so the
benchmark modules can import their shared ``common`` helpers.
"""
