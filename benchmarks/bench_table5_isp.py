"""Table V: P/R/F1 on System A, System B and System C (ISP group).

Same protocol as Table IV on the CDMS-flavoured datasets, whose anomaly
ratios are an order of magnitude lower (0.17 %-3.8 %).  Reproduction
target: LogSynergy posts the top F1 on every target despite the extreme
class imbalance; single-system baselines degrade hard on System A/B.
"""

import pytest

from repro.evaluation.tables import format_results_table

from common import (
    BASELINE_KWARGS, FAST_CONFIG, ISP_GROUP, MAX_TEST, METHOD_ORDER,
    N_SOURCE, N_TARGET, emit, make_experiment,
)

_RESULTS = []


@pytest.mark.parametrize("target", ISP_GROUP)
def test_table5_target(benchmark, target):
    experiment = make_experiment(target, ISP_GROUP, seed=10 + ISP_GROUP.index(target))
    experiment.prepare()

    def run_all():
        results = []
        for method in METHOD_ORDER:
            if method == "LogSynergy":
                results.append(experiment.run_logsynergy(FAST_CONFIG))
            else:
                results.append(experiment.run_baseline(method, **BASELINE_KWARGS[method]))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    outcome = experiment.run([])
    outcome.results = results
    _RESULTS.append(outcome)

    if len(_RESULTS) == len(ISP_GROUP):
        emit("table5", format_results_table(
            _RESULTS, METHOD_ORDER,
            title=(
                "Table V (reproduced): P/R/F1 on System A, System B, System C\n"
                f"(ISP scale: see common.ISP_* knobs)"
            ),
        ))

    # On System C the paper itself has LogRobust within 2 F1 points of
    # LogSynergy (87.45 vs 89.26), so require LogSynergy to be at or near
    # the top rather than strictly first.
    by_method = outcome.by_method()
    best_f1 = max(r.metrics.f1 for r in outcome.results)
    ours = by_method["LogSynergy"].metrics.f1
    assert ours >= best_f1 - 0.05, (
        f"on {target} LogSynergy must be within 5 F1 points of the best "
        f"(ours {100*ours:.1f} vs best {100*best_f1:.1f})"
    )
