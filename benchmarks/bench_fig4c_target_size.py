"""Fig 4c: F1 vs number of target-system training samples n_t.

The paper sweeps n_t from 1,000 to 8,000 (step 1,000); F1 climbs sharply
then stabilizes near 4,000, the evidence that 5,000 labeled target
sequences suffice.  At our scale the grid maps to 20..160 (step 20).
Reproduction target (shape): rising-then-flat curve.
"""

from repro.evaluation.tables import format_series

from common import FAST_CONFIG, N_TARGET, PUBLIC_GROUP, emit, make_experiment

# Paper grid 1k..8k scaled by N_TARGET/5_000.
NT_GRID = [int(N_TARGET * k / 5) for k in range(1, 9)]  # 20..160


def test_fig4c_target_size_sweep(benchmark):
    def sweep():
        f1s = []
        for n_target in NT_GRID:
            experiment = make_experiment("bgl", PUBLIC_GROUP, seed=42, n_target=n_target)
            result = experiment.run_logsynergy(FAST_CONFIG)
            f1s.append(100.0 * result.metrics.f1)
        return f1s

    f1s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("fig4c", format_series(
        "Fig 4c (reproduced): F1 vs n_t on BGL "
        f"(paper grid 1k-8k scaled x{N_TARGET / 5_000:.3f})",
        NT_GRID, {"BGL": f1s}, x_label="n_t",
    ))
    assert max(f1s[-4:]) >= max(f1s[:2]), (
        f"F1 should not degrade as target samples grow (got {f1s})"
    )
