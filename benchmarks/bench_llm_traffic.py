"""LLM interpretation traffic benchmark: cache-cold vs warm, coalescing.

Production LEI traffic is highly repetitive — a few hundred hot
templates generate almost all interpretation requests — and every
upstream ``complete()`` costs a remote round-trip.  This benchmark
replays a skewed request stream against a simulated upstream endpoint
(fixed per-call latency) three ways:

* **cold** — the bare provider; every request pays the round-trip.
* **warm** — the middleware stack (memory cache + coalescing + breaker
  + retries); repeats are answered from the TTL+LRU tier.
* **burst** — a concurrent hammer on a handful of prompts with the
  memory cache disabled, isolating what request coalescing alone saves
  while identical prompts are in flight.

Written as a result block (benchmarks/results/llm_traffic.txt) and
machine-readable as BENCH_llm.json at the repo root.

The acceptance bar is >= 10x fewer upstream ``complete()`` calls warm
(cache + coalescing) than cold.  ``--smoke`` runs a scaled-down stream
for CI wiring checks.
"""

import argparse
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.llm import FlakyLLM, build_interpretation_prompt, build_provider_stack
from repro.logs import LogGenerator
from repro.obs import MetricsRegistry

from common import emit, emit_json

# Full-scale knobs: 1,200 requests over 40 hot templates, 1 ms upstream
# round-trip (a fast hosted endpoint on a good day).
DISTINCT_PROMPTS = 40
REQUESTS = 1_200
UPSTREAM_LATENCY_S = 0.001
# Coalescing burst: 16 threads hammering 4 prompts through a slower
# (5 ms) upstream, so identical requests overlap in flight.
BURST_THREADS = 16
BURST_PER_THREAD = 12
BURST_PROMPTS = 4
BURST_LATENCY_S = 0.005

SMOKE = {
    "distinct": 12, "requests": 120, "latency": 0.0002,
    "burst_threads": 4, "burst_per_thread": 4,
}


def _prompts(count: int) -> list[str]:
    """Distinct interpretation prompts standing in for hot templates."""
    seen: list[str] = []
    for record in LogGenerator("bgl", seed=0).generate(count * 30):
        prompt = build_interpretation_prompt(record.system, record.message)
        if prompt not in seen:
            seen.append(prompt)
        if len(seen) == count:
            break
    return seen


def _stream(prompts: list[str], requests: int) -> list[str]:
    """A skewed request stream: hot templates dominate (zipf-ish)."""
    rng = np.random.default_rng(1)
    weights = 1.0 / np.arange(1, len(prompts) + 1)
    weights /= weights.sum()
    picks = rng.choice(len(prompts), size=requests, p=weights)
    return [prompts[int(index)] for index in picks]


def _upstream(latency: float) -> FlakyLLM:
    """The simulated remote endpoint; ``calls`` counts round-trips."""
    return FlakyLLM(latency=latency, seed=0, sleep=time.sleep)


def _run_cold(stream: list[str], latency: float) -> dict:
    upstream = _upstream(latency)
    started = time.perf_counter()
    for prompt in stream:
        upstream.complete(prompt)
    elapsed = time.perf_counter() - started
    return {"mode": "cold", "requests": len(stream),
            "upstream_calls": upstream.calls,
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(len(stream) / elapsed, 1)}


def _run_warm(stream: list[str], latency: float) -> dict:
    upstream = _upstream(latency)
    registry = MetricsRegistry()
    stack = build_provider_stack(upstream, registry=registry)
    started = time.perf_counter()
    for prompt in stream:
        stack.complete(prompt)
    elapsed = time.perf_counter() - started
    return {"mode": "warm(cache+coalescing)", "requests": len(stream),
            "upstream_calls": upstream.calls,
            "memcache_hits": int(registry.counter("llm.provider.memcache.hits").value),
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(len(stream) / elapsed, 1)}


def _run_burst(prompts: list[str], threads: int, per_thread: int,
               latency: float) -> dict:
    upstream = _upstream(latency)
    registry = MetricsRegistry()
    stack = build_provider_stack(upstream, memory_cache=False,
                                 registry=registry)
    requests = [prompts[(worker + turn) % len(prompts)]
                for worker in range(threads) for turn in range(per_thread)]

    def hammer(worker: int) -> None:
        for turn in range(per_thread):
            stack.complete(prompts[(worker + turn) % len(prompts)])

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(hammer, range(threads)))
    elapsed = time.perf_counter() - started
    return {"mode": "burst(coalescing only)", "requests": len(requests),
            "upstream_calls": upstream.calls,
            "coalesced": int(registry.counter("llm.provider.coalesced").value),
            "elapsed_s": round(elapsed, 4),
            "requests_per_s": round(len(requests) / elapsed, 1)}


def run_benchmark(*, smoke: bool = False) -> dict:
    if smoke:
        distinct, requests, latency = (SMOKE["distinct"], SMOKE["requests"],
                                       SMOKE["latency"])
        burst_threads, burst_per_thread = (SMOKE["burst_threads"],
                                           SMOKE["burst_per_thread"])
    else:
        distinct, requests, latency = DISTINCT_PROMPTS, REQUESTS, UPSTREAM_LATENCY_S
        burst_threads, burst_per_thread = BURST_THREADS, BURST_PER_THREAD

    prompts = _prompts(distinct)
    stream = _stream(prompts, requests)
    cold = _run_cold(stream, latency)
    warm = _run_warm(stream, latency)
    burst = _run_burst(prompts[:BURST_PROMPTS], burst_threads,
                       burst_per_thread, BURST_LATENCY_S if not smoke else latency)
    reduction = cold["upstream_calls"] / max(1, warm["upstream_calls"])

    lines = [
        "LLM interpretation traffic benchmark (provider middleware stack)",
        f"stream                  : {requests} requests over {distinct} hot "
        f"templates, {latency * 1e3:.1f} ms upstream round-trip",
        f"cold (bare provider)    : {cold['upstream_calls']} upstream calls, "
        f"{cold['requests_per_s']:>9,.1f} requests/s",
        f"warm (cache+coalescing) : {warm['upstream_calls']} upstream calls "
        f"({warm['memcache_hits']} memory-cache hits), "
        f"{warm['requests_per_s']:>9,.1f} requests/s",
        f"burst (coalescing only) : {burst['requests']} concurrent requests -> "
        f"{burst['upstream_calls']} upstream calls "
        f"({burst['coalesced']} coalesced)",
        f"upstream-call reduction : {reduction:.1f}x (bar: >= 10x)",
    ]
    emit("llm_traffic", "\n".join(lines))
    payload = {
        "benchmark": "llm_traffic",
        "smoke": smoke,
        "workload": {
            "distinct_prompts": distinct,
            "requests": requests,
            "upstream_latency_s": latency,
        },
        "results": [cold, warm, burst],
        "upstream_call_reduction": round(reduction, 2),
    }
    emit_json("llm", payload)
    return payload


def test_llm_traffic_reduction():
    payload = run_benchmark()
    cold, warm, burst = payload["results"]
    assert warm["upstream_calls"] <= payload["workload"]["distinct_prompts"]
    assert payload["upstream_call_reduction"] >= 10.0, payload
    assert burst["coalesced"] > 0
    assert burst["upstream_calls"] + burst["coalesced"] == burst["requests"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down stream for CI wiring checks")
    arguments = parser.parse_args()
    result = run_benchmark(smoke=arguments.smoke)
    if not arguments.smoke and result["upstream_call_reduction"] < 10.0:
        raise SystemExit("llm traffic: upstream-call reduction below 10x bar")
