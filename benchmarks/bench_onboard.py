"""Onboarding-cost benchmark: warm-start fine-tune vs full retrain.

The paper's operational pitch is that a *new* software system comes
online without retraining the multi-system model from scratch: warm-start
from the serving weights and fine-tune on the day-0 trickle behind the
shadow-F1 gate (``repro onboard``).  This benchmark prices both paths on
the same day-0 stream:

* **full retrain** — a fresh :class:`LogSynergy` fit over the source
  systems plus the day-0 windows, at the configured epoch budget (what
  bringing the system online cost before PR 10), and
* **onboard** — :class:`OnboardingSession` fine-tuning a warm candidate
  for a few epochs on the day-0 windows only, then shadow-evaluating.

Acceptance bars: the onboarding pass must be >= ``MIN_SPEEDUP``x faster
than the full retrain, and its result must be structurally sound (a
terminal PROMOTED/REJECTED state, a shadow F1 in [0, 1], and a clean
train/holdout split).

``python benchmarks/bench_onboard.py --smoke`` runs a seconds-scale
variant (scripts/smoke.sh) that writes no result files.
"""

import sys
import time

from repro.config import LogSynergyConfig
from repro.core import LogSynergy, OnboardingSession
from repro.core.onboard import PROMOTED, REJECTED
from repro.evaluation.splits import source_training_slice
from repro.logs import build_dataset
from repro.logs.sequences import sliding_windows
from repro.testing.fuzzer import LogStreamFuzzer

from common import emit, emit_json

# Injectable-clock idiom: referenced here, called only inside _timed.
_CLOCK = time.perf_counter

# Fine-tuning a warm candidate on the day-0 windows alone must beat
# re-fitting sources + target from scratch by a wide margin; 2x is
# deliberately generous (typical runs land far above it).
MIN_SPEEDUP = 2.0


def _config(smoke: bool) -> LogSynergyConfig:
    return LogSynergyConfig(
        d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
        embedding_dim=64, epochs=2 if smoke else 8, batch_size=64,
        learning_rate=5e-4, seed=0, use_lei=False,
    )


def _day0_windows(config: LogSynergyConfig, smoke: bool) -> list:
    fuzzer = LogStreamFuzzer(
        systems=("day0",), dialects={"day0": "bgl"},
        lines_per_system=240 if smoke else 600,
        anomaly_bursts=6, burst_length=(3, 6), parameter_noise=0.1,
    )
    records = fuzzer.generate(0).by_system()["day0"]
    return sliding_windows(records, window=config.window, step=config.step)


def _sources(smoke: bool) -> dict:
    budget = 120 if smoke else 400
    return {
        name: source_training_slice(
            build_dataset(name, scale=0.004, seed=index).sequences, budget)
        for index, name in enumerate(["bgl", "spirit"])
    }


def _timed(fn, clock=_CLOCK):
    started = clock()
    result = fn()
    return result, clock() - started


def _run(smoke: bool) -> dict:
    config = _config(smoke)
    windows = _day0_windows(config, smoke)
    sources = _sources(smoke)

    # Baseline: bring day0 online by refitting everything from scratch.
    pipeline = LogSynergy(config)
    _, full_seconds = _timed(
        lambda: pipeline.fit(sources, "day0", windows))

    # Onboarding: warm-start from the serving weights, fine-tune on the
    # day-0 windows only, shadow-evaluate on the held-out tail.
    session = OnboardingSession(pipeline, gate_f1=0.0)
    onboard_epochs = 1 if smoke else 2
    result, onboard_seconds = _timed(
        lambda: session.run("day0", windows, epochs=onboard_epochs))

    assert result.state in (PROMOTED, REJECTED), result.state
    assert 0.0 <= result.shadow_f1 <= 1.0, result.shadow_f1
    assert result.epochs == onboard_epochs, result.epochs
    assert result.train_sequences + result.holdout_sequences == len(windows)

    return {
        "day0_windows": len(windows),
        "source_sequences": sum(len(s) for s in sources.values()),
        "full_epochs": config.epochs,
        "onboard_epochs": onboard_epochs,
        "full_seconds": round(full_seconds, 3),
        "onboard_seconds": round(onboard_seconds, 3),
        "speedup": round(full_seconds / onboard_seconds, 2),
        "state": result.state,
        "shadow_f1": round(result.shadow_f1, 4),
    }


def _format(row: dict) -> str:
    return "\n".join([
        "Onboarding-cost benchmark (warm-start fine-tune vs full retrain)",
        f"bar: onboarding >= {MIN_SPEEDUP}x faster than the full retrain",
        f"full retrain : {row['full_seconds']:>8.2f}s "
        f"({row['full_epochs']} epochs, "
        f"{row['source_sequences']} source + {row['day0_windows']} day-0 sequences)",
        f"onboard      : {row['onboard_seconds']:>8.2f}s "
        f"({row['onboard_epochs']} epochs, day-0 windows only) "
        f"-> {row['speedup']:.1f}x, {row['state']} at shadow F1 "
        f"{row['shadow_f1']:.3f}",
    ])


def test_onboard_speedup():
    row = _run(smoke=False)
    emit("onboard", _format(row))
    emit_json("onboard", {
        "benchmark": "onboard",
        "bars": {"min_speedup": MIN_SPEEDUP},
        "results": [row],
    })
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"onboarding speedup {row['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )


def _smoke() -> int:
    row = _run(smoke=True)
    print(_format(row))
    if row["speedup"] < 1.0:
        print("smoke: onboarding slower than the full retrain", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(_smoke())
    test_onboard_speedup()
