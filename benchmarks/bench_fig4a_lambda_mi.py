"""Fig 4a: F1 vs the mutual-information loss weight λ_MI.

Sweeps λ_MI over the paper's grid {0.001, 0.01, 0.05, 0.1, 0.5} on one
target per dataset group.  Reproduction target (shape): performance is
stable for small λ_MI and degrades as λ_MI grows large (the model starts
sacrificing classification quality for disentanglement).
"""

from repro.evaluation.tables import format_series

from common import FAST_CONFIG, ISP_GROUP, PUBLIC_GROUP, emit, make_experiment

LAMBDA_GRID = [0.001, 0.01, 0.05, 0.1, 0.5]
TARGETS = [("bgl", PUBLIC_GROUP), ("system_c", ISP_GROUP)]


def test_fig4a_lambda_mi_sweep(benchmark):
    def sweep():
        series = {}
        for target, group in TARGETS:
            experiment = make_experiment(target, group, seed=40)
            experiment.prepare()
            f1s = []
            for lambda_mi in LAMBDA_GRID:
                config = FAST_CONFIG.with_overrides(lambda_mi=lambda_mi)
                result = experiment.run_logsynergy(config)
                f1s.append(100.0 * result.metrics.f1)
            series[experiment.target] = f1s
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("fig4a", format_series(
        "Fig 4a (reproduced): F1 vs lambda_MI", LAMBDA_GRID, series, x_label="lambda_MI"
    ))
    for target, f1s in series.items():
        best_small = max(f1s[:2])   # lambda in {0.001, 0.01}
        at_large = f1s[-1]          # lambda = 0.5
        assert best_small >= at_large - 5.0, (
            f"{target}: small lambda_MI should be at least as good as 0.5 "
            f"(got {f1s})"
        )
