"""Fig 6: cross-group transfer (the §V lesson).

Four directed transfers between the dataset groups:
  BGL -> System B, Spirit -> System C (rich HPC source, simple target),
  System B -> BGL, System C -> Spirit (simple source, rich target).

Reproduction target (shape): supercomputer sources cover the CDMS
targets' anomaly space, so the first two transfers score high; the
reverse transfers score visibly lower because System B/C's anomaly
concepts cannot cover BGL/Spirit's.
"""

import pytest

from repro.evaluation.tables import format_series

from common import FAST_CONFIG, emit, make_experiment

TRANSFERS = [
    ("bgl", "system_b"),
    ("spirit", "system_c"),
    ("system_b", "bgl"),
    ("system_c", "spirit"),
]

_RESULTS: dict[str, float] = {}


@pytest.mark.parametrize("source,target", TRANSFERS,
                         ids=[f"{s}->{t}" for s, t in TRANSFERS])
def test_fig6_transfer(benchmark, source, target):
    experiment = make_experiment(target, [source, target], seed=60)

    def run():
        return experiment.run_logsynergy(FAST_CONFIG).metrics.f1

    f1 = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[f"{source}->{target}"] = 100.0 * f1

    if len(_RESULTS) == len(TRANSFERS):
        labels = list(_RESULTS)
        emit("fig6", format_series(
            "Fig 6 (reproduced): cross-group transfer F1 (%)",
            labels, {"F1": [_RESULTS[k] for k in labels]}, x_label="transfer",
        ))
        forward = (_RESULTS["bgl->system_b"] + _RESULTS["spirit->system_c"]) / 2
        reverse = (_RESULTS["system_b->bgl"] + _RESULTS["system_c->spirit"]) / 2
        assert forward > reverse, (
            f"HPC->CDMS transfers must beat the reverse direction "
            f"(forward {forward:.1f} vs reverse {reverse:.1f})"
        )
