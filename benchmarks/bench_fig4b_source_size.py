"""Fig 4b: F1 vs number of source-system training samples n_s.

The paper sweeps n_s from 10,000 to 80,000 (step 10,000) and observes
performance improving then stabilizing around 50,000.  At our 0.4 % data
scale the grid maps to 140..1120 (step 140), stabilizing near 700.
Reproduction target (shape): F1 rises with n_s and flattens.
"""

from repro.evaluation.tables import format_series

from common import FAST_CONFIG, N_SOURCE, PUBLIC_GROUP, emit, make_experiment

# Paper grid 10k..80k scaled by N_SOURCE/50_000.
NS_GRID = [int(N_SOURCE * k / 5) for k in range(1, 9)]  # 140..1120


def test_fig4b_source_size_sweep(benchmark):
    def sweep():
        f1s = []
        for n_source in NS_GRID:
            experiment = make_experiment("bgl", PUBLIC_GROUP, seed=41, n_source=n_source)
            result = experiment.run_logsynergy(FAST_CONFIG)
            f1s.append(100.0 * result.metrics.f1)
        return f1s

    f1s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("fig4b", format_series(
        "Fig 4b (reproduced): F1 vs n_s on BGL "
        f"(paper grid 10k-80k scaled x{N_SOURCE / 50_000:.3f})",
        NS_GRID, {"BGL": f1s}, x_label="n_s",
    ))
    # Shape: the largest budgets beat the smallest.
    assert max(f1s[-3:]) > f1s[0], f"F1 should improve with n_s (got {f1s})"
