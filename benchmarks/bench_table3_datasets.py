"""Table III: dataset statistics.

Regenerates the six datasets at reduced scale and prints the Table III
rows (log counts, sequence counts, anomaly counts).  The reproduction
target is each dataset's anomaly *ratio* and the relative sizes.
"""

from repro.evaluation.tables import format_stats_table
from repro.logs import build_dataset, dataset_statistics

from common import ISP_GROUP, ISP_SCALE, SCALE, emit


def _build_table():
    rows = []
    for index, name in enumerate(
        ("bgl", "spirit", "thunderbird", "system_a", "system_b", "system_c")
    ):
        scale = ISP_SCALE if name in ISP_GROUP else SCALE
        stats = dataset_statistics(build_dataset(name, scale=scale, seed=index))
        stats["anomaly_ratio"] = round(stats["anomaly_ratio"], 4)
        rows.append(stats)
    return rows


def test_table3_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    emit("table3", format_stats_table(
        rows,
        title=(
            "Table III (reproduced; public group at scale "
            f"{SCALE}, ISP group at {ISP_SCALE} of paper line counts)"
        ),
    ))
    # Shape assertions: ordering of anomaly ratios matches the paper.
    ratios = {row["system"]: row["anomaly_ratio"] for row in rows}
    assert ratios["BGL"] == max(ratios.values())
    assert ratios["System B"] <= min(ratios["BGL"], ratios["Thunderbird"], ratios["System C"])
