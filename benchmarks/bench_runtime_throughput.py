"""Runtime scaling benchmark: executor x shard-count sweep.

Two workload profiles bracket the deployment spectrum:

* ``io`` — per-batch cost is a fixed sleep (a remote LLM endpoint or
  accelerator round-trip).  Threads overlap it perfectly; this is the
  profile the threaded executor was built for.
* ``cpu`` — per-batch cost is a pure-Python spin (local feature
  extraction / model math).  The GIL serializes threads here no matter
  the shard count; the process executor is the only way past it.

Each profile runs both executors (``thread``: shard threads in one
interpreter; ``process``: one worker process per shard, warmed by the
shared-memory weight broadcast) at shards in {1, 2, 4, 8}, on the same
8-system interleaved stream.  Both executors resolve the identical cost
spec through :func:`repro.runtime.resolve_cost`, so rows differ only in
execution strategy.  Results land as a table (benchmarks/results/) and
machine-readable rows — one per (profile, executor, shards), each
tagged with the host core count — in BENCH_runtime.json.

Bars enforced in full mode: the io profile must keep the historical
>= 2x windows/s at thread@4 vs thread@1, and every row must see the
same windows with nothing shed or degraded (the determinism contract).
``--smoke`` runs only cpu-profile thread@2 vs process@2 and asserts the
process executor wins on multi-core hosts (on a single core there is no
parallelism to buy, so the bar relaxes to an overhead ceiling).
"""

import dataclasses
import os
import sys

from repro.logs import LogGenerator
from repro.obs import MetricsRegistry
from repro.runtime import (InferenceRuntime, ProcessWorkerSpec,
                           SyntheticWorker, message_pattern, resolve_cost)

from common import emit, emit_json

SYSTEMS = 8
LINES_PER_SYSTEM = 900
SMOKE_LINES_PER_SYSTEM = 300
MAX_BATCH = 16
SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("thread", "process")

# Per-batch cost specs (resolved identically in shard threads and in
# worker processes via repro.runtime.resolve_cost).
IO_COST = ("sleep", 0.008)      # simulated remote round-trip
CPU_COST = ("spin", 20_000)     # pure-Python LCG iterations (GIL-bound)
PROFILES = {"io": IO_COST, "cpu": CPU_COST}

# Multi-core hosts must see the process executor beat threads on the
# CPU-bound profile; a single core has no parallelism to sell, so the
# bar becomes "IPC overhead eats at most 70% of throughput".
SMOKE_MULTICORE_BAR = 1.0
SMOKE_SINGLE_CORE_BAR = 0.3


def _workload(lines_per_system: int):
    """An interleaved multi-system stream; svc-NN names hash evenly onto
    2, 4 and 8 shards, so the comparison measures overlap, not skew."""
    streams = []
    for index in range(SYSTEMS):
        records = LogGenerator("thunderbird", seed=100 + index,
                               repeat_probability=0.5).generate(lines_per_system)
        streams.append([dataclasses.replace(record, system=f"svc-{index:02d}")
                       for record in records])
    return [record for group in zip(*streams) for record in group]


def _merged_percentile(histograms, q: float) -> float:
    """Percentile over same-boundary histograms merged bucket-wise."""
    if not histograms:
        return 0.0
    boundaries = histograms[0].boundaries
    counts = [0] * (len(boundaries) + 1)
    for histogram in histograms:
        for index, count in enumerate(histogram.bucket_counts):
            counts[index] += count
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            if index < len(boundaries):
                return boundaries[index]
            break
    return max(histogram.max for histogram in histograms)


def _build(executor: str, cost_spec: tuple, shards: int,
           registry: MetricsRegistry) -> InferenceRuntime:
    if executor == "process":
        return InferenceRuntime(
            None, pattern_fn=message_pattern,
            executor="process",
            process_spec=ProcessWorkerSpec.synthetic(cost=cost_spec),
            shards=shards, max_batch=MAX_BATCH, max_latency=0.05,
            registry=registry,
        )
    cost = resolve_cost(cost_spec)
    return InferenceRuntime(
        lambda index: SyntheticWorker(cost=cost),
        pattern_fn=message_pattern, shards=shards, max_batch=MAX_BATCH,
        max_latency=0.05, threaded=True, queue_capacity=50_000,
        registry=registry,
    )


def _run(records, profile: str, executor: str, shards: int) -> dict:
    registry = MetricsRegistry()
    runtime = _build(executor, PROFILES[profile], shards, registry)
    clock = registry.clock
    runtime.start()
    started = clock()
    for record in records:
        runtime.submit(record)
    reports = runtime.stop()
    elapsed = clock() - started
    stats = runtime.stats
    batch_histograms = [
        metric for name, metric in registry.metrics().items()
        if name.startswith("runtime.batch_seconds")
    ]
    return {
        "profile": profile,
        "executor": executor,
        "shards": shards,
        "cores": os.cpu_count() or 1,
        "elapsed_s": round(elapsed, 4),
        "windows": stats.windows_seen,
        "windows_per_s": round(stats.windows_seen / elapsed, 1),
        "batches": stats.batches,
        "reports": len(reports),
        "batch_p50_s": round(_merged_percentile(batch_histograms, 0.50), 5),
        "batch_p99_s": round(_merged_percentile(batch_histograms, 0.99), 5),
        "degraded_windows": stats.degraded_windows,
        "records_shed": stats.records_rejected + stats.records_dropped,
    }


def _wps(rows, profile: str, executor: str, shards: int) -> float:
    return next(row["windows_per_s"] for row in rows
                if row["profile"] == profile and row["executor"] == executor
                and row["shards"] == shards)


def smoke() -> None:
    """CPU-bound profile, 2 shards, thread vs process — the GIL-break
    check scripts/smoke.sh runs (no files written)."""
    records = _workload(SMOKE_LINES_PER_SYSTEM)
    rows = [_run(records, "cpu", executor, 2) for executor in EXECUTORS]
    thread_row, process_row = rows
    cores = os.cpu_count() or 1
    bar = SMOKE_MULTICORE_BAR if cores >= 2 else SMOKE_SINGLE_CORE_BAR
    ratio = process_row["windows_per_s"] / thread_row["windows_per_s"]
    print(f"cpu profile @2 shards on {cores} core(s): "
          f"thread {thread_row['windows_per_s']:,.1f} windows/s, "
          f"process {process_row['windows_per_s']:,.1f} windows/s "
          f"({ratio:.2f}x, bar >= {bar:.2f}x)")
    assert thread_row["windows"] == process_row["windows"], \
        "executors disagreed on the number of windows"
    assert all(row["records_shed"] == 0 for row in rows)
    assert ratio >= bar, (
        f"process@2 at {ratio:.2f}x of thread@2 on {cores} core(s) "
        f"(bar {bar:.2f}x)")


def test_runtime_throughput_scaling():
    records = _workload(LINES_PER_SYSTEM)
    rows = [_run(records, profile, executor, shards)
            for profile in PROFILES
            for executor in EXECUTORS
            for shards in SHARD_COUNTS]
    io_speedup = _wps(rows, "io", "thread", 4) / _wps(rows, "io", "thread", 1)
    gil_break = (_wps(rows, "cpu", "process", 8)
                 / _wps(rows, "cpu", "thread", 4))
    cores = os.cpu_count() or 1

    lines = [
        "Runtime scaling benchmark (executor x shards, "
        f"{cores} host core(s))",
        f"stream                      : {len(records)} records, "
        f"{SYSTEMS} systems interleaved",
        f"io profile cost             : sleep {IO_COST[1] * 1e3:.0f} ms/batch; "
        f"cpu profile cost: spin {CPU_COST[1]:,} iters/batch "
        f"(max_batch={MAX_BATCH})",
    ]
    for row in rows:
        lines.append(
            f"{row['profile']:<3} {row['executor']:<7} "
            f"shards={row['shards']}: {row['windows_per_s']:>8,.1f} windows/s "
            f"({row['windows']} windows, {row['batches']} batches, "
            f"batch p50 {row['batch_p50_s'] * 1e3:.1f} ms / "
            f"p99 {row['batch_p99_s'] * 1e3:.1f} ms)"
        )
    lines.append(f"io thread speedup (4 vs 1)  : {io_speedup:.2f}x "
                 f"(bar: >= 2.0x)")
    lines.append(f"cpu process@8 vs thread@4   : {gil_break:.2f}x "
                 f"(recorded; needs >= 2 cores to exceed 1x)")
    emit("runtime_throughput", "\n".join(lines))
    emit_json("runtime", {
        "benchmark": "runtime_throughput",
        "workload": {
            "systems": SYSTEMS,
            "records": len(records),
            "max_batch": MAX_BATCH,
            "cores": cores,
            "profiles": {name: list(spec) for name, spec in PROFILES.items()},
            "shard_counts": list(SHARD_COUNTS),
            "executors": list(EXECUTORS),
        },
        "results": rows,
        "io_thread_speedup_4_vs_1": round(io_speedup, 3),
        "cpu_process8_vs_thread4": round(gil_break, 3),
    })

    # Same detection work in every configuration, nothing shed or
    # degraded — the executor changes throughput, never the answer.
    assert len({row["windows"] for row in rows}) == 1
    assert all(row["degraded_windows"] == 0 for row in rows)
    assert all(row["records_shed"] == 0 for row in rows)
    assert io_speedup >= 2.0, \
        f"expected >=2x io thread speedup at 4 shards, got {io_speedup:.2f}x"


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        smoke()
    else:
        test_runtime_throughput_scaling()
