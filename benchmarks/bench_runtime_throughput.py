"""Runtime scaling benchmark: sharded micro-batching vs a single lane.

The sharded runtime exists because per-batch inference latency — an LLM
endpoint or remote accelerator, the deployment bottleneck the paper's
production setting implies — leaves the CPU idle.  This benchmark models
that with a synthetic worker whose per-batch cost is a fixed sleep: one
shard pays the cost serially; N threaded shards overlap it.  Measured on
an 8-system interleaved stream at shards ∈ {1, 2, 4}: windows/second
plus p50/p99 micro-batch scoring latency, written both as a result block
(benchmarks/results/) and machine-readable as BENCH_runtime.json at the
repo root.

The acceptance bar is >= 2x windows/second at 4 shards vs 1.
"""

import dataclasses
import time

from repro.logs import LogGenerator
from repro.obs import MetricsRegistry
from repro.runtime import InferenceRuntime, SyntheticWorker, message_pattern

from common import emit, emit_json

SYSTEMS = 8
LINES_PER_SYSTEM = 900
MAX_BATCH = 16
# Simulated per-batch inference latency (remote model round-trip).
BATCH_COST_S = 0.008
SHARD_COUNTS = (1, 2, 4)


def _workload():
    """An interleaved multi-system stream; svc-NN names hash evenly onto
    2 and 4 shards, so the comparison measures overlap, not skew."""
    streams = []
    for index in range(SYSTEMS):
        records = LogGenerator("thunderbird", seed=100 + index,
                               repeat_probability=0.5).generate(LINES_PER_SYSTEM)
        streams.append([dataclasses.replace(record, system=f"svc-{index:02d}")
                       for record in records])
    return [record for group in zip(*streams) for record in group]


def _merged_percentile(histograms, q: float) -> float:
    """Percentile over same-boundary histograms merged bucket-wise."""
    if not histograms:
        return 0.0
    boundaries = histograms[0].boundaries
    counts = [0] * (len(boundaries) + 1)
    for histogram in histograms:
        for index, count in enumerate(histogram.bucket_counts):
            counts[index] += count
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            if index < len(boundaries):
                return boundaries[index]
            break
    return max(histogram.max for histogram in histograms)


def _run(records, shards: int) -> dict:
    registry = MetricsRegistry()
    runtime = InferenceRuntime(
        lambda index: SyntheticWorker(cost=lambda n: time.sleep(BATCH_COST_S)),
        pattern_fn=message_pattern, shards=shards, max_batch=MAX_BATCH,
        max_latency=0.05, threaded=True, queue_capacity=50_000,
        registry=registry,
    )
    clock = registry.clock
    runtime.start()
    started = clock()
    for record in records:
        runtime.submit(record)
    reports = runtime.stop()
    elapsed = clock() - started
    stats = runtime.stats
    batch_histograms = [
        metric for name, metric in registry.metrics().items()
        if name.startswith("runtime.batch_seconds")
    ]
    return {
        "shards": shards,
        "elapsed_s": round(elapsed, 4),
        "windows": stats.windows_seen,
        "windows_per_s": round(stats.windows_seen / elapsed, 1),
        "batches": stats.batches,
        "reports": len(reports),
        "batch_p50_s": round(_merged_percentile(batch_histograms, 0.50), 5),
        "batch_p99_s": round(_merged_percentile(batch_histograms, 0.99), 5),
        "degraded_windows": stats.degraded_windows,
        "records_shed": stats.records_rejected + stats.records_dropped,
    }


def test_runtime_throughput_scaling():
    records = _workload()
    rows = [_run(records, shards) for shards in SHARD_COUNTS]
    base = rows[0]["windows_per_s"]
    speedup = rows[-1]["windows_per_s"] / base

    lines = [
        "Runtime scaling benchmark (sharded micro-batching inference)",
        f"stream                      : {len(records)} records, "
        f"{SYSTEMS} systems interleaved",
        f"simulated inference cost    : {BATCH_COST_S * 1e3:.0f} ms per batch "
        f"(max_batch={MAX_BATCH})",
    ]
    for row in rows:
        lines.append(
            f"shards={row['shards']}: {row['windows_per_s']:>8,.1f} windows/s "
            f"({row['windows']} windows, {row['batches']} batches, "
            f"batch p50 {row['batch_p50_s'] * 1e3:.1f} ms / "
            f"p99 {row['batch_p99_s'] * 1e3:.1f} ms)"
        )
    lines.append(f"speedup (4 shards vs 1)     : {speedup:.2f}x (bar: >= 2.0x)")
    emit("runtime_throughput", "\n".join(lines))
    emit_json("runtime", {
        "benchmark": "runtime_throughput",
        "workload": {
            "systems": SYSTEMS,
            "records": len(records),
            "max_batch": MAX_BATCH,
            "batch_cost_s": BATCH_COST_S,
            "shard_counts": list(SHARD_COUNTS),
        },
        "results": rows,
        "speedup_4_vs_1": round(speedup, 3),
    })

    # Same detection work at every shard count, nothing shed or degraded.
    assert len({row["windows"] for row in rows}) == 1
    assert all(row["degraded_windows"] == 0 for row in rows)
    assert all(row["records_shed"] == 0 for row in rows)
    assert speedup >= 2.0, f"expected >=2x at 4 shards, got {speedup:.2f}x"
