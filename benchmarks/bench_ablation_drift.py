"""Extension ablation: robustness to test-time log drift (§IV-E1).

Systems evolve after the detector ships: templates get reworded and new
fields appear (the instability LogRobust targets).  This bench trains
LogSynergy normally, then evaluates on (a) the clean test tail, (b) a
synonym-reworded tail, and (c) a tail with an injected schema field.

Reproduction target (shape): LEI's semantic normalization keeps the
degradation under drift modest relative to the clean score.
"""

from repro.evaluation.metrics import binary_metrics
from repro.evaluation.tables import format_series
from repro.logs.drift import inject_field, reword_records
from repro.logs.sequences import LogSequence, sliding_windows

from common import FAST_CONFIG, PUBLIC_GROUP, emit, make_experiment


def _drift_sequences(sequences: list[LogSequence], transform) -> list[LogSequence]:
    records = [r for s in sequences for r in s.records]
    # De-duplicate shared records across overlapping windows, preserving order.
    unique, seen = [], set()
    for record in records:
        if id(record) not in seen:
            seen.add(id(record))
            unique.append(record)
    return sliding_windows(transform(unique), window=10, step=5)


def test_drift_robustness(benchmark):
    experiment = make_experiment("thunderbird", PUBLIC_GROUP, seed=95)
    experiment.prepare()

    def run():
        from repro.core import LogSynergy
        model = LogSynergy(FAST_CONFIG)
        model.fit(experiment.source_train, experiment.target, experiment.target_train)

        def score(sequences):
            predictions = model.predict(sequences)
            return 100.0 * binary_metrics([s.label for s in sequences], predictions).f1

        clean = experiment.target_test
        reworded = _drift_sequences(clean, lambda r: reword_records(r, 0.8, seed=96))
        with_field = _drift_sequences(clean, lambda r: inject_field(r, probability=1.0))
        return [score(clean), score(reworded), score(with_field)]

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = ["clean", "synonym drift", "schema drift"]
    emit("ablation_drift", format_series(
        "Extension: LogSynergy F1 under test-time log drift (Thunderbird)",
        labels, {"F1": scores}, x_label="test condition",
    ))
    clean, reworded, with_field = scores
    assert reworded > clean * 0.5, f"synonym drift must not collapse F1 ({scores})"
    assert with_field > clean * 0.5, f"schema drift must not collapse F1 ({scores})"
