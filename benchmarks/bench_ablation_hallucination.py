"""Extension ablation: LEI hallucination-rate sensitivity (§IV-E2).

The paper names LLM hallucination as its internal threat and argues the
operator review loop keeps it manageable.  This bench quantifies the
threat: F1 as the simulated LLM's hallucination rate rises from 0 to 30 %,
with the review/regeneration loop active.

Reproduction target (shape): mild degradation at small rates, visible
degradation by 30 % — supporting both the threat and the claim that low
hallucination rates are tolerable.
"""

from repro.evaluation.tables import format_series
from repro.llm import SimulatedLLM

from common import FAST_CONFIG, PUBLIC_GROUP, emit, make_experiment

RATES = [0.0, 0.05, 0.1, 0.3]


def test_hallucination_sensitivity(benchmark):
    experiment = make_experiment("thunderbird", PUBLIC_GROUP, seed=80)
    experiment.prepare()

    def sweep():
        f1s = []
        for rate in RATES:
            result = experiment.run_logsynergy(
                FAST_CONFIG,
                method_name=f"LogSynergy (halluc={rate})",
                llm=SimulatedLLM(hallucination_rate=rate, seed=81),
            )
            f1s.append(100.0 * result.metrics.f1)
        return f1s

    f1s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_hallucination", format_series(
        "Extension: F1 vs LEI hallucination rate on Thunderbird",
        RATES, {"Thunderbird": f1s}, x_label="halluc. rate",
    ))
    assert f1s[0] >= f1s[-1] - 5.0, (
        f"clean LEI should be at least as good as 30% hallucination (got {f1s})"
    )
