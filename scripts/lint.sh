#!/usr/bin/env bash
# Static gate: byte-compile the tree, then run the project linter
# (repro.analysis.lint) — per-file AST rules plus the whole-program
# flow/* passes — over the library sources, benchmarks, scripts and
# examples.  Per-directory rule exemptions (e.g. benchmarks may read
# the wall clock) live in repro.analysis.lint.DEFAULT_EXEMPTIONS;
# accepted findings live in scripts/lint_baseline.json.  Extra
# arguments are passed through to `repro lint` (e.g. --select,
# --format json).
set -euo pipefail

cd "$(dirname "$0")/.."

python -m compileall -q src benchmarks examples scripts
PYTHONPATH=src python -m repro.cli lint src benchmarks scripts examples \
    --baseline scripts/lint_baseline.json "$@"
