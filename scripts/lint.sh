#!/usr/bin/env bash
# Static gate: byte-compile the tree, then run the project linter
# (repro.analysis.lint) over the library sources.  Extra arguments are
# passed through to `repro lint` (e.g. --select, extra paths).
set -euo pipefail

cd "$(dirname "$0")/.."

python -m compileall -q src benchmarks examples scripts
PYTHONPATH=src python -m repro.cli lint src "$@"
