#!/usr/bin/env bash
# Tier-1 smoke check: static gate (compileall + project linter), a fast
# model audit, a quick op-profiler run, a seconds-scale fused-kernel
# throughput sanity pass, a day-0 detector-portfolio floor check plus a
# seeded detectors fuzz episode, a deterministic 2-shard runtime replay over
# the bundled sample stream (must produce reports and non-empty
# metrics, and the process executor must render identical bytes), a
# seeded fault-injection fuzz pass (twice — the violation
# report must be byte-identical, with the unarmed-hook overhead guard),
# a checkpointed train/SIGKILL/resume byte-diff against an uninterrupted
# run plus the onboarding crash invariant and cost benchmark,
# then the test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

bash scripts/lint.sh

# Interprocedural passes: the JSON report must be byte-identical across
# two consecutive runs AND match the committed snapshot — any
# nondeterminism in the symbol table / call graph / dataflow solver
# shows up here as a diff.
flow_a="$(mktemp)"
flow_b="$(mktemp)"
trap 'rm -f "$flow_a" "$flow_b" "${replay_out:-}" "${replay_metrics:-}" \
    "${replay_proc:-}" "${fuzz_a:-}" "${fuzz_b:-}"
rm -rf "${ckpt_root:-}"' EXIT
PYTHONPATH=src python -m repro.cli lint src --select 'flow/*' \
    --format json >"$flow_a"
PYTHONPATH=src python -m repro.cli lint src --select 'flow/*' \
    --format json >"$flow_b"
cmp -s "$flow_a" "$flow_b" \
    || { echo "smoke: flow report not deterministic across runs" >&2; exit 1; }
diff -u scripts/flow_snapshot.json "$flow_a" \
    || { echo "smoke: flow report drifted from scripts/flow_snapshot.json" \
         "(regenerate with: repro lint src --select 'flow/*' --format json)" >&2
         exit 1; }

PYTHONPATH=src python -m repro.cli audit logsynergy

# Op profiler must produce a ranked hot-op table on a tiny fit.
profile_out="$(PYTHONPATH=src python -m repro.cli profile \
    --sequences 48 --epochs 1 --window 4 --embedding-dim 16 \
    --feature-dim 8 --d-model 16 --num-heads 2 --d-ff 32 --top 5)"
grep -q "fwd self" <<<"$profile_out" \
    || { echo "smoke: repro profile produced no hot-op table" >&2; exit 1; }

# Fused kernels must not be slower than the seed composition.
PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke

# Provider middleware stack: warm cache + coalescing must cut upstream
# LLM calls versus the cache-cold baseline.
PYTHONPATH=src python benchmarks/bench_llm_traffic.py --smoke

# Day-0 detector portfolio: on a never-catalogued system with no
# trained model the unsupervised ensemble must clear its F1 floor,
# and the detectors fuzz suite must hold end to end.
PYTHONPATH=src python benchmarks/bench_detectors.py --smoke
PYTHONPATH=src python -m repro.cli fuzz --episodes 1 --seed 7 \
    --suite detectors >/dev/null

replay_out="$(mktemp)"
replay_metrics="$(mktemp)"
replay_proc="$(mktemp)"
fuzz_a="$(mktemp)"
fuzz_b="$(mktemp)"
PYTHONPATH=src python -m repro.cli replay \
    --logs examples/data/replay_sample.jsonl --shards 2 \
    --out "$replay_out" --metrics-out "$replay_metrics"
test -s "$replay_out" || { echo "smoke: replay produced no reports" >&2; exit 1; }
test -s "$replay_metrics" || { echo "smoke: replay produced no metrics" >&2; exit 1; }

# The process executor must render the exact bytes the synchronous
# engine does, and its throughput floor must hold (bench --smoke:
# process workers beat threads on the CPU-bound profile when the host
# has cores to parallelize on, and stay within the IPC-overhead ceiling
# when it doesn't). A process-suite fuzz episode SIGKILLs a worker
# mid-stream and requires byte-identical recovery.
PYTHONPATH=src python -m repro.cli replay \
    --logs examples/data/replay_sample.jsonl --shards 2 \
    --executor process --out "$replay_proc"
cmp -s "$replay_out" "$replay_proc" \
    || { echo "smoke: process-executor replay diverged from sync replay" >&2
         exit 1; }
PYTHONPATH=src python benchmarks/bench_runtime_throughput.py --smoke
PYTHONPATH=src python -m repro.cli fuzz --episodes 1 --seed 7 \
    --suite process >/dev/null

# Fault-injection fuzz: every invariant must hold (exit 1 on violation;
# episode seeds are printed so a failure replays with
# `repro fuzz --episodes 1 --seed <episode seed>`), the unarmed hooks
# must stay free, and a second run must render byte-identically.
PYTHONPATH=src python -m repro.cli fuzz --episodes 2 --seed 7 \
    --out "$fuzz_a" --bench-overhead
PYTHONPATH=src python -m repro.cli fuzz --episodes 2 --seed 7 \
    --out "$fuzz_b" >/dev/null
cmp -s "$fuzz_a" "$fuzz_b" \
    || { echo "smoke: fuzz report not deterministic across runs" >&2; exit 1; }

# Checkpointed training survives a SIGKILL: train two epochs with a
# kill after epoch 1's durable checkpoint, resume in a fresh process,
# and require the final weights byte-identical to an uninterrupted run.
# Then the onboarding path: its crash invariant (a mid-onboarding death
# never demotes the serving weights) and its cost edge over a full
# retrain (bench --smoke).
ckpt_root="$(mktemp -d)"
for system in bgl spirit thunderbird; do
    PYTHONPATH=src python -m repro.cli generate --system "$system" \
        --lines 900 --out "$ckpt_root/$system.jsonl" >/dev/null
done
train_args=(--sources "$ckpt_root/bgl.jsonl" "$ckpt_root/spirit.jsonl"
    --target "$ckpt_root/thunderbird.jsonl"
    --n-source 150 --n-target 50 --epochs 2 --num-layers 1 --quiet)
PYTHONPATH=src python -m repro.cli train "${train_args[@]}" \
    --model-dir "$ckpt_root/ref" >/dev/null
set +e
PYTHONPATH=src python -m repro.cli train "${train_args[@]}" \
    --model-dir "$ckpt_root/resumed" --checkpoint-dir "$ckpt_root/ckpt" \
    --kill-after 1 >/dev/null 2>&1
kill_status=$?
set -e
[ "$kill_status" -eq 137 ] \
    || { echo "smoke: --kill-after 1 did not SIGKILL the training run" \
         "(exit $kill_status)" >&2; exit 1; }
test -s "$ckpt_root/ckpt/MANIFEST.json" \
    || { echo "smoke: no durable checkpoint survived the kill" >&2; exit 1; }
PYTHONPATH=src python -m repro.cli train "${train_args[@]}" \
    --model-dir "$ckpt_root/resumed" --checkpoint-dir "$ckpt_root/ckpt" \
    --resume >/dev/null
cmp -s "$ckpt_root/ref/model.npz" "$ckpt_root/resumed/model.npz" \
    || { echo "smoke: kill/resume weights diverged from the" \
         "uninterrupted run" >&2; exit 1; }
PYTHONPATH=src python -m repro.cli fuzz --episodes 1 --seed 7 \
    --suite onboard >/dev/null
PYTHONPATH=src python benchmarks/bench_onboard.py --smoke

# The provider stack must absorb an aggressively flaky upstream (llm
# suite stays green with --llm flaky), and the --break breaker
# self-test must trip its invariant (exit 1), proving the harness can
# detect a dead circuit breaker rather than vacuously passing.
PYTHONPATH=src python -m repro.cli fuzz --episodes 1 --seed 11 \
    --suite llm --llm flaky:error_rate=0.35 >/dev/null
if PYTHONPATH=src python -m repro.cli fuzz --episodes 1 --seed 11 \
    --suite llm --break breaker >/dev/null 2>&1; then
    echo "smoke: fuzz --break breaker did not trip its invariant" >&2
    exit 1
fi

PYTHONPATH=src python -m pytest -x -q "$@"
