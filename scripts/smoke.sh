#!/usr/bin/env bash
# Tier-1 smoke check: static gate (compileall + project linter), a fast
# model audit, a quick op-profiler run, a seconds-scale fused-kernel
# throughput sanity pass, a deterministic 2-shard runtime replay over
# the bundled sample stream (must produce reports and non-empty
# metrics), then the test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

bash scripts/lint.sh
PYTHONPATH=src python -m repro.cli audit logsynergy

# Op profiler must produce a ranked hot-op table on a tiny fit.
profile_out="$(PYTHONPATH=src python -m repro.cli profile \
    --sequences 48 --epochs 1 --window 4 --embedding-dim 16 \
    --feature-dim 8 --d-model 16 --num-heads 2 --d-ff 32 --top 5)"
grep -q "fwd self" <<<"$profile_out" \
    || { echo "smoke: repro profile produced no hot-op table" >&2; exit 1; }

# Fused kernels must not be slower than the seed composition.
PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke

replay_out="$(mktemp)"
replay_metrics="$(mktemp)"
trap 'rm -f "$replay_out" "$replay_metrics"' EXIT
PYTHONPATH=src python -m repro.cli replay \
    --logs examples/data/replay_sample.jsonl --shards 2 \
    --out "$replay_out" --metrics-out "$replay_metrics"
test -s "$replay_out" || { echo "smoke: replay produced no reports" >&2; exit 1; }
test -s "$replay_metrics" || { echo "smoke: replay produced no metrics" >&2; exit 1; }

PYTHONPATH=src python -m pytest -x -q "$@"
