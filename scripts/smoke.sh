#!/usr/bin/env bash
# Tier-1 smoke check: static gate (compileall + project linter), a fast
# model audit, a deterministic 2-shard runtime replay over the bundled
# sample stream (must produce reports and non-empty metrics), then the
# test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

bash scripts/lint.sh
PYTHONPATH=src python -m repro.cli audit logsynergy

replay_out="$(mktemp)"
replay_metrics="$(mktemp)"
trap 'rm -f "$replay_out" "$replay_metrics"' EXIT
PYTHONPATH=src python -m repro.cli replay \
    --logs examples/data/replay_sample.jsonl --shards 2 \
    --out "$replay_out" --metrics-out "$replay_metrics"
test -s "$replay_out" || { echo "smoke: replay produced no reports" >&2; exit 1; }
test -s "$replay_metrics" || { echo "smoke: replay produced no metrics" >&2; exit 1; }

PYTHONPATH=src python -m pytest -x -q "$@"
