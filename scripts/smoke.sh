#!/usr/bin/env bash
# Tier-1 smoke check: static gate (compileall + project linter), a fast
# model audit, then the test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

bash scripts/lint.sh
PYTHONPATH=src python -m repro.cli audit logsynergy
PYTHONPATH=src python -m pytest -x -q "$@"
