#!/usr/bin/env bash
# Tier-1 smoke check: byte-compile everything, then run the test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

python -m compileall -q src benchmarks examples
PYTHONPATH=src python -m pytest -x -q "$@"
