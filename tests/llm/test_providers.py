"""LLMProvider contract, the deprecated LLMClient alias, and FlakyLLM."""

import pytest

from repro.llm import FlakyLLM, LLMProvider, ProviderError, garble
from repro.llm.prompts import build_interpretation_prompt
from repro.llm.simulated import SimulatedLLM

PROMPT = build_interpretation_prompt(
    "bgl", "rts panic! - stopping execution, reason 1")


class _Echo(LLMProvider):
    def complete(self, prompt: str) -> str:
        return f"echo: {prompt}"


class TestProviderContract:
    def test_complete_batch_default_loops_in_order(self):
        assert _Echo().complete_batch(["a", "b"]) == ["echo: a", "echo: b"]

    def test_isinstance_stays_structural(self):
        class DuckTyped:
            def complete(self, prompt: str) -> str:
                return prompt

        assert isinstance(DuckTyped(), LLMProvider)
        assert issubclass(DuckTyped, LLMProvider)
        assert not isinstance(object(), LLMProvider)

    def test_concrete_providers_are_providers(self):
        from repro.llm import CachedLLM
        from repro.llm.middleware import ProviderMiddleware

        for cls in (SimulatedLLM, FlakyLLM, CachedLLM, ProviderMiddleware):
            assert issubclass(cls, LLMProvider)

    def test_abstract_without_complete(self):
        with pytest.raises(TypeError):
            LLMProvider()


class TestDeprecatedAlias:
    def test_llmclient_warns_and_aliases_the_abc(self):
        import repro.llm.interface as interface

        with pytest.warns(DeprecationWarning, match="LLMClient is deprecated"):
            assert interface.LLMClient is LLMProvider
        with pytest.warns(DeprecationWarning):
            import repro.llm

            assert repro.llm.LLMClient is LLMProvider

    def test_unknown_attribute_still_raises(self):
        import repro.llm

        with pytest.raises(AttributeError):
            repro.llm.NoSuchThing


class TestFlakyLLM:
    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="error_rate"):
            FlakyLLM(error_rate=1.5)
        with pytest.raises(ValueError, match="hallucination_rate"):
            FlakyLLM(hallucination_rate=-0.1)
        with pytest.raises(ValueError, match="latency"):
            FlakyLLM(latency=-1.0)

    def test_fault_free_matches_inner_provider(self):
        assert FlakyLLM(seed=5).complete(PROMPT) == \
            SimulatedLLM(seed=5).complete(PROMPT)

    def test_error_sequence_is_seed_deterministic(self):
        def run():
            flaky = FlakyLLM(error_rate=0.5, seed=3)
            outcomes = []
            for _ in range(20):
                try:
                    outcomes.append(flaky.complete(PROMPT))
                except ProviderError:
                    outcomes.append("<error>")
            return outcomes, flaky.errors

        first, second = run(), run()
        assert first == second
        assert 0 < first[1] < 20

    def test_error_draws_do_not_consume_inner_rng(self):
        # The property the retry invariant pins down: a prompt that
        # failed upstream completes byte-identically once retried.
        golden = SimulatedLLM(seed=0).complete(PROMPT)
        flaky = FlakyLLM(error_rate=0.99, seed=0)
        for _ in range(500):
            try:
                assert flaky.complete(PROMPT) == golden
            except ProviderError:
                continue
        assert flaky.errors > 0
        assert flaky.calls - flaky.errors > 0

    def test_latency_uses_injected_sleep(self):
        pauses = []
        flaky = FlakyLLM(latency=0.5, jitter=0.25, seed=1, sleep=pauses.append)
        flaky.complete(PROMPT)
        flaky.complete(PROMPT)
        assert len(pauses) == 2
        assert all(0.5 <= pause <= 0.75 for pause in pauses)
        assert flaky.slept == pytest.approx(sum(pauses))

    def test_hallucination_garbles_the_completion(self):
        flaky = FlakyLLM(hallucination_rate=1.0, seed=0)
        assert flaky.complete(PROMPT) == garble(
            SimulatedLLM(seed=0).complete(PROMPT))

    def test_garble_breaks_format_review(self):
        from repro.llm.interpreter import review_interpretation

        assert review_interpretation(garble("Event: kernel panic."))
        assert not review_interpretation("Event: kernel panic.")
