"""Hallucination bursts through the interpreter's review/regeneration loop.

Seeded burst episodes inject format-breaking completions (an unexpanded
``<*>`` wildcard) at ``llm.simulated.complete``; the review loop must
absorb every burst when its regeneration budget is intact, and must leak
bad interpretations when the budget is zero.
"""

import pytest

from repro.llm.interpreter import EventInterpreter, review_interpretation
from repro.llm.simulated import SimulatedLLM
from repro.logs.events import EventKind, concepts_for_system
from repro.obs import MetricsRegistry
from repro.testing import FaultInjector, FaultPlan, FaultSpec
from repro.testing.invariants import garble_completion

DIALECT = "bgl"


def _representatives(count: int = 12) -> list[str]:
    concepts = (concepts_for_system(DIALECT, EventKind.NORMAL)
                + concepts_for_system(DIALECT, EventKind.ANOMALOUS))
    return [concept.phrases[DIALECT].replace("<*>", "7")
            for concept in concepts[:count]]


def _burst_plan(seed: int, bursts: tuple[tuple[int, int], ...]) -> FaultPlan:
    return FaultPlan(tuple(
        FaultSpec("llm.simulated.complete", "corrupt", start=start,
                  count=length, mutate=garble_completion)
        for start, length in bursts
    ), seed=seed)


def _run_episode(seed: int, bursts, *, max_regenerations: int,
                 registry: MetricsRegistry | None = None):
    interpreter = EventInterpreter(SimulatedLLM(),
                                   max_regenerations=max_regenerations)
    failed = 0
    regenerated = 0
    with FaultInjector(_burst_plan(seed, bursts),
                       registry=registry) as injector:
        for representative in _representatives():
            text, regens = interpreter.interpret_event(DIALECT, representative)
            regenerated += regens
            if review_interpretation(text):
                failed += 1
    return failed, regenerated, injector.total_fired


class TestReviewAbsorbsBursts:
    @pytest.mark.parametrize("seed", [0, 17, 91])
    def test_no_bad_interpretation_survives(self, seed):
        # Burst length 2 < attempts (1 + budget 2), so the third attempt
        # of any chain always lands past the burst and comes back clean.
        failed, regenerated, fired = _run_episode(
            seed, ((0, 2), (7, 2)), max_regenerations=2)
        assert fired == 4
        assert failed == 0
        # Each garbled completion costs at least one regeneration.
        assert regenerated >= 4

    def test_clean_episode_never_regenerates(self):
        failed, regenerated, fired = _run_episode(
            3, (), max_regenerations=2)
        assert (failed, regenerated, fired) == (0, 0, 0)

    def test_fired_faults_counted_through_obs(self):
        registry = MetricsRegistry()
        _run_episode(5, ((0, 2),), max_regenerations=2, registry=registry)
        assert registry.counter("testing.faults.fired").value == 2.0
        assert registry.counter(
            "testing.faults.fired.llm.simulated.complete").value == 2.0


class TestZeroBudgetLeaks:
    def test_bad_interpretations_survive_without_review(self):
        failed, regenerated, fired = _run_episode(
            11, ((0, 2), (7, 3)), max_regenerations=0)
        assert fired == 5
        assert regenerated == 0
        assert failed == 5

    def test_budget_of_one_absorbs_single_faults(self):
        # One regeneration suffices per isolated bad completion: the
        # fault is positional, so the retry's completion is clean.
        failed, regenerated, fired = _run_episode(
            23, ((0, 1), (6, 1)), max_regenerations=1)
        assert fired == 2
        assert failed == 0
        assert regenerated == 2
