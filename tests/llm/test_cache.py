"""CachedLLM tests."""

import json

import pytest

from repro.llm.cache import CachedLLM
from repro.llm.simulated import SimulatedLLM


class _Counting:
    def __init__(self, answer="the answer"):
        self.calls = 0
        self.answer = answer

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return f"{self.answer} #{self.calls}"


class TestCachedLLM:
    def test_second_call_hits_cache(self, tmp_path):
        inner = _Counting()
        cached = CachedLLM(inner, tmp_path / "cache.json")
        first = cached.complete("prompt A")
        second = cached.complete("prompt A")
        assert first == second
        assert inner.calls == 1
        assert cached.hits == 1 and cached.misses == 1

    def test_distinct_prompts_distinct_entries(self, tmp_path):
        cached = CachedLLM(_Counting(), tmp_path / "cache.json")
        cached.complete("prompt A")
        cached.complete("prompt B")
        assert len(cached) == 2

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        first = CachedLLM(_Counting(), path)
        answer = first.complete("stable prompt")

        fresh_inner = _Counting(answer="different")
        second = CachedLLM(fresh_inner, path)
        assert second.complete("stable prompt") == answer
        assert fresh_inner.calls == 0

    def test_manual_save_mode(self, tmp_path):
        path = tmp_path / "cache.json"
        cached = CachedLLM(_Counting(), path, autosave=False)
        cached.complete("prompt")
        assert not path.exists()
        cached.save()
        assert path.exists()

    def test_invalidate(self, tmp_path):
        inner = _Counting()
        cached = CachedLLM(inner, tmp_path / "cache.json")
        cached.complete("prompt")
        assert cached.invalidate("prompt")
        assert not cached.invalidate("prompt")
        cached.complete("prompt")
        assert inner.calls == 2

    def test_corrupt_cache_raises_without_quarantine(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            CachedLLM(_Counting(), path, quarantine=False)

    def test_truncated_cache_quarantined_and_regenerated(self, tmp_path):
        path = tmp_path / "cache.json"
        inner = _Counting()
        with CachedLLM(inner, path, autosave=False) as warm:
            warm.complete("prompt A")
            warm.complete("prompt B")
        intact = path.read_bytes()
        path.write_bytes(intact[: len(intact) // 2])  # torn write, mid-byte

        reloaded = CachedLLM(inner, path, clock=lambda: 1234.5)
        assert len(reloaded) == 0
        quarantined = tmp_path / "cache.json.corrupt-1234"
        assert quarantined.exists()
        assert quarantined.read_bytes() == intact[: len(intact) // 2]
        assert not path.exists()  # moved aside, not copied
        # Entries regenerate on demand and persist again.
        reloaded.complete("prompt C")
        assert json.loads(path.read_text())

    def test_quarantine_counter_and_name_collision(self, tmp_path):
        from repro.obs import MetricsRegistry, use_registry

        path = tmp_path / "cache.json"
        registry = MetricsRegistry()
        with use_registry(registry):
            for _ in range(2):
                path.write_text("][ truncated")
                CachedLLM(_Counting(), path, clock=lambda: 99.0)
        assert registry.counter("llm.cache.quarantined").value == 2.0
        assert (tmp_path / "cache.json.corrupt-99").exists()
        assert (tmp_path / "cache.json.corrupt-99-1").exists()

    def test_non_dict_payload_quarantined(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]")  # valid JSON, wrong shape
        cached = CachedLLM(_Counting(), path, clock=lambda: 7.0)
        assert len(cached) == 0
        assert (tmp_path / "cache.json.corrupt-7").exists()

    def test_wraps_simulated_llm(self, tmp_path):
        from repro.llm.prompts import build_interpretation_prompt
        cached = CachedLLM(SimulatedLLM(), tmp_path / "cache.json")
        prompt = build_interpretation_prompt("bgl", "rts panic! - stopping execution, reason 1")
        assert "kernel" in cached.complete(prompt).lower()
        stored = json.loads((tmp_path / "cache.json").read_text())
        assert len(stored) == 1


class TestContextManager:
    def test_exit_saves(self, tmp_path):
        path = tmp_path / "cache.json"
        with CachedLLM(_Counting(), path, autosave=False) as cached:
            cached.complete("prompt")
            assert not path.exists()
        assert json.loads(path.read_text())

    def test_exit_saves_on_exception(self, tmp_path):
        path = tmp_path / "cache.json"
        with pytest.raises(RuntimeError):
            with CachedLLM(_Counting(), path, autosave=False) as cached:
                cached.complete("prompt")
                raise RuntimeError("fit blew up")
        assert json.loads(path.read_text())


class TestRegistryCounters:
    def test_hits_misses_invalidations_mirrored(self, tmp_path):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            cached = CachedLLM(_Counting(), tmp_path / "cache.json")
        cached.complete("A")
        cached.complete("A")
        cached.complete("B")
        cached.invalidate("B")
        assert registry.counter("llm.cache.hits").value == 1.0
        assert registry.counter("llm.cache.misses").value == 2.0
        assert registry.counter("llm.cache.invalidations").value == 1.0
        # Mirrors the plain attributes.
        assert cached.hits == 1 and cached.misses == 2

    def test_noop_registry_by_default(self, tmp_path):
        cached = CachedLLM(_Counting(), tmp_path / "cache.json")
        cached.complete("A")
        cached.complete("A")
        assert cached.hits == 1 and cached.misses == 1  # attrs still work

    def test_invalidate_emits_canonical_counter_and_tracks_entries(self, tmp_path):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            cached = CachedLLM(_Counting(), tmp_path / "cache.json")
        cached.complete("A")
        cached.complete("B")
        assert registry.gauge("llm.cache.entries").value == 2.0
        assert cached.invalidate("A")
        assert registry.counter("llm.cache.invalidated").value == 1.0
        assert registry.counter("llm.cache.invalidations").value == 1.0  # legacy
        assert registry.gauge("llm.cache.entries").value == 1.0
        # A miss on a prompt that was never cached moves nothing.
        assert not cached.invalidate("A")
        assert registry.counter("llm.cache.invalidated").value == 1.0
        assert registry.gauge("llm.cache.entries").value == 1.0

    def test_invalidating_a_quarantine_regenerated_entry_settles_gauges(self, tmp_path):
        from repro.obs import MetricsRegistry, use_registry

        path = tmp_path / "cache.json"
        path.write_text("{torn write")
        registry = MetricsRegistry()
        with use_registry(registry):
            cached = CachedLLM(_Counting(), path, clock=lambda: 5.0)
        cached.complete("A")
        cached.complete("B")
        assert registry.gauge("llm.cache.regenerated_live").value == 2.0
        # The drift this fixes: dropping a regenerated entry used to leave
        # it counted as live forever.
        assert cached.invalidate("A")
        assert registry.gauge("llm.cache.regenerated_live").value == 1.0
        assert registry.gauge("llm.cache.entries").value == 1.0
        assert registry.counter("llm.cache.invalidated").value == 1.0
        # Regenerating it again re-counts it exactly once.
        cached.complete("A")
        assert registry.gauge("llm.cache.regenerated_live").value == 2.0
