"""Prompt construction tests."""

from repro.llm.prompts import (
    SYSTEM_DESCRIPTIONS, build_interpretation_prompt, extract_log_from_prompt,
)


class TestPrompts:
    def test_contains_system_context(self):
        prompt = build_interpretation_prompt("bgl", "some log")
        assert "HPC" in prompt or "supercomputer" in prompt

    def test_contains_log(self):
        prompt = build_interpretation_prompt("spirit", "Connection refused (111)")
        assert "Connection refused (111)" in prompt

    def test_unknown_system_falls_back(self):
        prompt = build_interpretation_prompt("mystery", "log body")
        assert "software system" in prompt
        assert "log body" in prompt

    def test_roundtrip_extraction(self):
        message = "GM: LANAI[0]: PANIC: parity"
        prompt = build_interpretation_prompt("spirit", message)
        assert extract_log_from_prompt(prompt) == message

    def test_extraction_without_marker_returns_input(self):
        assert extract_log_from_prompt("raw text") == "raw text"

    def test_all_six_systems_described(self):
        for system in ("bgl", "spirit", "thunderbird", "system_a", "system_b", "system_c"):
            assert system in SYSTEM_DESCRIPTIONS

    def test_cdms_systems_described_as_cloud(self):
        for system in ("system_a", "system_b", "system_c"):
            assert "cloud" in SYSTEM_DESCRIPTIONS[system].lower()
