"""The shared ``--llm`` provider-spec grammar and factory."""

import pytest

from repro.llm import CachedLLM, FlakyLLM, SimulatedLLM
from repro.llm.factory import (
    DEFAULT_SPEC,
    default_provider,
    parse_provider_spec,
    provider_from_spec,
    resolve_provider,
)
from repro.llm.middleware import MemoryCacheMiddleware


class TestSpecGrammar:
    def test_bare_name(self):
        assert parse_provider_spec("simulated") == ("simulated", {})

    def test_options_coerce_by_type(self):
        name, options = parse_provider_spec(
            "flaky:error_rate=0.1,seed=7,latency=0,verbose=true,"
            "note=hello,strict=false")
        assert name == "flaky"
        assert options == {"error_rate": 0.1, "seed": 7, "latency": 0,
                           "verbose": True, "note": "hello", "strict": False}
        assert isinstance(options["seed"], int)
        assert isinstance(options["error_rate"], float)

    def test_name_is_case_insensitive_and_stripped(self):
        assert parse_provider_spec("  Simulated  ")[0] == "simulated"

    def test_rejects_empty_spec(self):
        with pytest.raises(ValueError, match="empty provider spec"):
            parse_provider_spec("   ")

    def test_rejects_malformed_options(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_provider_spec("flaky:error_rate")
        with pytest.raises(ValueError, match="key=value"):
            parse_provider_spec("flaky:=0.1")


class TestProviderFromSpec:
    def test_simulated_gets_the_ambient_seed(self):
        provider = provider_from_spec("simulated", seed=9)
        assert isinstance(provider, SimulatedLLM)
        prompt = "Log line: rts panic! - stopping execution, reason 1"
        assert provider.complete(prompt) == SimulatedLLM(seed=9).complete(prompt)

    def test_explicit_seed_wins(self):
        provider = provider_from_spec("flaky:seed=3,error_rate=0.5", seed=9)
        assert provider.seed == 3

    def test_flaky_with_options(self):
        provider = provider_from_spec("flaky:error_rate=0.25,latency=0.01")
        assert isinstance(provider, FlakyLLM)
        assert provider.error_rate == 0.25
        assert provider.latency == 0.01
        assert isinstance(provider.inner, SimulatedLLM)

    def test_cached_requires_a_path(self, tmp_path):
        with pytest.raises(ValueError, match="requires a path"):
            provider_from_spec("cached")
        provider = provider_from_spec(
            f"cached:path={tmp_path / 'c.json'},hallucination_rate=0.5")
        assert isinstance(provider, CachedLLM)
        assert provider.inner.hallucination_rate == 0.5

    def test_unknown_provider_lists_known_names(self):
        with pytest.raises(ValueError, match="cached, flaky, simulated"):
            provider_from_spec("gpt7")

    def test_bad_option_name_becomes_a_value_error(self):
        with pytest.raises(ValueError, match="bad options"):
            provider_from_spec("flaky:warp_factor=9")


class TestResolveProvider:
    def test_default_spec_is_simulated_behind_the_stack(self):
        provider, cache = resolve_provider(None, seed=5)
        assert cache is None
        assert isinstance(provider, MemoryCacheMiddleware)
        assert DEFAULT_SPEC == "simulated"
        assert provider.complete("x") == default_provider(seed=5).complete("x")

    def test_middleware_can_be_disabled(self):
        provider, _ = resolve_provider("simulated", middleware=False)
        assert isinstance(provider, SimulatedLLM)

    def test_legacy_cache_path_wraps_the_spec_provider(self, tmp_path):
        path = tmp_path / "cache.json"
        provider, cache = resolve_provider("simulated", cache_path=str(path),
                                           middleware=False)
        assert provider is cache
        assert isinstance(cache, CachedLLM)
        assert not cache.autosave  # caller context-manages the save
        provider.complete("p")
        assert not path.exists()
        cache.save()
        assert path.exists()

    def test_cache_sits_under_the_middleware_stack(self, tmp_path):
        provider, cache = resolve_provider(
            "simulated", cache_path=str(tmp_path / "cache.json"))
        assert isinstance(provider, MemoryCacheMiddleware)
        assert cache is not None
        layer = provider
        while not isinstance(layer, CachedLLM):
            layer = layer.inner
        assert layer is cache
