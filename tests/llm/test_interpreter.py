"""LEI interpreter pipeline tests (review/regeneration loop)."""

import pytest

from repro.llm.interpreter import EventInterpreter, review_interpretation
from repro.llm.simulated import SimulatedLLM
from repro.logs.generator import generate_logs
from repro.parsing.template_store import TemplateStore


class _FlakyLLM:
    """Returns bad output for the first ``failures`` calls, then good."""

    def __init__(self, failures: int, bad: str = ""):
        self.failures = failures
        self.bad = bad
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            return self.bad
        return "A clean one-sentence interpretation."


class TestReview:
    def test_accepts_clean_sentence(self):
        assert review_interpretation("Network interface down due to loss of signal.") == []

    def test_rejects_empty(self):
        assert "empty interpretation" in review_interpretation("   ")

    def test_rejects_single_word(self):
        assert any("short" in p for p in review_interpretation("error"))

    def test_rejects_overlong(self):
        text = " ".join(["word"] * 60)
        assert any("long" in p for p in review_interpretation(text))

    def test_rejects_wildcards(self):
        assert any("wildcard" in p for p in review_interpretation("event <*> occurred here"))

    def test_rejects_multiline(self):
        assert any("line breaks" in p for p in review_interpretation("line one\nline two"))


class TestEventInterpreter:
    def test_regenerates_on_bad_output(self):
        llm = _FlakyLLM(failures=1)
        interpreter = EventInterpreter(llm, max_regenerations=2)
        text, regenerations = interpreter.interpret_event("bgl", "some log line")
        assert text == "A clean one-sentence interpretation."
        assert regenerations == 1

    def test_gives_up_after_max_regenerations(self):
        llm = _FlakyLLM(failures=100)
        interpreter = EventInterpreter(llm, max_regenerations=2)
        _, regenerations = interpreter.interpret_event("bgl", "some log line")
        assert regenerations == 2
        assert llm.calls == 3

    def test_negative_max_regenerations_rejected(self):
        with pytest.raises(ValueError):
            EventInterpreter(SimulatedLLM(), max_regenerations=-1)

    def test_interpret_store_covers_all_events(self):
        store = TemplateStore()
        for record in generate_logs("spirit", 1500, seed=0):
            store.ingest(record.message)
        interpreter = EventInterpreter(SimulatedLLM())
        report = interpreter.interpret_store("spirit", store)
        assert set(report.interpretations) == set(store.event_ids)
        assert report.llm_calls >= len(store.event_ids)
        assert report.failed_review == []

    def test_one_call_per_event_not_per_message(self):
        """The paper's point: only a few hundred templates need the LLM,
        not millions of messages."""
        store = TemplateStore()
        records = generate_logs("bgl", 2000, seed=1)
        for record in records:
            store.ingest(record.message)
        llm = SimulatedLLM()
        EventInterpreter(llm).interpret_store("bgl", store)
        assert llm.call_count < len(records) / 10
