"""Traffic-control middleware stack over LLM providers."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.llm.middleware import (
    CircuitBreakerMiddleware,
    CoalescingMiddleware,
    HedgedRetryMiddleware,
    MemoryCacheMiddleware,
    RateLimitExceeded,
    RateLimitMiddleware,
    build_provider_stack,
    pattern_fallback,
)
from repro.llm.prompts import build_interpretation_prompt
from repro.llm.providers import FlakyLLM, LLMProvider, ProviderError
from repro.llm.simulated import SimulatedLLM, fallback_rewrite
from repro.obs import MetricsRegistry


class _Counting(LLMProvider):
    """Upstream stub: counts calls, optionally failing the first few."""

    def __init__(self, fail_first: int = 0, answer: str = "ok"):
        self.calls = 0
        self.batch_calls = 0
        self.fail_first = fail_first
        self.answer = answer

    def complete(self, prompt: str) -> str:
        self.calls += 1
        if self.calls <= self.fail_first:
            raise ProviderError(f"down (call {self.calls})")
        return f"{self.answer}: {prompt}"

    def complete_batch(self, prompts):
        self.batch_calls += 1
        return [self.complete(prompt) for prompt in prompts]


class _Clock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestMemoryCache:
    def test_repeat_prompt_served_from_memory(self):
        inner = _Counting()
        registry = MetricsRegistry()
        cache = MemoryCacheMiddleware(inner, registry=registry)
        assert cache.complete("p") == cache.complete("p")
        assert inner.calls == 1
        assert registry.counter("llm.provider.memcache.hits").value == 1.0
        assert registry.counter("llm.provider.memcache.misses").value == 1.0

    def test_ttl_expires_entries(self):
        inner, clock = _Counting(), _Clock()
        registry = MetricsRegistry()
        cache = MemoryCacheMiddleware(inner, ttl=10.0, clock=clock,
                                      registry=registry)
        cache.complete("p")
        clock.now = 9.9
        cache.complete("p")
        assert inner.calls == 1
        clock.now = 10.0
        cache.complete("p")
        assert inner.calls == 2
        assert registry.counter("llm.provider.memcache.expired").value == 1.0

    def test_lru_eviction_beyond_capacity(self):
        inner = _Counting()
        registry = MetricsRegistry()
        cache = MemoryCacheMiddleware(inner, capacity=2, registry=registry)
        cache.complete("a")
        cache.complete("b")
        cache.complete("a")  # refresh a; b is now least-recent
        cache.complete("c")  # evicts b
        assert len(cache) == 2
        cache.complete("a")
        assert inner.calls == 3  # a still cached
        cache.complete("b")
        assert inner.calls == 4  # b was evicted
        assert registry.counter("llm.provider.memcache.evictions").value == 2.0

    def test_batch_dedupes_misses_and_preserves_order(self):
        inner = _Counting()
        cache = MemoryCacheMiddleware(inner, registry=MetricsRegistry())
        cache.complete("a")
        got = cache.complete_batch(["a", "b", "a", "b", "c"])
        assert got == ["ok: a", "ok: b", "ok: a", "ok: b", "ok: c"]
        assert inner.calls == 3  # a from memory; b and c upstream once each
        assert inner.batch_calls == 1

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="capacity"):
            MemoryCacheMiddleware(_Counting(), capacity=0,
                                  registry=MetricsRegistry())
        with pytest.raises(ValueError, match="ttl"):
            MemoryCacheMiddleware(_Counting(), ttl=0.0,
                                  registry=MetricsRegistry())


class _Gate(LLMProvider):
    """Blocks every completion until the test opens the gate."""

    def __init__(self):
        self.calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()

    def complete(self, prompt: str) -> str:
        self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=10.0)
        return f"gated: {prompt}"


class TestCoalescing:
    N = 8

    def test_concurrent_identical_prompts_share_one_upstream_call(self):
        inner = _Gate()
        registry = MetricsRegistry()
        stack = CoalescingMiddleware(inner, registry=registry)
        with ThreadPoolExecutor(max_workers=self.N) as pool:
            futures = [pool.submit(stack.complete, "hot prompt")
                       for _ in range(self.N)]
            assert inner.entered.wait(timeout=10.0)
            # Followers park on the leader's flight; give them a beat to
            # register before the upstream call is allowed to finish.
            time.sleep(0.2)
            inner.release.set()
            results = [future.result(timeout=10.0) for future in futures]
        assert results == ["gated: hot prompt"] * self.N
        assert inner.calls == 1
        assert registry.counter("llm.provider.coalesced").value == self.N - 1
        assert registry.counter("llm.provider.coalesce.leaders").value == 1.0

    def test_leader_failure_is_shared_then_flight_clears(self):
        inner = _Counting(fail_first=1)
        stack = CoalescingMiddleware(inner, registry=MetricsRegistry())
        with pytest.raises(ProviderError):
            stack.complete("p")
        # The failed flight is not cached: the next call goes upstream.
        assert stack.complete("p") == "ok: p"
        assert inner.calls == 2

    def test_batch_dedupes_to_distinct_prompts(self):
        inner = _Counting()
        registry = MetricsRegistry()
        stack = CoalescingMiddleware(inner, registry=registry)
        got = stack.complete_batch(["a", "b", "a", "a"])
        assert got == ["ok: a", "ok: b", "ok: a", "ok: a"]
        assert inner.calls == 2
        assert registry.counter("llm.provider.coalesced").value == 2.0


class TestCircuitBreaker:
    def _breaker(self, inner, clock, **kwargs):
        registry = MetricsRegistry()
        kwargs.setdefault("unhealthy_after", 2)
        kwargs.setdefault("cooldown", 30.0)
        return CircuitBreakerMiddleware(inner, clock=clock, registry=registry,
                                        **kwargs), registry

    def test_opens_probes_and_closes_deterministically(self):
        inner, clock = _Counting(fail_first=3), _Clock()
        breaker, registry = self._breaker(inner, clock)

        # Two consecutive failures: degraded answers, breaker opens once.
        assert breaker.complete("p") == pattern_fallback("p")
        assert breaker.complete("p") == pattern_fallback("p")
        assert registry.counter("llm.provider.breaker.opened").value == 1.0

        # Open: upstream is not touched until the cooldown elapses.
        clock.now = 29.9
        breaker.complete("p")
        assert inner.calls == 2

        # Half-open probe fails -> still degraded, cooldown doubled.
        clock.now = 30.0
        assert breaker.complete("p") == pattern_fallback("p")
        assert inner.calls == 3
        clock.now = 89.9  # 30 + 2*30 = 90 is the next probe time
        breaker.complete("p")
        assert inner.calls == 3

        # Next probe succeeds -> closed, upstream answers again.
        clock.now = 90.0
        assert breaker.complete("p") == "ok: p"
        assert breaker.complete("p") == "ok: p"
        assert registry.counter("llm.provider.breaker.probes").value == 2.0
        assert registry.counter("llm.provider.breaker.closed").value == 1.0
        # Degraded: two opening failures, one while open, the failed
        # probe, and one more while waiting out the doubled cooldown.
        assert registry.counter("llm.provider.degraded").value == 5.0
        assert breaker.last_error is None

    def test_success_resets_the_failure_streak(self):
        inner, clock = _Counting(), _Clock()
        breaker, registry = self._breaker(inner, clock)
        breaker.monitor.record_bad(clock())  # one failure, not enough
        breaker.complete("p")  # success resets the streak
        breaker.monitor.record_bad(clock())
        assert breaker.monitor.healthy

    def test_custom_fallback_and_batch_degradation(self):
        inner, clock = _Counting(fail_first=99), _Clock()
        breaker, registry = self._breaker(
            inner, clock, fallback=lambda prompt: f"degraded<{prompt}>")
        got = breaker.complete_batch(["a", "b", "c"])
        assert got == ["degraded<a>", "degraded<b>", "degraded<c>"]
        assert inner.calls == 2  # opened after 2; third never went upstream
        assert registry.counter("llm.provider.degraded").value == 3.0

    def test_programming_errors_propagate(self):
        class Broken(LLMProvider):
            def complete(self, prompt: str) -> str:
                raise TypeError("not a transient fault")

        breaker, _ = self._breaker(Broken(), _Clock())
        with pytest.raises(TypeError):
            breaker.complete("p")
        assert breaker.monitor.healthy


class TestHedgedRetry:
    def test_retries_within_budget_succeed(self):
        inner = _Counting(fail_first=2)
        registry = MetricsRegistry()
        retry = HedgedRetryMiddleware(inner, max_retries=2, sleep=lambda s: None,
                                      registry=registry)
        assert retry.complete("p") == "ok: p"
        assert inner.calls == 3
        assert registry.counter("llm.provider.retries").value == 2.0

    def test_budget_exhaustion_raises_the_last_error(self):
        retry = HedgedRetryMiddleware(_Counting(fail_first=99), max_retries=2,
                                      registry=MetricsRegistry())
        with pytest.raises(ProviderError, match="call 3"):
            retry.complete("p")

    def test_odd_retries_go_to_the_hedge(self):
        primary = _Counting(fail_first=99)
        hedge = _Counting(answer="hedge")
        registry = MetricsRegistry()
        retry = HedgedRetryMiddleware(primary, hedge=hedge, max_retries=1,
                                      registry=registry)
        assert retry.complete("p") == "hedge: p"
        assert primary.calls == 1 and hedge.calls == 1
        assert registry.counter("llm.provider.hedged").value == 1.0

    def test_backoff_is_jittered_exponential_and_capped(self):
        pauses = []
        retry = HedgedRetryMiddleware(
            _Counting(fail_first=99), max_retries=6, backoff_base=0.1,
            backoff_cap=0.8, jitter=0.5, seed=0, sleep=pauses.append,
            registry=MetricsRegistry())
        with pytest.raises(ProviderError):
            retry.complete("p")
        assert len(pauses) == 6
        bases = [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]  # doubling, capped
        for pause, base in zip(pauses, bases):
            assert base <= pause <= base * 1.5

    def test_only_provider_errors_are_retried(self):
        class Broken(LLMProvider):
            def __init__(self):
                self.calls = 0

            def complete(self, prompt: str) -> str:
                self.calls += 1
                raise ValueError("permanent")

        broken = Broken()
        retry = HedgedRetryMiddleware(broken, max_retries=5,
                                      registry=MetricsRegistry())
        with pytest.raises(ValueError):
            retry.complete("p")
        assert broken.calls == 1

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="max_retries"):
            HedgedRetryMiddleware(_Counting(), max_retries=-1,
                                  registry=MetricsRegistry())
        with pytest.raises(ValueError, match="jitter"):
            HedgedRetryMiddleware(_Counting(), jitter=-0.1,
                                  registry=MetricsRegistry())


class TestRateLimit:
    def _bucket(self, inner, clock, **kwargs):
        registry = MetricsRegistry()
        return RateLimitMiddleware(inner, clock=clock, registry=registry,
                                   **kwargs), registry

    def test_burst_then_refill_at_rate(self):
        inner, clock = _Counting(), _Clock()
        pauses = []
        bucket, registry = self._bucket(inner, clock, rate=2.0, burst=2.0,
                                        sleep=pauses.append)
        bucket.complete("a")
        bucket.complete("b")  # burst exhausted
        assert pauses == []

        # Third call must wait for one token: 0.5s at 2 tokens/s.  The
        # injected sleep advances the fake clock like a real wait would.
        def sleeping(seconds):
            pauses.append(seconds)
            clock.now += seconds

        bucket._sleep = sleeping
        bucket.complete("c")
        assert pauses == [pytest.approx(0.5)]
        assert registry.counter("llm.provider.throttled").value == 1.0
        assert registry.counter(
            "llm.provider.throttle_wait_seconds").value == pytest.approx(0.5)

    def test_non_blocking_mode_raises(self):
        bucket, registry = self._bucket(_Counting(), _Clock(), rate=1.0,
                                        block=False)
        bucket.complete("a")
        with pytest.raises(RateLimitExceeded, match="token bucket empty"):
            bucket.complete("b")
        # RateLimitExceeded is a ProviderError: the retry tier backs off.
        assert isinstance(RateLimitExceeded("x"), ProviderError)

    def test_backwards_clock_never_mints_tokens(self):
        clock = _Clock(now=1000.0)
        bucket, _ = self._bucket(_Counting(), clock, rate=1.0, burst=1.0,
                                 block=False)
        bucket.complete("a")
        clock.now = 0.0  # NTP step backwards
        assert bucket.tokens == 0.0
        with pytest.raises(RateLimitExceeded):
            bucket.complete("b")
        # Nor does recovering to just short of the origin mint any.
        clock.now = 999.0
        assert bucket.tokens == 0.0
        clock.now = 1001.0  # one second past the origin -> one token
        assert bucket.tokens == 1.0
        assert bucket.complete("c") == "ok: c"

    def test_batch_pays_one_token_per_prompt(self):
        bucket, _ = self._bucket(_Counting(), _Clock(), rate=1.0, burst=3.0,
                                 block=False)
        assert bucket.complete_batch(["a", "b", "c"]) == \
            ["ok: a", "ok: b", "ok: c"]
        with pytest.raises(RateLimitExceeded):
            bucket.complete("d")

    def test_validates_knobs(self):
        with pytest.raises(ValueError, match="rate"):
            RateLimitMiddleware(_Counting(), rate=0.0,
                                registry=MetricsRegistry())
        with pytest.raises(ValueError, match="burst"):
            RateLimitMiddleware(_Counting(), rate=1.0, burst=0.5,
                                registry=MetricsRegistry())


class TestBuildProviderStack:
    def test_nests_in_contract_order(self):
        inner = _Counting()
        stack = build_provider_stack(inner, rate=10.0,
                                     registry=MetricsRegistry())
        layers = []
        layer = stack
        while hasattr(layer, "inner"):
            layers.append(type(layer))
            layer = layer.inner
        assert layers == [MemoryCacheMiddleware, CoalescingMiddleware,
                          CircuitBreakerMiddleware, HedgedRetryMiddleware,
                          RateLimitMiddleware]
        assert layer is inner

    def test_switches_remove_tiers(self):
        stack = build_provider_stack(
            _Counting(), memory_cache=False, coalesce=False, breaker=False,
            max_retries=0, registry=MetricsRegistry())
        assert not isinstance(stack, (MemoryCacheMiddleware,
                                      CoalescingMiddleware))
        assert isinstance(stack, _Counting)

    def test_full_stack_is_deterministic_and_transparent(self):
        prompt = build_interpretation_prompt(
            "bgl", "rts panic! - stopping execution, reason 1")
        bare = SimulatedLLM(seed=4).complete(prompt)
        stack = build_provider_stack(SimulatedLLM(seed=4), rate=100.0,
                                     clock=_Clock(), seed=4,
                                     registry=MetricsRegistry())
        assert stack.complete(prompt) == bare
        assert stack.complete(prompt) == bare  # memory-cache path

    def test_absorbs_a_flaky_upstream_byte_identically(self):
        prompt = build_interpretation_prompt(
            "bgl", "ciod: error reading message prefix after lostconnection")
        golden = SimulatedLLM(seed=2).complete(prompt)
        flaky = FlakyLLM(error_rate=0.6, seed=2)
        stack = build_provider_stack(flaky, max_retries=10, clock=_Clock(),
                                     seed=2, registry=MetricsRegistry())
        assert stack.complete(prompt) == golden

    def test_sustained_outage_degrades_to_pattern_fallback(self):
        from repro.llm.prompts import extract_log_from_prompt

        prompt = build_interpretation_prompt(
            "bgl", "rts panic! - stopping execution, reason 1")
        outage = FlakyLLM(error_rate=1.0, seed=0)
        registry = MetricsRegistry()
        stack = build_provider_stack(outage, memory_cache=False,
                                     unhealthy_after=1, cooldown=1e9,
                                     max_retries=1, clock=_Clock(),
                                     registry=registry)
        got = [stack.complete(prompt) for _ in range(5)]
        assert got == [fallback_rewrite(extract_log_from_prompt(prompt))] * 5
        assert registry.counter("llm.provider.breaker.opened").value == 1.0
        assert registry.counter("llm.provider.degraded").value == 5.0
