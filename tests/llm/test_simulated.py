"""Simulated LLM tests: syntax unification, fallback, hallucination."""

import numpy as np
import pytest

from repro.llm.prompts import build_interpretation_prompt
from repro.llm.simulated import SimulatedLLM, normalize_tokens
from repro.logs.events import concept_by_name
from repro.logs.generator import generate_logs


def _interpret(llm: SimulatedLLM, system: str, message: str) -> str:
    return llm.complete(build_interpretation_prompt(system, message))


class TestNormalizeTokens:
    def test_lowercase_and_split(self):
        assert normalize_tokens("Connection REFUSED (111)") == ["connection", "refused"]

    def test_drops_numbers_and_hex(self):
        assert normalize_tokens("code 0xdead 42") == ["code"]

    def test_drops_stopwords(self):
        assert "the" not in normalize_tokens("the disk of the node")


class TestSyntaxUnification:
    """The core LEI property: dialects of one concept -> one sentence."""

    def test_cross_system_unification(self):
        llm = SimulatedLLM()
        concept = concept_by_name("network_interruption")
        interpretations = set()
        for system, phrase in concept.phrases.items():
            rendered = phrase.replace("<*>", "77")
            interpretations.add(_interpret(llm, system, rendered))
        assert interpretations == {concept.canonical}

    def test_unification_on_generated_streams(self):
        """Over full generated streams, most messages must map to their
        ground-truth concept's canonical sentence."""
        llm = SimulatedLLM()
        correct = 0
        records = generate_logs("system_c", 300, seed=0)
        for record in records:
            expected = concept_by_name(record.concept).canonical
            if _interpret(llm, "system_c", record.message) == expected:
                correct += 1
        assert correct / len(records) > 0.9

    def test_distinct_concepts_stay_distinct(self):
        llm = SimulatedLLM()
        a = _interpret(llm, "bgl", "rts panic! - stopping execution, reason code 7")
        b = _interpret(llm, "bgl", "MMCS heartbeat from node 12 acknowledged")
        assert a != b


class TestFallback:
    def test_unknown_message_gets_normalizing_rewrite(self):
        llm = SimulatedLLM()
        out = _interpret(llm, "bgl", "zorgon flux capacitor misalignment 77")
        assert out.startswith("Event:")
        assert "77" not in out  # numbers dropped

    def test_fallback_expands_abbreviations(self):
        llm = SimulatedLLM()
        out = _interpret(llm, "system_c", "gateway los detected on uplink zz9")
        assert "loss of signal" in out

    def test_empty_message(self):
        llm = SimulatedLLM()
        out = _interpret(llm, "bgl", "42 99 0x10")
        assert "unrecognized" in out


class TestHallucination:
    def test_zero_rate_deterministic_and_correct(self):
        llm = SimulatedLLM(hallucination_rate=0.0)
        message = "machine check interrupt (bit=0x10): L2 dcache unit read return parity error"
        outputs = {_interpret(llm, "bgl", message) for _ in range(5)}
        assert outputs == {concept_by_name("parity_error").canonical}

    def test_rate_changes_some_outputs(self):
        clean = SimulatedLLM(hallucination_rate=0.0)
        noisy = SimulatedLLM(hallucination_rate=0.8, seed=1)
        message = "machine check interrupt (bit=0x10): L2 dcache unit read return parity error"
        expected = _interpret(clean, "bgl", message)
        outputs = [_interpret(noisy, "bgl", message) for _ in range(20)]
        assert any(o != expected for o in outputs)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLLM(hallucination_rate=1.0)
        with pytest.raises(ValueError):
            SimulatedLLM(hallucination_rate=-0.1)

    def test_call_count_tracked(self):
        llm = SimulatedLLM()
        _interpret(llm, "bgl", "anything")
        _interpret(llm, "bgl", "anything else")
        assert llm.call_count == 2
