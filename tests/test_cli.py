"""CLI workflow tests (generate -> train -> detect, and evaluate)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--system", "bgl", "--out", "x.jsonl", "--lines", "50"]
        )
        assert args.system == "bgl"
        assert args.lines == 50

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestGenerate:
    def test_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "bgl.jsonl"
        code = main(["generate", "--system", "bgl", "--lines", "120", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "120 records" in capsys.readouterr().out

    def test_scale_mode(self, tmp_path):
        out = tmp_path / "c.jsonl"
        assert main(["generate", "--system", "system_c", "--scale", "0.001",
                     "--out", str(out)]) == 0
        assert out.stat().st_size > 0


class TestTrainDetect:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        files = {}
        for system, lines in (("bgl", 2500), ("spirit", 2500), ("thunderbird", 1500)):
            path = root / f"{system}.jsonl"
            assert main(["generate", "--system", system, "--lines", str(lines),
                         "--out", str(path)]) == 0
            files[system] = str(path)
        return root, files

    def test_full_workflow(self, workspace, capsys):
        root, files = workspace
        model_dir = str(root / "pipeline")
        metrics_path = root / "train_metrics.jsonl"
        cache_path = root / "interpretations.json"
        code = main([
            "train",
            "--sources", files["bgl"], files["spirit"],
            "--target", files["thunderbird"],
            "--n-source", "300", "--n-target", "60",
            "--epochs", "2", "--num-layers", "1",
            "--model-dir", model_dir, "--quiet",
            "--metrics-out", str(metrics_path),
            "--llm-cache", str(cache_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "pipeline saved" in captured.out
        # The legacy flag keeps working but points at the successor.
        assert "--llm-cache is deprecated" in captured.err
        assert "--llm cached:path=" in captured.err
        assert cache_path.exists()

        # The exported JSONL carries the acceptance metrics: trainer epoch
        # counters, LLM cache hit/miss counters, pipeline-stage spans.
        from repro.obs import read_jsonl
        events = read_jsonl(metrics_path)
        names = {e.get("name") for e in events}
        assert {"trainer.epochs", "llm.cache.misses", "llm.cache.hits"} <= names
        assert "fit.train" in [e["name"] for e in events if e["kind"] == "span"]

        # `repro stats` renders the dump.
        assert main(["stats", str(metrics_path)]) == 0
        assert "trainer.epochs" in capsys.readouterr().out

        fresh = root / "fresh.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "300",
                     "--out", str(fresh), "--seed", "9"]) == 0
        code = main(["detect", "--model-dir", model_dir, "--logs", str(fresh),
                     "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "windows scored" in out
        assert "score=" in out

    def test_replay_with_middleware_stack_is_byte_identical(self, workspace,
                                                            tmp_path):
        root, files = workspace
        model_dir = str(root / "pipeline")
        logs = tmp_path / "replay_logs.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "200",
                     "--out", str(logs), "--seed", "4"]) == 0
        default_out = tmp_path / "default.jsonl"
        stacked_out = tmp_path / "stacked.jsonl"
        assert main(["replay", "--logs", str(logs), "--model-dir", model_dir,
                     "--out", str(default_out)]) == 0
        assert main(["replay", "--logs", str(logs), "--model-dir", model_dir,
                     "--llm", "simulated", "--out", str(stacked_out)]) == 0
        assert stacked_out.read_bytes() == default_out.read_bytes()

    def test_bad_llm_spec_is_a_clean_cli_error(self, workspace, tmp_path):
        root, files = workspace
        with pytest.raises(SystemExit, match="--llm: unknown LLM provider"):
            main(["replay", "--logs", files["thunderbird"],
                  "--model-dir", str(root / "pipeline"), "--llm", "gpt7"])

    def test_detect_too_few_records(self, workspace, tmp_path):
        root, files = workspace
        model_dir = str(root / "pipeline")
        short = tmp_path / "short.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "3",
                     "--out", str(short)]) == 0
        with pytest.raises(SystemExit):
            main(["detect", "--model-dir", model_dir, "--logs", str(short)])


class TestEvaluate:
    def test_prints_table(self, capsys):
        code = main([
            "evaluate", "--target", "thunderbird", "--sources", "bgl", "spirit",
            "--scale", "0.002", "--n-source", "200", "--n-target", "50",
            "--max-test", "150", "--epochs", "2", "--num-layers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LogSynergy" in out
        assert "F1%" in out


class TestReplayServe:
    SAMPLE = "examples/data/replay_sample.jsonl"

    def test_replay_is_shard_invariant(self, tmp_path, capsys):
        outputs = []
        for shards in (2, 4):
            out = tmp_path / f"reports_{shards}.jsonl"
            assert main(["replay", "--logs", self.SAMPLE,
                         "--shards", str(shards), "--out", str(out)]) == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # the bundled sample raises reports
        assert "records ->" in capsys.readouterr().out

    def test_replay_writes_metrics_jsonl(self, tmp_path):
        out = tmp_path / "reports.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert main(["replay", "--logs", self.SAMPLE, "--shards", "2",
                     "--out", str(out), "--metrics-out", str(metrics)]) == 0
        assert metrics.stat().st_size > 0

    def test_replay_stdout_matches_file_output(self, tmp_path, capsys):
        out = tmp_path / "reports.jsonl"
        assert main(["replay", "--logs", self.SAMPLE, "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["replay", "--logs", self.SAMPLE]) == 0
        stdout = capsys.readouterr().out
        assert out.read_text() in stdout

    def test_serve_threaded_matches_replay(self, tmp_path, capsys):
        replay_out = tmp_path / "replay.jsonl"
        serve_out = tmp_path / "serve.jsonl"
        assert main(["replay", "--logs", self.SAMPLE, "--shards", "2",
                     "--out", str(replay_out)]) == 0
        assert main(["serve", "--logs", self.SAMPLE, "--shards", "2",
                     "--out", str(serve_out)]) == 0
        assert serve_out.read_bytes() == replay_out.read_bytes()
        assert "served" in capsys.readouterr().out

    def test_replay_rejects_empty_logs(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="no records"):
            main(["replay", "--logs", str(empty)])


class TestProfile:
    FAST = ["profile", "--sequences", "48", "--epochs", "1", "--window", "4",
            "--embedding-dim", "16", "--feature-dim", "8", "--d-model", "16",
            "--num-heads", "2", "--d-ff", "32"]

    def test_prints_ranked_table(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "fused kernels" in out
        assert "fwd self" in out and "bwd total" in out
        assert "lstm_layer" in out or "attention" in out or "matmul" in out

    def test_unfused_mode(self, capsys):
        assert main(self.FAST + ["--unfused", "--top", "5"]) == 0
        assert "seed (unfused)" in capsys.readouterr().out

    def test_metrics_out_exports_profile(self, tmp_path, capsys):
        metrics = tmp_path / "profile.jsonl"
        assert main(self.FAST + ["--metrics-out", str(metrics)]) == 0
        from repro.obs import read_jsonl

        names = {event.get("name", "") for event in read_jsonl(metrics)}
        assert any(name.startswith("nn.profile.") for name in names)
        assert any(name.endswith(".backward_seconds") for name in names)


class TestCheckpointedTraining:
    """train --checkpoint-dir / --stop-after / --resume and the onboard
    subcommand (shadow-gated warm-start fine-tuning)."""

    TRAIN_FLAGS = ["--n-source", "200", "--n-target", "60",
                   "--epochs", "2", "--num-layers", "1", "--quiet"]

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ckpt_cli")
        files = {}
        for system, lines in (("bgl", 1500), ("spirit", 1500),
                              ("thunderbird", 1200)):
            path = root / f"{system}.jsonl"
            assert main(["generate", "--system", system, "--lines",
                         str(lines), "--out", str(path)]) == 0
            files[system] = str(path)
        ref_dir = root / "reference"
        assert main(["train",
                     "--sources", files["bgl"], files["spirit"],
                     "--target", files["thunderbird"],
                     "--model-dir", str(ref_dir)] + self.TRAIN_FLAGS) == 0
        return root, files, ref_dir

    def test_stop_then_resume_is_byte_identical(self, workspace):
        root, files, ref_dir = workspace
        resumed_dir = root / "resumed"
        ckpt_dir = root / "ckpt"
        common = ["train",
                  "--sources", files["bgl"], files["spirit"],
                  "--target", files["thunderbird"],
                  "--model-dir", str(resumed_dir),
                  "--checkpoint-dir", str(ckpt_dir)] + self.TRAIN_FLAGS
        # Epoch 1, pause, checkpoint durably...
        assert main(common + ["--stop-after", "1"]) == 0
        assert (ckpt_dir / "MANIFEST.json").exists()
        # ...then resume to the full 2 epochs in a fresh invocation.
        assert main(common + ["--resume"]) == 0
        assert (resumed_dir / "model.npz").read_bytes() \
            == (ref_dir / "model.npz").read_bytes()

    def test_resume_requires_checkpoint_dir(self, workspace):
        root, files, _ = workspace
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["train",
                  "--sources", files["bgl"], files["spirit"],
                  "--target", files["thunderbird"],
                  "--model-dir", str(root / "x"), "--resume"]
                 + self.TRAIN_FLAGS)

    def test_kill_after_requires_checkpoint_dir(self, workspace):
        root, files, _ = workspace
        with pytest.raises(SystemExit, match="--kill-after requires"):
            main(["train",
                  "--sources", files["bgl"], files["spirit"],
                  "--target", files["thunderbird"],
                  "--model-dir", str(root / "x"), "--kill-after", "1"]
                 + self.TRAIN_FLAGS)

    def test_onboard_promotes_and_saves(self, workspace, tmp_path, capsys):
        root, files, ref_dir = workspace
        day0 = tmp_path / "day0.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "400",
                     "--out", str(day0), "--seed", "17"]) == 0
        out_dir = tmp_path / "promoted"
        code = main(["onboard", "--model-dir", str(ref_dir),
                     "--logs", str(day0), "--epochs", "1",
                     "--gate-f1", "0.0", "--executor", "sync",
                     "--out-dir", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PROMOTED" in out and "shadow F1" in out
        assert (out_dir / "model.npz").exists()

    def test_onboard_rejection_keeps_serving_model(self, workspace, tmp_path,
                                                   capsys):
        root, files, ref_dir = workspace
        day0 = tmp_path / "day0.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "400",
                     "--out", str(day0), "--seed", "23"]) == 0
        before = (ref_dir / "model.npz").read_bytes()
        out_dir = tmp_path / "never"
        code = main(["onboard", "--model-dir", str(ref_dir),
                     "--logs", str(day0), "--epochs", "1",
                     "--gate-f1", "1.0", "--executor", "none",
                     "--out-dir", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "REJECTED" in out
        assert not out_dir.exists()
        assert (ref_dir / "model.npz").read_bytes() == before

    def test_onboard_too_few_windows(self, workspace, tmp_path):
        root, files, ref_dir = workspace
        short = tmp_path / "short.jsonl"
        assert main(["generate", "--system", "thunderbird", "--lines", "12",
                     "--out", str(short)]) == 0
        with pytest.raises(SystemExit, match="too few"):
            main(["onboard", "--model-dir", str(ref_dir),
                  "--logs", str(short)])

    def test_onboard_resume_requires_checkpoint_dir(self, workspace,
                                                    tmp_path):
        root, files, ref_dir = workspace
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["onboard", "--model-dir", str(ref_dir),
                  "--logs", files["thunderbird"], "--resume"])
