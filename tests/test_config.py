"""Configuration tests."""

import pytest

from repro.config import ExperimentConfig, LogSynergyConfig


class TestLogSynergyConfig:
    def test_defaults_valid(self):
        config = LogSynergyConfig()
        assert config.d_model % config.num_heads == 0

    def test_paper_settings(self):
        """§IV-A4: six layers, 12 heads, FFN 2048, lr 1e-4, batch 1024,
        10 epochs, lambda_MI = lambda_DA = 0.01, n_s 50k, n_t 5k."""
        paper = LogSynergyConfig.paper()
        assert paper.num_layers == 6
        assert paper.num_heads == 12
        assert paper.d_ff == 2048
        assert paper.learning_rate == 1e-4
        assert paper.batch_size == 1024
        assert paper.epochs == 10
        assert paper.lambda_mi == 0.01
        assert paper.lambda_da == 0.01
        assert paper.n_source == 50_000
        assert paper.n_target == 5_000

    def test_validation(self):
        with pytest.raises(ValueError):
            LogSynergyConfig(d_model=30, num_heads=4)
        with pytest.raises(ValueError):
            LogSynergyConfig(threshold=1.5)
        with pytest.raises(ValueError):
            LogSynergyConfig(lambda_mi=-0.1)
        with pytest.raises(ValueError):
            LogSynergyConfig(feature_dim=0)

    def test_with_overrides(self):
        config = LogSynergyConfig().with_overrides(epochs=3)
        assert config.epochs == 3
        assert config.d_model == LogSynergyConfig().d_model

    def test_reduced_accepts_overrides(self):
        assert LogSynergyConfig.reduced(batch_size=8).batch_size == 8

    def test_frozen(self):
        with pytest.raises(Exception):
            LogSynergyConfig().epochs = 99


class TestExperimentConfig:
    def test_valid(self):
        config = ExperimentConfig(target="bgl", sources=("spirit", "thunderbird"))
        assert config.target == "bgl"

    def test_target_not_in_sources(self):
        with pytest.raises(ValueError):
            ExperimentConfig(target="bgl", sources=("bgl",))

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            ExperimentConfig(target="bgl", sources=())
