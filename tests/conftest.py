"""Shared fixtures: tiny datasets and a trained LogSynergy model.

Session-scoped so the expensive pieces (generation, LEI, training) run
once for the whole suite.
"""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core import LogSynergy
from repro.evaluation.splits import continuous_target_split, source_training_slice
from repro.logs import build_dataset

TINY_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=12, batch_size=64, learning_rate=5e-4, seed=0,
)


@pytest.fixture(scope="session")
def tiny_datasets():
    """Three small public-group datasets."""
    return {
        name: build_dataset(name, scale=0.006, seed=index)
        for index, name in enumerate(["bgl", "spirit", "thunderbird"])
    }


@pytest.fixture(scope="session")
def tiny_experiment_data(tiny_datasets):
    """Sources + target split with thunderbird as the target."""
    sources = {
        name: source_training_slice(ds.sequences, 1200)
        for name, ds in tiny_datasets.items()
        if name != "thunderbird"
    }
    split = continuous_target_split(tiny_datasets["thunderbird"].sequences, 100)
    return {
        "sources": sources,
        "target": "thunderbird",
        "target_train": split.train,
        "target_test": split.test[:400],
    }


@pytest.fixture(scope="session")
def fitted_logsynergy(tiny_experiment_data):
    """A LogSynergy model trained once for the whole test session."""
    model = LogSynergy(TINY_CONFIG)
    model.fit(
        tiny_experiment_data["sources"],
        tiny_experiment_data["target"],
        tiny_experiment_data["target_train"],
    )
    return model
