"""JSONL round-trip and markdown summary."""

import itertools

import pytest

from repro.obs import (
    MetricsRegistry, format_markdown, read_jsonl, registry_events,
    summarize_events, write_jsonl,
)


def _populated_registry():
    ticks = itertools.count()
    registry = MetricsRegistry(clock=lambda: float(next(ticks)))
    registry.counter("llm.cache.hits").inc(7)
    registry.gauge("trainer.loss.total").set(0.25)
    histogram = registry.histogram("service.window_seconds", boundaries=(0.5, 1.0))
    histogram.observe(0.25)
    histogram.observe(2.0)
    with registry.tracer.span("fit", target="tbird"):
        with registry.tracer.span("fit.parse"):
            pass
    return registry


def test_registry_events_cover_all_kinds():
    events = registry_events(_populated_registry())
    kinds = {e["kind"] for e in events}
    assert kinds == {"counter", "gauge", "histogram", "span"}
    spans = [e for e in events if e["kind"] == "span"]
    assert [(s["name"], s["depth"], s["parent"]) for s in spans] == [
        ("fit", 0, None), ("fit.parse", 1, "fit"),
    ]
    (histogram,) = [e for e in events if e["kind"] == "histogram"]
    assert histogram["bucket_counts"] == [1, 0, 1]
    assert histogram["boundaries"] == [0.5, 1.0]


def test_jsonl_round_trip(tmp_path):
    registry = _populated_registry()
    path = tmp_path / "metrics.jsonl"
    count = write_jsonl(registry, path)
    events = read_jsonl(path)
    assert len(events) == count
    assert events == registry_events(registry)


def test_read_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "counter", "name": "ok", "value": 1}\nnot json\n')
    with pytest.raises(ValueError, match=":2"):
        read_jsonl(path)
    path.write_text('["a", "list"]\n')
    with pytest.raises(ValueError, match="not a metrics event"):
        read_jsonl(path)


def test_summarize_events_markdown_sections(tmp_path):
    registry = _populated_registry()
    summary = format_markdown(registry)
    assert "## Counters & gauges" in summary
    assert "| llm.cache.hits | counter | 7 |" in summary
    assert "## Histograms" in summary
    assert "service.window_seconds" in summary
    assert "## Spans" in summary
    assert "&nbsp;&nbsp;fit.parse" in summary
    # Round-tripping through JSONL yields the same table.
    path = tmp_path / "metrics.jsonl"
    write_jsonl(registry, path)
    assert summarize_events(read_jsonl(path)) == summary


def test_summarize_empty():
    assert summarize_events([]) == "(no metrics recorded)"
