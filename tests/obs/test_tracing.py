"""Nested spans with a deterministic clock."""

import itertools

import pytest

from repro.obs import MetricsRegistry, Tracer, trace, use_registry


def fake_clock():
    ticks = itertools.count()
    return lambda: float(next(ticks))


def test_nested_spans_record_durations_and_parents():
    tracer = Tracer(clock=fake_clock())  # epoch consumes tick 0
    with tracer.span("outer", role="root"):          # open @1
        with tracer.span("inner") as inner:          # open @2
            inner.set("work", 42)
        # inner closes @3 -> duration 1
    # outer closes @4 -> duration 3

    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert outer.attributes == {"role": "root"}
    assert outer.duration == pytest.approx(3.0)
    (inner,) = outer.children
    assert inner.parent_name == "outer"
    assert inner.duration == pytest.approx(1.0)
    assert inner.attributes == {"work": 42}
    assert tracer.span_names() == ["outer", "inner"]
    assert [s.name for s in tracer.find("inner")] == ["inner"]


def test_exception_marks_span_and_propagates():
    tracer = Tracer(clock=fake_clock())
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    (span,) = tracer.roots
    assert span.attributes["error"] == "RuntimeError"


def test_sibling_spans_attach_in_completion_order():
    tracer = Tracer(clock=fake_clock())
    with tracer.span("parent"):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
    (parent,) = tracer.roots
    assert [c.name for c in parent.children] == ["first", "second"]


def test_trace_helper_uses_active_registry():
    registry = MetricsRegistry(clock=fake_clock())
    with use_registry(registry):
        with trace("pipeline.stage", items=3):
            pass
    (span,) = registry.tracer.find("pipeline.stage")
    assert span.attributes == {"items": 3}
    # Outside the override, trace() is a no-op again.
    with trace("ignored"):
        pass
    assert registry.tracer.find("ignored") == []


def test_registry_find_spans_delegates_to_tracer():
    registry = MetricsRegistry(clock=fake_clock())
    with registry.tracer.span("a"):
        pass
    assert [s.name for s in registry.find_spans("a")] == ["a"]
