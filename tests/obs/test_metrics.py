"""Counter/gauge/histogram semantics and registry behavior."""

import itertools

import pytest

from repro.obs import (
    DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry,
    NULL_REGISTRY, get_registry, use_registry,
)


def fake_clock(step: float = 1.0, start: float = 0.0):
    """Deterministic clock: start, start+step, start+2*step, ..."""
    ticks = itertools.count()
    return lambda: start + step * next(ticks)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="cannot inc"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_bucket_assignment_inclusive_upper_edges(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # buckets: <=1, <=2, <=4, overflow
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(21.2)

    def test_boundaries_must_be_sorted_and_distinct(self):
        with pytest.raises(ValueError, match="sorted and distinct"):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted and distinct"):
            Histogram("h", boundaries=(1.0, 1.0))

    def test_percentile_is_bucket_upper_bound(self):
        histogram = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.percentile(0.5) == 1.0
        assert histogram.percentile(0.75) == 2.0
        # Overflow values report the observed max.
        histogram.observe(50.0)
        assert histogram.percentile(1.0) == 50.0
        with pytest.raises(ValueError, match="quantile"):
            histogram.percentile(0.0)

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0.0

    def test_timer_observes_elapsed_from_injected_clock(self):
        histogram = Histogram("h", boundaries=(1.0, 5.0), clock=fake_clock(step=2.0))
        with histogram.time():
            pass  # clock ticks: enter=0, exit=2 -> duration 2
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(2.0)
        assert histogram.bucket_counts == [0, 1, 0]


class TestMetricsRegistry:
    def test_handles_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.histogram("h").boundaries == DEFAULT_BUCKETS

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 3.0
        assert snap["g"] == 1.5
        assert snap["h"] == {"count": 1, "sum": 0.5, "mean": 0.5}


class TestActiveRegistry:
    def test_default_is_noop(self):
        registry = get_registry()
        assert registry.enabled is False
        registry.counter("anything").inc()
        assert registry.counter("anything").value == 0.0
        assert registry.metrics() == {}

    def test_use_registry_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as installed:
            assert installed is registry
            assert get_registry() is registry
            get_registry().counter("seen").inc()
        assert get_registry() is NULL_REGISTRY
        assert registry.counter("seen").value == 1.0

    def test_nested_overrides_restore_in_order(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer
        assert get_registry() is NULL_REGISTRY

    def test_noop_timer_and_span_cost_nothing(self):
        registry = NULL_REGISTRY
        with registry.histogram("h").time():
            pass
        with registry.tracer.span("s", key=1) as span:
            span.set("k", "v")
        assert registry.tracer.roots == []
        assert registry.tracer.find("s") == []
