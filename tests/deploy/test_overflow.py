"""Online service behaviour under buffer overflow and empty input."""

import pytest

from repro.deploy import OnlineService
from repro.deploy.buffer import OVERFLOW_POLICIES, BoundedBuffer
from repro.deploy.online import ServiceStats
from repro.logs.generator import LogGenerator
from repro.obs import MetricsRegistry


class TestOverflow:
    def test_tiny_buffer_drops_but_survives(self, fitted_logsynergy):
        service = OnlineService(fitted_logsynergy, buffer_capacity=50)
        stream = LogGenerator("thunderbird", seed=31).generate(500)
        service.process(stream)
        assert service.collector.stats.dropped > 0
        assert service.collector.stats.shipped <= 500
        # Whatever got through still forms windows and is judged.
        assert service.stats.windows_seen >= 1

    def test_empty_batch_is_noop(self, fitted_logsynergy):
        service = OnlineService(fitted_logsynergy)
        assert service.process([]) == []
        assert service.stats.windows_seen == 0


class TestOverflowPolicies:
    def test_policy_registry_is_complete(self):
        assert OVERFLOW_POLICIES == ("reject", "drop-oldest")

    def test_reject_counts_through_the_registry(self):
        registry = MetricsRegistry()
        buffer = BoundedBuffer(capacity=2, registry=registry)
        assert buffer.offer("a") and buffer.offer("b")
        assert not buffer.offer("c")
        assert buffer.total_rejected == 1
        assert registry.counter("deploy.buffer_rejected").value == 1
        assert buffer.drain() == ["a", "b"]

    def test_drop_oldest_evicts_the_head_and_counts(self):
        registry = MetricsRegistry()
        buffer = BoundedBuffer(capacity=2, policy="drop-oldest",
                               registry=registry)
        assert buffer.offer("a") and buffer.offer("b")
        assert buffer.offer("c")  # admitted: the cost falls on "a"
        assert buffer.total_dropped == 1
        assert buffer.total_rejected == 0
        assert registry.counter("deploy.buffer_dropped").value == 1
        assert buffer.drain() == ["b", "c"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown overflow policy"):
            BoundedBuffer(capacity=2, policy="spill")


class TestServiceStats:
    def test_skip_rate_is_zero_before_any_window(self):
        stats = ServiceStats(MetricsRegistry())
        assert stats.windows_seen == 0
        assert stats.model_skip_rate == 0.0  # no ZeroDivisionError

    def test_skip_rate_reflects_library_absorption(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        registry.counter("service.windows_seen").inc(10)
        registry.counter("service.model_invocations").inc(4)
        assert stats.model_skip_rate == pytest.approx(0.6)


class TestEmptyPrediction:
    def test_pipeline_predict_empty(self, fitted_logsynergy):
        assert fitted_logsynergy.predict([]).shape == (0,)
        assert fitted_logsynergy.predict_proba([]).shape == (0,)
