"""Online service behaviour under buffer overflow and empty input."""

from repro.deploy import OnlineService
from repro.logs.generator import LogGenerator


class TestOverflow:
    def test_tiny_buffer_drops_but_survives(self, fitted_logsynergy):
        service = OnlineService(fitted_logsynergy, buffer_capacity=50)
        stream = LogGenerator("thunderbird", seed=31).generate(500)
        service.process(stream)
        assert service.collector.stats.dropped > 0
        assert service.collector.stats.shipped <= 500
        # Whatever got through still forms windows and is judged.
        assert service.stats.windows_seen >= 1

    def test_empty_batch_is_noop(self, fitted_logsynergy):
        service = OnlineService(fitted_logsynergy)
        assert service.process([]) == []
        assert service.stats.windows_seen == 0


class TestEmptyPrediction:
    def test_pipeline_predict_empty(self, fitted_logsynergy):
        assert fitted_logsynergy.predict([]).shape == (0,)
        assert fitted_logsynergy.predict_proba([]).shape == (0,)
