"""Deployment stage tests: buffer, collector, formatter, pattern library, alerts."""

import pytest

from repro.core.report import build_report
from repro.deploy import (
    AlertRouter, BoundedBuffer, EmailSink, LogCollector, LogFormatter,
    PatternLibrary, SmsSink,
)
from repro.logs import generate_logs


class TestBoundedBuffer:
    def test_fifo(self):
        buffer = BoundedBuffer(capacity=10)
        for i in range(5):
            assert buffer.offer(i)
        assert buffer.poll(3) == [0, 1, 2]
        assert buffer.poll(10) == [3, 4]

    def test_rejects_when_full(self):
        buffer = BoundedBuffer(capacity=2)
        assert buffer.offer(1) and buffer.offer(2)
        assert not buffer.offer(3)
        assert buffer.total_rejected == 1
        assert len(buffer) == 2

    def test_drain(self):
        buffer = BoundedBuffer(capacity=5)
        for i in range(3):
            buffer.offer(i)
        assert buffer.drain() == [0, 1, 2]
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedBuffer(capacity=0)

    def test_invalid_poll(self):
        with pytest.raises(ValueError):
            BoundedBuffer().poll(0)


class TestCollector:
    def test_ships_and_counts(self):
        buffer = BoundedBuffer(capacity=100)
        collector = LogCollector(buffer)
        records = generate_logs("bgl", 30, seed=0)
        stats = collector.ship(records)
        assert stats.shipped == 30
        assert stats.dropped == 0
        assert len(buffer) == 30

    def test_drops_on_backpressure(self):
        buffer = BoundedBuffer(capacity=10)
        collector = LogCollector(buffer)
        stats = collector.ship(generate_logs("bgl", 30, seed=0))
        assert stats.shipped == 10
        assert stats.dropped == 20
        assert stats.total == 30


class TestFormatter:
    def test_windows_emitted(self):
        buffer = BoundedBuffer(capacity=1000)
        LogCollector(buffer).ship(generate_logs("bgl", 25, seed=0))
        formatter = LogFormatter(buffer, window=10, step=5)
        windows = formatter.pump(max_items=100)
        # 25 records -> windows at offsets 0,5,10 (15 needs records 15..24 ok) => 4? depends:
        # offsets 0,5,10,15 all complete with 25 records.
        assert len(windows) == 4
        assert all(len(w) == 10 for w in windows)

    def test_incremental_pumping(self):
        buffer = BoundedBuffer(capacity=1000)
        formatter = LogFormatter(buffer, window=10, step=5)
        records = generate_logs("bgl", 40, seed=0)
        LogCollector(buffer).ship(records[:8])
        assert formatter.pump() == []  # not enough yet
        LogCollector(buffer).ship(records[8:])
        windows = formatter.pump()
        assert len(windows) == 7

    def test_normalization(self):
        buffer = BoundedBuffer(capacity=100)
        LogCollector(buffer).ship(generate_logs("spirit", 10, seed=0))
        formatter = LogFormatter(buffer, window=10, step=5)
        window = formatter.pump()[0]
        assert window[0].system == "spirit"
        assert window[0].message == window[0].message.strip()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogFormatter(BoundedBuffer(), window=0)


class TestPatternLibrary:
    def test_miss_then_hit(self):
        library = PatternLibrary()
        pattern = (1, 2, 3)
        assert library.lookup(pattern) is None
        library.remember(pattern, True)
        assert library.lookup(pattern) is True
        assert library.stats.hits == 1
        assert library.stats.misses == 1
        assert library.stats.hit_rate == 0.5

    def test_capacity_cap(self):
        library = PatternLibrary(max_patterns=2)
        library.remember((1,), False)
        library.remember((2,), False)
        library.remember((3,), True)  # over cap: ignored
        assert len(library) == 2
        assert library.lookup((3,)) is None

    def test_update_existing_under_cap(self):
        library = PatternLibrary(max_patterns=1)
        library.remember((1,), False)
        library.remember((1,), True)  # update allowed
        assert library.lookup((1,)) is True

    def test_known_anomalous_count(self):
        library = PatternLibrary()
        library.remember((1,), True)
        library.remember((2,), False)
        assert library.known_anomalous_patterns() == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PatternLibrary(max_patterns=0)


class TestAlerting:
    def _report(self):
        return build_report("system_a", 0.97, 0.5, ["msg one"], ["Interpretation."])

    def test_sms_truncated(self):
        sink = SmsSink()
        sink.deliver(self._report())
        assert len(sink.delivered) == 1
        assert len(sink.delivered[0]) <= SmsSink.MAX_LENGTH

    def test_email_full_body(self):
        sink = EmailSink()
        sink.deliver(self._report())
        assert "msg one" in sink.delivered[0]
        assert "Interpretation." in sink.delivered[0]

    def test_router_fans_out(self):
        sms, email = SmsSink(), EmailSink()
        router = AlertRouter([sms])
        router.add_sink(email)
        delivered = router.route(self._report())
        assert delivered == 2
        assert router.routed == 1
        assert len(sms.delivered) == len(email.delivered) == 1
