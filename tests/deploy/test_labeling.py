"""Labeling workflow tests (§VI-B1)."""

import pytest

from repro.deploy.labeling import Annotator, dual_annotation
from repro.logs import generate_logs, sliding_windows


def _sequences(n_lines=3000, seed=0):
    return sliding_windows(generate_logs("bgl", n_lines, seed=seed))


class TestAnnotator:
    def test_zero_error_is_ground_truth(self):
        import numpy as np
        annotator = Annotator("perfect", error_rate=0.0)
        rng = np.random.default_rng(0)
        for sequence in _sequences(300):
            assert annotator.label(sequence, rng) == sequence.label

    def test_error_rate_validated(self):
        with pytest.raises(ValueError):
            Annotator("bad", error_rate=0.6)
        with pytest.raises(ValueError):
            Annotator("bad", error_rate=-0.1)


class TestDualAnnotation:
    def test_perfect_annotators_agree(self):
        outcome = dual_annotation(
            _sequences(), Annotator("a", 0.0), Annotator("b", 0.0),
        )
        assert outcome.disagreements == 0
        assert outcome.residual_errors == 0
        assert outcome.agreement_rate == 1.0
        assert outcome.label_accuracy == 1.0

    def test_adjudication_improves_accuracy(self):
        """Dual annotation + adjudication must beat a single noisy
        annotator's expected error rate."""
        sequences = _sequences(8000, seed=1)
        outcome = dual_annotation(
            sequences,
            Annotator("a", 0.1), Annotator("b", 0.1),
            adjudicator=Annotator("senior", 0.02),
            seed=2,
        )
        # Single annotator at 10%: expected accuracy 0.90; the workflow
        # should be clearly better.
        assert outcome.label_accuracy > 0.95
        assert outcome.adjudicated == outcome.disagreements > 0

    def test_no_adjudicator_defaults_anomalous(self):
        sequences = _sequences(6000, seed=3)
        outcome = dual_annotation(
            sequences, Annotator("a", 0.3), Annotator("b", 0.3), seed=4,
        )
        # With heavy disagreement and anomalies rare, the anomalous default
        # creates false-positive labels: residual errors must reflect that.
        assert outcome.disagreements > 0
        assert outcome.residual_errors > 0

    def test_labels_length_matches(self):
        sequences = _sequences(500)
        outcome = dual_annotation(sequences, Annotator("a"), Annotator("b"))
        assert len(outcome.labels) == len(sequences)

    def test_empty_input(self):
        outcome = dual_annotation([], Annotator("a"), Annotator("b"))
        assert outcome.labels == []
        assert outcome.agreement_rate == 1.0
        assert outcome.label_accuracy == 1.0
