"""Property-based tests for the deployment data structures."""

from hypothesis import given, settings, strategies as st

from repro.deploy import BoundedBuffer, PatternLibrary


class TestBufferProperties:
    @given(st.lists(st.integers(), max_size=200), st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_preserved(self, items, capacity):
        buffer = BoundedBuffer(capacity=capacity)
        accepted = [item for item in items if buffer.offer(item)]
        drained = buffer.drain()
        assert drained == accepted[: capacity]

    @given(st.lists(st.integers(), max_size=100), st.integers(1, 20),
           st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_poll_conserves_items(self, items, capacity, poll_size):
        buffer = BoundedBuffer(capacity=capacity)
        accepted = sum(1 for item in items if buffer.offer(item))
        polled = []
        while len(buffer):
            polled.extend(buffer.poll(poll_size))
        assert len(polled) == accepted
        assert buffer.total_offered == len(items)
        assert buffer.total_rejected == len(items) - accepted

    @given(st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_capacity(self, capacity):
        buffer = BoundedBuffer(capacity=capacity)
        for item in range(capacity * 3):
            buffer.offer(item)
            assert len(buffer) <= capacity


class TestPatternLibraryProperties:
    @given(st.lists(st.tuples(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                              st.booleans()), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_lookup_returns_last_remembered(self, operations):
        library = PatternLibrary(max_patterns=1000)
        expected: dict = {}
        for pattern, verdict in operations:
            library.remember(pattern, verdict)
            expected[pattern] = verdict
        for pattern, verdict in expected.items():
            assert library.lookup(pattern) is verdict

    @given(st.lists(st.tuples(st.integers(0, 100), st.booleans()),
                    min_size=1, max_size=200), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, operations, max_patterns):
        library = PatternLibrary(max_patterns=max_patterns)
        for key, verdict in operations:
            library.remember((key,), verdict)
            assert len(library) <= max_patterns

    @given(st.lists(st.integers(0, 10), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_bounds(self, keys):
        library = PatternLibrary()
        for key in keys:
            if library.lookup((key,)) is None:
                library.remember((key,), False)
        assert 0.0 <= library.stats.hit_rate <= 1.0
        assert library.stats.total == len(keys)
