"""Online service tests: the full §VI-A pipeline around a fitted model."""

import pytest

from repro.config import LogSynergyConfig
from repro.core import LogSynergy
from repro.deploy import AlertRouter, OnlineService, SmsSink
from repro.deploy.efficiency import (
    LogSynergyTimeline, RuleBasedTimeline, deployment_speedup,
)
from repro.logs.generator import LogGenerator


@pytest.fixture(scope="module")
def service_factory(fitted_logsynergy):
    def make(**kwargs):
        return OnlineService(fitted_logsynergy, **kwargs)
    return make


class TestOnlineService:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            OnlineService(LogSynergy(LogSynergyConfig()))

    def test_processes_stream(self, service_factory):
        service = service_factory()
        stream = LogGenerator("thunderbird", seed=7, repeat_probability=0.85).generate(1500)
        service.process(stream)
        assert service.stats.windows_seen > 0
        assert service.stats.model_invocations <= service.stats.windows_seen

    def test_pattern_library_absorbs_redundancy(self, service_factory):
        """On a repetitive stream, a meaningful fraction of windows must be
        answered from the library instead of the model (§VI-A)."""
        service = service_factory()
        stream = LogGenerator("thunderbird", seed=8, repeat_probability=0.9).generate(4000)
        service.process(stream)
        assert service.stats.model_skip_rate > 0.2

    def test_alerts_routed(self, fitted_logsynergy):
        sms = SmsSink()
        service = OnlineService(fitted_logsynergy, router=AlertRouter([sms]))
        stream = LogGenerator("thunderbird", seed=9).generate(2500)
        reports = service.process(stream)
        assert len(sms.delivered) == len(reports) == service.stats.anomalies_raised
        for report in reports:
            assert report.is_anomalous

    def test_incremental_batches_equivalent_to_whole(self, service_factory):
        stream = LogGenerator("thunderbird", seed=10).generate(600)
        whole = service_factory()
        whole.process(stream)
        chunked = service_factory()
        for start in range(0, len(stream), 100):
            chunked.process(stream[start : start + 100])
        assert chunked.stats.windows_seen == whole.stats.windows_seen


class TestServiceObservability:
    def test_private_registry_when_obs_disabled(self, service_factory):
        from repro.obs import get_registry

        service = service_factory()
        assert service.registry is not get_registry()
        stream = LogGenerator("thunderbird", seed=11).generate(800)
        service.process(stream)
        # Stats stay live through the private registry.
        assert service.stats.windows_seen > 0
        assert service.registry.counter("service.windows_seen").value == \
            service.stats.windows_seen

    def test_joins_active_registry_and_records_latency(self, service_factory):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            service = service_factory()
        assert service.registry is registry
        stream = LogGenerator("thunderbird", seed=12).generate(800)
        service.process(stream)
        latency = registry.histogram("service.window_seconds")
        assert latency.count == service.stats.windows_seen
        assert latency.sum > 0.0
        assert registry.counter("service.library_hits").value >= 0.0


class TestDeploymentEfficiency:
    def test_paper_claim_over_90_percent(self):
        comparison = deployment_speedup()
        assert comparison["reduction"] > 0.9

    def test_custom_timelines(self):
        comparison = deployment_speedup(
            RuleBasedTimeline(rules_needed=1, days_per_rule=1),
            LogSynergyTimeline(collection_hours=24, labeling_hours=0,
                               interpretation_minutes=0, training_minutes=0),
        )
        assert comparison["reduction"] == pytest.approx(0.0)

    def test_hours_positive(self):
        comparison = deployment_speedup()
        assert comparison["rule_based_hours"] > comparison["logsynergy_hours"] > 0
