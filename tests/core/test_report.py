"""Anomaly report tests."""

from datetime import datetime

from repro.core.report import build_report


def _report(score=0.9, threshold=0.5):
    return build_report(
        system="system_a",
        score=score,
        threshold=threshold,
        messages=["raw log one", "raw log two"],
        interpretations=["Interpretation one.", "Interpretation two."],
        timestamps=[datetime(2023, 3, 1, 12, 0), datetime(2023, 3, 1, 12, 5)],
        trace_id="abc123",
    )


class TestAnomalyReport:
    def test_is_anomalous_threshold(self):
        assert _report(0.9).is_anomalous
        assert not _report(0.4).is_anomalous
        assert not _report(0.5).is_anomalous  # strictly greater, as in §III-E

    def test_summary_mentions_system_and_score(self):
        summary = _report().summary()
        assert "system_a" in summary
        assert "0.900" in summary
        assert "Interpretation one." in summary

    def test_render_pairs_raw_with_lei(self):
        rendered = _report().render()
        body = rendered[rendered.index("Log sequence"):]
        assert "raw log one" in body
        assert "Interpretation one." in body
        assert body.index("raw log one") < body.index("Interpretation one.")

    def test_render_includes_window_and_metadata(self):
        rendered = _report().render()
        assert "2023-03-01 12:00:00" in rendered
        assert "trace_id: abc123" in rendered

    def test_timestamps_ordered(self):
        report = build_report(
            system="x", score=1.0, threshold=0.5, messages=[], interpretations=[],
            timestamps=[datetime(2023, 1, 2), datetime(2023, 1, 1)],
        )
        assert report.first_timestamp == datetime(2023, 1, 1)
        assert report.last_timestamp == datetime(2023, 1, 2)

    def test_no_timestamps(self):
        report = build_report(
            system="x", score=1.0, threshold=0.5, messages=["m"], interpretations=["i"]
        )
        assert report.first_timestamp is None

    def test_empty_interpretations_summary(self):
        report = build_report(
            system="x", score=1.0, threshold=0.5, messages=[], interpretations=[]
        )
        assert "unknown event" in report.summary()
