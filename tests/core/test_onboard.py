"""Shadow-gated onboarding: below-gate candidates never reach the
serving path; promotions hot-swap every executor flavor."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core import (
    CheckpointStore, LogSynergyModel, OnboardingSession, StopAfter,
)
from repro.core.onboard import FINE_TUNING, PROMOTED, REJECTED
from repro.core.pipeline import LogSynergy
from repro.logs.sequences import sliding_windows
from repro.obs import MetricsRegistry, use_registry
from repro.runtime import InferenceRuntime
from repro.testing.fuzzer import LogStreamFuzzer

_CONFIG = LogSynergyConfig(
    d_model=16, num_heads=2, num_layers=1, d_ff=32, feature_dim=8,
    embedding_dim=16, epochs=2, batch_size=8, window=4, step=2,
    seed=0, use_lei=False,
)


def _day0_sequences(seed=0):
    fuzzer = LogStreamFuzzer(
        systems=("day0",), dialects={"day0": "bgl"},
        lines_per_system=160, anomaly_bursts=4, burst_length=(3, 6),
        parameter_noise=0.1,
    )
    stream = fuzzer.generate(seed)
    records = stream.by_system()["day0"]
    return records, sliding_windows(records, window=_CONFIG.window,
                                    step=_CONFIG.step)


def _warm_pipeline(seed=0):
    """A minimally fitted pipeline: model + target wiring, no training."""
    pipeline = LogSynergy(_CONFIG)
    pipeline.target_system = "day0"
    pipeline._system_index = {"source": 0, "day0": 1}
    pipeline.model = LogSynergyModel(
        _CONFIG, num_systems=2, rng=np.random.default_rng(seed))
    return pipeline


def _snapshot(model):
    return {key: value.copy() for key, value in model.state_dict().items()}


def _same_weights(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[key], b[key]) for key in a)


class TestValidation:
    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValueError, match="fitted"):
            OnboardingSession(LogSynergy(_CONFIG))

    def test_gate_and_holdout_bounds(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            with pytest.raises(ValueError, match="gate_f1"):
                OnboardingSession(pipeline, gate_f1=1.5)
            with pytest.raises(ValueError, match="holdout_fraction"):
                OnboardingSession(pipeline, holdout_fraction=1.0)

    def test_too_few_sequences(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            _, sequences = _day0_sequences()
            session = OnboardingSession(pipeline)
            with pytest.raises(ValueError, match="no training data"):
                session.run("day0", sequences[:1])


class TestShadowGate:
    def test_below_gate_never_touches_serving_weights(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            baseline = _snapshot(pipeline.model)
            _, sequences = _day0_sequences()
            runtime = InferenceRuntime.from_model(
                pipeline, window=_CONFIG.window, step=_CONFIG.step)
            session = OnboardingSession(pipeline, runtime=runtime,
                                        gate_f1=1.0)
            result = session.run("day0", sequences)

            assert result.state == REJECTED and not result.promoted
            assert result.shadow_f1 < 1.0
            assert _same_weights(baseline, pipeline.model.state_dict())
            assert registry.counter("runtime.weight_swaps").value == 0
            assert registry.counter("onboard.rejected").value == 1
            assert registry.counter("onboard.promoted").value == 0

    def test_promotion_swaps_sync_runtime(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            baseline = _snapshot(pipeline.model)
            _, sequences = _day0_sequences()
            runtime = InferenceRuntime.from_model(
                pipeline, window=_CONFIG.window, step=_CONFIG.step)
            session = OnboardingSession(pipeline, runtime=runtime,
                                        gate_f1=0.0)
            result = session.run("day0", sequences)

            assert result.state == PROMOTED and result.promoted
            assert not _same_weights(baseline, pipeline.model.state_dict())
            assert registry.counter("runtime.weight_swaps").value == 1
            assert registry.counter("onboard.promoted").value == 1
            assert registry.gauge("onboard.shadow_f1").value == \
                pytest.approx(result.shadow_f1)

    def test_shadow_split_is_the_tail(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            _, sequences = _day0_sequences()
            session = OnboardingSession(pipeline, gate_f1=0.0,
                                        holdout_fraction=0.25)
            result = session.run("day0", sequences, epochs=1)
            assert result.holdout_sequences == max(
                1, int(round(len(sequences) * 0.25)))
            assert result.train_sequences + result.holdout_sequences \
                == len(sequences)

    def test_swap_without_runtime_updates_pipeline_only(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            baseline = _snapshot(pipeline.model)
            _, sequences = _day0_sequences()
            session = OnboardingSession(pipeline, gate_f1=0.0)
            result = session.run("day0", sequences, epochs=1)
            assert result.promoted
            assert not _same_weights(baseline, pipeline.model.state_dict())


class TestExecutorVisibility:
    def test_promotion_reaches_thread_executor(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            records, sequences = _day0_sequences()
            runtime = InferenceRuntime.from_model(
                pipeline, executor="thread", shards=2,
                window=_CONFIG.window, step=_CONFIG.step)
            runtime.start()
            try:
                session = OnboardingSession(pipeline, runtime=runtime,
                                            gate_f1=0.0)
                result = session.run("day0", sequences, epochs=1)
                assert result.promoted
                assert registry.counter("runtime.weight_swaps").value == 1
                # The swapped runtime still serves.
                for record in records[:40]:
                    runtime.submit(record)
            finally:
                runtime.stop()

    def test_promotion_rebroadcasts_to_process_executor(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            records, sequences = _day0_sequences()
            runtime = InferenceRuntime.from_model(
                pipeline, executor="process", shards=2,
                window=_CONFIG.window, step=_CONFIG.step)
            runtime.start()
            try:
                session = OnboardingSession(pipeline, runtime=runtime,
                                            gate_f1=0.0)
                result = session.run("day0", sequences, epochs=1)
                assert result.promoted
                assert registry.counter(
                    "runtime.proc.rebroadcasts").value == 1
                # Children score against the re-broadcast weights.
                for record in records[:40]:
                    runtime.submit(record)
            finally:
                runtime.stop()
            assert registry.counter("onboard.promoted").value == 1


class TestResumableFineTune:
    def test_checkpointed_session_resumes(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            _, sequences = _day0_sequences()
            store = CheckpointStore(tmp_path / "ckpt", clock=lambda: 0.0)

            session = OnboardingSession(pipeline, gate_f1=0.0)
            first = session.run("day0", sequences, epochs=2, store=store,
                                controller=StopAfter(epochs=1))
            assert first.epochs == 1
            assert len(store.entries()) >= 1
            assert session.state in (PROMOTED, REJECTED, FINE_TUNING)

            resumed = session.run("day0", sequences, epochs=2, store=store,
                                  resume=True)
            assert resumed.epochs == 2

    def test_interrupted_session_never_promotes_serving(self, tmp_path):
        """StopAfter(STOP-free) pause mid-tune: the serving model still
        carries its original weights until a full run promotes."""
        registry = MetricsRegistry()
        with use_registry(registry):
            pipeline = _warm_pipeline()
            baseline = _snapshot(pipeline.model)
            _, sequences = _day0_sequences()
            store = CheckpointStore(tmp_path / "ckpt", clock=lambda: 0.0)
            session = OnboardingSession(pipeline, gate_f1=1.0)
            session.run("day0", sequences, epochs=2, store=store,
                        controller=StopAfter(epochs=1))
            assert _same_weights(baseline, pipeline.model.state_dict())
