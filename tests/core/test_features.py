"""SystemFeaturizer tests: parsing -> LEI -> embedding."""

import numpy as np

from repro.core.features import SystemFeaturizer
from repro.embedding.pretrained import load_pretrained_encoder
from repro.llm.simulated import SimulatedLLM
from repro.logs import build_dataset, generate_logs, sliding_windows


def _featurizer(system="bgl", use_lei=True):
    encoder = load_pretrained_encoder(64)
    llm = SimulatedLLM() if use_lei else None
    return SystemFeaturizer(system, encoder, llm=llm)


class TestMessageEmbedding:
    def test_same_event_same_embedding(self):
        featurizer = _featurizer()
        a = featurizer.embed_message("MMCS heartbeat from node 17 acknowledged")
        b = featurizer.embed_message("MMCS heartbeat from node 99 acknowledged")
        np.testing.assert_allclose(a, b)

    def test_embedding_dim(self):
        featurizer = _featurizer()
        assert featurizer.embed_message("test message body").shape == (64,)

    def test_interpretation_cached_per_event(self):
        llm = SimulatedLLM()
        featurizer = SystemFeaturizer("bgl", load_pretrained_encoder(64), llm=llm)
        for node in range(20):
            featurizer.embed_message(f"MMCS heartbeat from node {node} acknowledged")
        assert llm.call_count == 1
        assert featurizer.num_events == 1

    def test_without_lei_uses_template_text(self):
        featurizer = _featurizer(use_lei=False)
        featurizer.embed_message("MMCS heartbeat from node 17 acknowledged")
        event_id = featurizer.store.event_ids[0]
        assert "heartbeat" in featurizer.interpretation_of(event_id)
        assert "MMCS" in featurizer.interpretation_of(event_id)

    def test_lei_interpretation_is_canonical(self):
        featurizer = _featurizer(use_lei=True)
        event_id = featurizer.event_id_of("MMCS heartbeat from node 17 acknowledged")
        assert featurizer.interpretation_of(event_id) == (
            "A periodic heartbeat confirmed the component is alive."
        )


class TestSequenceEmbedding:
    def test_shapes(self):
        featurizer = _featurizer()
        sequences = sliding_windows(generate_logs("bgl", 60, seed=0))
        out = featurizer.embed_sequences(sequences)
        assert out.shape == (len(sequences), 10, 64)

    def test_empty(self):
        featurizer = _featurizer()
        assert featurizer.embed_sequences([]).shape[0] == 0

    def test_cross_system_lei_alignment(self):
        """The point of LEI: the same concept on two systems must embed to
        (nearly) the same vector; raw templates must not."""
        encoder = load_pretrained_encoder(64)
        spirit_msg = "Connection refused (111) in open_demux, open_demux: connect 10.1.1.1:33404"
        system_c_msg = "Port down reason Interface 7 is down, due to Los"

        with_lei_spirit = SystemFeaturizer("spirit", encoder, llm=SimulatedLLM())
        with_lei_c = SystemFeaturizer("system_c", encoder, llm=SimulatedLLM())
        sim_lei = float(
            with_lei_spirit.embed_message(spirit_msg) @ with_lei_c.embed_message(system_c_msg)
        )

        raw_spirit = SystemFeaturizer("spirit", encoder, llm=None)
        raw_c = SystemFeaturizer("system_c", encoder, llm=None)
        sim_raw = float(
            raw_spirit.embed_message(spirit_msg) @ raw_c.embed_message(system_c_msg)
        )
        assert sim_lei > 0.95  # identical canonical sentence
        assert sim_raw < sim_lei - 0.3

    def test_embed_messages_flat(self):
        featurizer = _featurizer()
        out = featurizer.embed_messages(["a b c", "d e f"])
        assert out.shape == (2, 64)
        assert featurizer.embed_messages([]).shape == (0, 64)
