"""Full-pipeline persistence tests (weights + parser trees + interpretations)."""

import numpy as np
import pytest

from repro.core import LogSynergy


class TestPipelinePersistence:
    def test_roundtrip_predictions_identical(self, fitted_logsynergy,
                                             tiny_experiment_data, tmp_path):
        test = tiny_experiment_data["target_test"][:80]
        expected = fitted_logsynergy.predict_proba(test)

        directory = str(tmp_path / "pipeline")
        fitted_logsynergy.save_pipeline(directory)
        restored = LogSynergy.load_pipeline(directory)

        np.testing.assert_allclose(restored.predict_proba(test), expected, atol=1e-5)

    def test_restored_event_ids_stable(self, fitted_logsynergy, tmp_path):
        directory = str(tmp_path / "pipeline")
        fitted_logsynergy.save_pipeline(directory)
        restored = LogSynergy.load_pipeline(directory)

        original = fitted_logsynergy._featurizer("thunderbird")
        clone = restored._featurizer("thunderbird")
        message = "heartbeat: tbird-042 alive, seq 99"
        assert clone.event_id_of(message) == original.event_id_of(message)

    def test_restored_interpretations_survive_without_llm_calls(
            self, fitted_logsynergy, tmp_path):
        directory = str(tmp_path / "pipeline")
        fitted_logsynergy.save_pipeline(directory)

        class ExplodingLLM:
            def complete(self, prompt):
                raise AssertionError("known events must not hit the LLM")

        restored = LogSynergy.load_pipeline(directory, llm=ExplodingLLM())
        featurizer = restored._featurizer("thunderbird")
        known = featurizer.store.event_ids[0]
        representative = featurizer.store.representative(known)
        # Re-embedding a known message must come from the cache.
        featurizer.embed_message(representative)

    def test_online_detection_after_restore(self, fitted_logsynergy, tmp_path):
        directory = str(tmp_path / "pipeline")
        fitted_logsynergy.save_pipeline(directory)
        restored = LogSynergy.load_pipeline(directory)
        report = restored.detect_stream(["heartbeat: tbird-7 alive, seq 1"] * 10)
        assert report.system == "thunderbird"
        assert 0.0 <= report.score <= 1.0

    def test_save_requires_fitted(self, tmp_path):
        from repro.config import LogSynergyConfig
        with pytest.raises(RuntimeError):
            LogSynergy(LogSynergyConfig()).save_pipeline(str(tmp_path / "nope"))
