"""CLUB mutual-information estimator tests."""

import numpy as np

from repro import nn
from repro.core.club import CLUBEstimator
from repro.nn.tensor import Tensor


def _train_estimator(club, u, s, steps=200, lr=1e-2):
    optimizer = nn.Adam(club.parameters(), lr=lr)
    for _ in range(steps):
        loss = club.learning_loss(Tensor(u), Tensor(s))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


class TestCLUB:
    def test_learning_loss_decreases(self):
        rng = np.random.default_rng(0)
        club = CLUBEstimator(4, 4, rng=rng)
        u = rng.standard_normal((128, 4)).astype(np.float32)
        s = (u * 0.8 + 0.2 * rng.standard_normal((128, 4))).astype(np.float32)
        initial = float(club.learning_loss(Tensor(u), Tensor(s)).data)
        _train_estimator(club, u, s)
        final = float(club.learning_loss(Tensor(u), Tensor(s)).data)
        assert final < initial

    def test_bound_higher_for_dependent_features(self):
        """After estimator training, the CLUB bound must rank dependent
        (u, s) pairs above independent ones."""
        rng = np.random.default_rng(1)
        u = rng.standard_normal((256, 4)).astype(np.float32)
        dependent = (u + 0.1 * rng.standard_normal((256, 4))).astype(np.float32)
        independent = rng.standard_normal((256, 4)).astype(np.float32)

        club_dep = CLUBEstimator(4, 4, rng=np.random.default_rng(2))
        _train_estimator(club_dep, u, dependent)
        club_ind = CLUBEstimator(4, 4, rng=np.random.default_rng(2))
        _train_estimator(club_ind, u, independent)

        mi_dep = float(club_dep.mi_upper_bound(Tensor(u), Tensor(dependent),
                                               rng=np.random.default_rng(3)).data)
        mi_ind = float(club_ind.mi_upper_bound(Tensor(u), Tensor(independent),
                                               rng=np.random.default_rng(3)).data)
        assert mi_dep > mi_ind

    def test_bound_near_zero_for_independent_on_held_out(self):
        """On *fresh* independent samples, the trained estimator cannot
        predict s from u, so the bound should be near zero.  (On the
        training pairs themselves the MLP overfits spurious dependence —
        evaluating held-out is the honest check.)"""
        rng = np.random.default_rng(4)
        u = rng.standard_normal((256, 4)).astype(np.float32)
        s = rng.standard_normal((256, 4)).astype(np.float32)
        club = CLUBEstimator(4, 4, rng=np.random.default_rng(5))
        _train_estimator(club, u, s)
        u_fresh = rng.standard_normal((256, 4)).astype(np.float32)
        s_fresh = rng.standard_normal((256, 4)).astype(np.float32)
        mi = float(club.mi_upper_bound(Tensor(u_fresh), Tensor(s_fresh),
                                       rng=np.random.default_rng(6)).data)
        assert abs(mi) < 1.0

    def test_gradients_reach_features(self):
        """Minimizing the bound must produce gradients on the features —
        that is how SUFE pushes the extractor toward disentanglement."""
        rng = np.random.default_rng(7)
        club = CLUBEstimator(4, 4, rng=rng)
        u = Tensor(rng.standard_normal((32, 4)).astype(np.float32), requires_grad=True)
        s = Tensor(rng.standard_normal((32, 4)).astype(np.float32), requires_grad=True)
        club.mi_upper_bound(u, s, rng=rng).backward()
        assert u.grad is not None and np.abs(u.grad).sum() > 0
        assert s.grad is not None and np.abs(s.grad).sum() > 0

    def test_deterministic_with_fixed_rng(self):
        rng = np.random.default_rng(8)
        club = CLUBEstimator(4, 4, rng=rng)
        u = rng.standard_normal((16, 4)).astype(np.float32)
        s = rng.standard_normal((16, 4)).astype(np.float32)
        a = float(club.mi_upper_bound(Tensor(u), Tensor(s), rng=np.random.default_rng(1)).data)
        b = float(club.mi_upper_bound(Tensor(u), Tensor(s), rng=np.random.default_rng(1)).data)
        assert a == b
