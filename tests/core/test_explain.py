"""Explanation tooling tests (§VI-D case-study workflow)."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core.explain import (
    explain_window, nearest_training_sequences, occlusion_attribution,
)
from repro.core.model import LogSynergyModel
from repro.core.trainer import LogSynergyTrainer, TrainingBatch

_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=16, epochs=6, batch_size=32, learning_rate=1e-3,
)


@pytest.fixture(scope="module")
def trained():
    """A model trained so that events with a shifted first block are anomalous."""
    rng = np.random.default_rng(0)
    n = 160
    x = rng.standard_normal((n, 6, 16)).astype(np.float32)
    y = rng.integers(0, 2, size=n).astype(np.int64)
    x[y == 1, 2, :6] += 3.0  # anomaly signal lives at position 2
    systems = rng.integers(0, 2, size=n).astype(np.int64)
    data = TrainingBatch(x, y, systems, (systems == 1).astype(np.int64))
    model = LogSynergyModel(_CONFIG, num_systems=2, rng=np.random.default_rng(1))
    LogSynergyTrainer(model, _CONFIG).fit(data, epochs=8)
    return model, x, y


class TestOcclusion:
    def test_shape(self, trained):
        model, x, _ = trained
        drops = occlusion_attribution(model, x[0])
        assert drops.shape == (6,)

    def test_anomalous_position_attributed(self, trained):
        """For anomalous windows, the planted position (2) must carry the
        largest average attribution."""
        model, x, y = trained
        anomalous = x[y == 1][:20]
        mean_drops = np.mean([occlusion_attribution(model, w) for w in anomalous], axis=0)
        assert int(np.argmax(mean_drops)) == 2

    def test_rejects_batched_input(self, trained):
        model, x, _ = trained
        with pytest.raises(ValueError):
            occlusion_attribution(model, x[:2])


class TestNeighbours:
    def test_self_is_nearest(self, trained):
        model, x, _ = trained
        neighbours = nearest_training_sequences(model, x[5], x[:50], k=1)
        assert neighbours[0][0] == 5
        assert neighbours[0][1] == pytest.approx(1.0, abs=1e-4)

    def test_k_respected(self, trained):
        model, x, _ = trained
        assert len(nearest_training_sequences(model, x[0], x[:30], k=4)) == 4

    def test_invalid_k(self, trained):
        model, x, _ = trained
        with pytest.raises(ValueError):
            nearest_training_sequences(model, x[0], x[:10], k=0)


class TestExplainWindow:
    def test_full_explanation(self, trained):
        model, x, y = trained
        window = x[y == 1][0]
        messages = [f"msg {i}" for i in range(6)]
        interpretations = [f"interp {i}" for i in range(6)]
        explanation = explain_window(model, window, messages, interpretations,
                                     training_windows=x[:40], k_neighbours=2)
        assert len(explanation.attributions) == 6
        assert len(explanation.neighbours) == 2
        assert 0.0 <= explanation.score <= 1.0
        rendered = explanation.render()
        assert "anomaly score" in rendered
        assert "nearest training windows" in rendered

    def test_top_events_sorted(self, trained):
        model, x, _ = trained
        explanation = explain_window(model, x[0], ["m"] * 6, ["i"] * 6)
        top = explanation.top_events(k=6)
        drops = [a.score_drop for a in top]
        assert drops == sorted(drops, reverse=True)

    def test_alignment_validated(self, trained):
        model, x, _ = trained
        with pytest.raises(ValueError):
            explain_window(model, x[0], ["only one"], ["i"] * 6)
