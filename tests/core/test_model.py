"""LogSynergyModel tests."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core.model import LogSynergyModel

_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16, embedding_dim=24,
)


def _model(num_systems=3, seed=0):
    return LogSynergyModel(_CONFIG, num_systems=num_systems,
                           rng=np.random.default_rng(seed))


def _batch(n=4, window=10, dim=24, seed=0):
    return np.random.default_rng(seed).standard_normal((n, window, dim)).astype(np.float32)


class TestArchitecture:
    def test_feature_split_dimensions(self):
        model = _model()
        unified, specific = model.extract_features(_batch())
        assert unified.shape == (4, 16)
        assert specific.shape == (4, 16)

    def test_classifier_heads(self):
        model = _model(num_systems=5)
        unified, specific = model.extract_features(_batch())
        assert model.anomaly_logits(unified).shape == (4,)
        assert model.system_logits(specific).shape == (4, 5)

    def test_needs_two_systems(self):
        with pytest.raises(ValueError):
            LogSynergyModel(_CONFIG, num_systems=1)

    def test_forward_probabilities_in_unit_interval(self):
        probs = _model()(_batch()).data
        assert np.all((probs >= 0) & (probs <= 1))


class TestPrediction:
    def test_predict_binary(self):
        preds = _model().predict(_batch(n=8))
        assert set(np.unique(preds)) <= {0, 1}

    def test_predict_proba_batched_matches_single(self):
        model = _model()
        model.eval()
        x = _batch(n=10)
        full = model.predict_proba(x, batch_size=3)
        single = model.predict_proba(x, batch_size=100)
        np.testing.assert_allclose(full, single, atol=1e-6)

    def test_predict_restores_training_mode(self):
        model = _model()
        model.train()
        model.predict(_batch())
        assert model.training

    def test_predict_empty(self):
        assert _model().predict_proba(np.zeros((0, 10, 24), dtype=np.float32)).shape == (0,)

    def test_custom_threshold(self):
        model = _model()
        probs = model.predict_proba(_batch(n=16))
        strict = model.predict(_batch(n=16), threshold=probs.max() + 0.1)
        assert strict.sum() == 0


class TestSerialization:
    def test_state_roundtrip_preserves_predictions(self, tmp_path):
        a = _model(seed=1)
        b = _model(seed=2)
        x = _batch(n=6, seed=3)
        path = str(tmp_path / "logsynergy.npz")
        a.save(path)
        b.load(path)
        np.testing.assert_allclose(a.predict_proba(x), b.predict_proba(x), atol=1e-6)
