"""DAAN domain-adaptation module tests."""

import numpy as np
import pytest

from repro import nn
from repro.core.daan import DAANModule
from repro.nn.tensor import Tensor


def _batch(rng, n=32, dim=8, shift=0.0):
    features = rng.standard_normal((n, dim)).astype(np.float32)
    features[n // 2:] += shift
    domains = np.array([0] * (n // 2) + [1] * (n // 2))
    probs = Tensor(np.full((n, 2), 0.5, dtype=np.float32))
    return Tensor(features, requires_grad=True), domains, probs


class TestSchedule:
    def test_alpha_schedule_monotonic(self):
        values = [DAANModule.schedule_alpha(p) for p in np.linspace(0, 1, 11)]
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(1.0, abs=1e-3)
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_alpha_clamped(self):
        assert DAANModule.schedule_alpha(-1.0) == pytest.approx(0.0)
        assert DAANModule.schedule_alpha(2.0) == pytest.approx(1.0, abs=1e-3)


class TestDAANLoss:
    def test_loss_finite_and_positive(self):
        rng = np.random.default_rng(0)
        daan = DAANModule(8, rng=rng)
        features, domains, probs = _batch(rng)
        loss = daan(features, domains, probs)
        assert np.isfinite(loss.data) and float(loss.data) > 0

    def test_gradient_reversed_into_features(self):
        """Features must receive a gradient that *confuses* the domain
        classifier: for separable domains, stepping along -grad must not
        decrease the discriminator loss."""
        rng = np.random.default_rng(1)
        daan = DAANModule(4, rng=rng)
        features, domains, probs = _batch(rng, dim=4, shift=3.0)
        loss = daan(features, domains, probs)
        loss.backward()
        assert features.grad is not None
        assert np.abs(features.grad).sum() > 0

    def test_omega_updates(self):
        rng = np.random.default_rng(2)
        daan = DAANModule(8, rng=rng)
        initial = daan.omega
        features, domains, probs = _batch(rng, shift=2.0)
        for _ in range(5):
            daan(features, domains, probs)
        assert daan.omega != initial
        assert 0.0 <= daan.omega <= 1.0

    def test_set_alpha_changes_gradient_scale(self):
        rng = np.random.default_rng(3)
        daan = DAANModule(4, rng=rng)
        features, domains, probs = _batch(rng, dim=4)

        daan.set_alpha(1.0)
        loss = daan(Tensor(features.data, requires_grad=True), domains, probs)
        f1 = loss._parents  # ensure graph exists

        x1 = Tensor(features.data, requires_grad=True)
        daan.set_alpha(1.0)
        daan(x1, domains, probs).backward()
        g1 = np.abs(x1.grad).sum()

        x2 = Tensor(features.data, requires_grad=True)
        daan.set_alpha(0.1)
        daan(x2, domains, probs).backward()
        g2 = np.abs(x2.grad).sum()
        assert g2 < g1

    def test_adversarial_training_reduces_domain_separability(self):
        """Training features through DAAN must shrink the gap between the
        domain means (the marginal alignment DAAN promises)."""
        rng = np.random.default_rng(4)
        daan = DAANModule(4, rng=rng)
        extractor = nn.Linear(4, 4, rng=rng)
        raw = rng.standard_normal((64, 4)).astype(np.float32)
        raw[32:] += 2.5  # separable domains
        domains = np.array([0] * 32 + [1] * 32)
        probs = Tensor(np.full((64, 2), 0.5, dtype=np.float32))
        params = extractor.parameters() + daan.parameters()
        optimizer = nn.Adam(params, lr=1e-2)

        def gap():
            """Domain-mean distance normalized by feature spread, so scale
            drift under training cannot mask (or fake) alignment."""
            with nn.no_grad():
                out = extractor(Tensor(raw)).data
            spread = float(out.std()) + 1e-9
            return float(np.linalg.norm(out[:32].mean(0) - out[32:].mean(0))) / spread

        before = gap()
        daan.set_alpha(1.0)
        for _ in range(60):
            loss = daan(extractor(Tensor(raw)), domains, probs)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert gap() < before
