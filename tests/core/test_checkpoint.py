"""Crash-equivalence suite for the durable checkpoint store.

The headline property: ``fit(N)`` and ``fit(k) → crash → restore →
fit(N−k)`` produce byte-identical weights, RNG state and loss history
for *every* interruption point k — epoch boundaries and mid-epoch steps
alike.  The fault-injection half proves the durability discipline: a
crash mid-write leaves nothing behind, a torn write is caught by the
digest and quarantined, and the previous manifest entry always remains
a valid restart point.
"""

import json

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core.checkpoint import CheckpointStore
from repro.core.controller import StopAfter
from repro.core.model import LogSynergyModel
from repro.core.trainer import LogSynergyTrainer, TrainingBatch
from repro.obs import MetricsRegistry, use_registry
from repro.testing import FaultInjector, FaultPlan, FaultSpec, InjectedFault

_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=16, epochs=3, batch_size=32, learning_rate=1e-3,
)

# 96 samples / batch 32 = 3 optimizer steps per epoch.
_N = 96
_STEPS_PER_EPOCH = _N // _CONFIG.batch_size
_N_EPOCHS = 4
_TOTAL_STEPS = _N_EPOCHS * _STEPS_PER_EPOCH


def _toy_data(n=_N, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6, 16)).astype(np.float32)
    y = rng.integers(0, 2, size=n).astype(np.int64)
    x[y == 1, :, :4] += 2.0
    systems = rng.integers(0, 2, size=n).astype(np.int64)
    domains = (systems == 1).astype(np.int64)
    return TrainingBatch(
        sequences=x, anomaly_labels=y, system_labels=systems,
        domain_labels=domains,
    )


def _make(seed=0):
    model = LogSynergyModel(_CONFIG, num_systems=2,
                            rng=np.random.default_rng(seed))
    return model, LogSynergyTrainer(model, _CONFIG)


def _weights(model):
    return {key: value.copy() for key, value in model.state_dict().items()}


def _assert_identical(model_a, trainer_a, model_b, trainer_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert set(state_a) == set(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key
        assert state_a[key].tobytes() == state_b[key].tobytes(), key
    assert json.dumps(trainer_a._rng.bit_generator.state, sort_keys=True) \
        == json.dumps(trainer_b._rng.bit_generator.state, sort_keys=True)
    assert trainer_a.history.total == trainer_b.history.total


class TestResumeEquivalence:
    """fit(N) == fit(k) → checkpoint → restore → fit(N−k), for every k."""

    @pytest.fixture(scope="class")
    def reference(self):
        model, trainer = _make(seed=0)
        trainer.fit(_toy_data(), epochs=_N_EPOCHS)
        return model, trainer

    @pytest.mark.parametrize("k", range(1, _TOTAL_STEPS))
    def test_interrupt_at_every_step(self, k, reference):
        data = _toy_data()
        model, trainer = _make(seed=0)
        # PAUSE inside the full N-epoch plan: the alpha schedule spans
        # the same total, exactly as a real crash-and-resume would.
        trainer.fit(data, epochs=_N_EPOCHS,
                    controller=StopAfter(steps=k))
        assert trainer.global_step == k
        arrays, meta = trainer.checkpoint_state()

        # Restore into a *differently seeded* trainer: equivalence can
        # only hold if the checkpoint carries complete state.
        model_b, trainer_b = _make(seed=99)
        trainer_b.restore_checkpoint(arrays, meta)
        remaining = _N_EPOCHS - trainer_b.completed_epochs
        trainer_b.fit(data, epochs=remaining)

        ref_model, ref_trainer = reference
        assert trainer_b.global_step == ref_trainer.global_step
        _assert_identical(ref_model, ref_trainer, model_b, trainer_b)

    def test_epoch_boundary_roundtrip_through_store(self, tmp_path,
                                                    reference):
        data = _toy_data()
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, clock=lambda: 0.0)
            model, trainer = _make(seed=0)
            trainer.fit(data, epochs=_N_EPOCHS,
                        controller=StopAfter(epochs=2))
            store.save(*trainer.checkpoint_state())

            model_b, trainer_b = _make(seed=99)
            assert trainer_b.resume_from(store)
            assert trainer_b.completed_epochs == 2
            trainer_b.fit(data, epochs=_N_EPOCHS - 2)
        ref_model, ref_trainer = reference
        _assert_identical(ref_model, ref_trainer, model_b, trainer_b)

    def test_resume_from_empty_store_is_false(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, clock=lambda: 0.0)
            _, trainer = _make()
            assert not trainer.resume_from(store)

    def test_restore_rejects_topology_mismatch(self):
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=1)
        arrays, meta = trainer.checkpoint_state()
        meta = dict(meta, module_rngs=meta["module_rngs"][:-1])
        _, fresh = _make(seed=1)
        with pytest.raises(ValueError, match="topology mismatch"):
            fresh.restore_checkpoint(arrays, meta)


class TestStoreDurability:
    def _store(self, tmp_path, **kwargs):
        return CheckpointStore(tmp_path, clock=lambda: 0.0, **kwargs)

    def test_save_load_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            arrays = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
            meta = {"epoch": 2, "step": 7, "note": "x"}
            path = store.save(arrays, meta)
            assert path.exists()
            loaded_arrays, loaded_meta, entry = store.load_latest()
            assert np.array_equal(loaded_arrays["w"], arrays["w"])
            assert loaded_meta == meta
            assert entry.epoch == 2 and entry.step == 7
            assert registry.counter("trainer.checkpoint.saved").value == 1
            assert registry.counter("trainer.checkpoint.restored").value == 1

    def test_keep_prunes_old_files_but_manifest_first(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path, keep=2)
            for step in range(4):
                store.save({"w": np.array([step])}, {"epoch": 0, "step": step})
            entries = store.entries()
            assert [entry.step for entry in entries] == [2, 3]
            npz_files = sorted(p.name for p in tmp_path.glob("*.npz"))
            assert npz_files == ["checkpoint-000002.npz",
                                 "checkpoint-000003.npz"]

    def test_crash_mid_write_leaves_nothing_durable(self, tmp_path):
        """A `raise` fault before the write: no file, no manifest entry,
        and the previous checkpoint still restores."""
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            store.save({"w": np.array([1.0])}, {"epoch": 1, "step": 3})
            plan = FaultPlan(
                (FaultSpec("trainer.checkpoint.write", "raise"),), seed=0)
            with FaultInjector(plan, registry=registry) as injector:
                with pytest.raises(InjectedFault):
                    store.save({"w": np.array([2.0])}, {"epoch": 2, "step": 6})
            assert injector.total_fired == 1
            assert len(store.entries()) == 1
            arrays, meta, entry = store.load_latest()
            assert entry.step == 3
            assert np.array_equal(arrays["w"], np.array([1.0]))
            assert not list(tmp_path.glob("*.tmp"))

    def test_torn_write_quarantined_with_fallback(self, tmp_path):
        """A `corrupt` fault tears the bytes on disk; load detects the
        digest mismatch, quarantines the file and falls back."""
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            store.save({"w": np.array([1.0])}, {"epoch": 1, "step": 3})
            plan = FaultPlan((FaultSpec(
                "trainer.checkpoint.write", "corrupt",
                mutate=lambda payload: payload[:len(payload) // 2],
            ),), seed=0)
            with FaultInjector(plan, registry=registry):
                store.save({"w": np.array([2.0])}, {"epoch": 2, "step": 6})
            assert len(store.entries()) == 2

            arrays, meta, entry = store.load_latest()
            assert entry.step == 3
            assert np.array_equal(arrays["w"], np.array([1.0]))
            quarantined = list(tmp_path.glob("*.corrupt-*"))
            assert len(quarantined) == 1
            assert quarantined[0].name.startswith("checkpoint-000001.npz")
            assert registry.counter("trainer.checkpoint.quarantined").value == 1
            assert registry.counter("trainer.checkpoint.fallbacks").value == 1

    def test_truncated_file_on_disk_quarantined(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            path = store.save({"w": np.array([1.0])}, {"epoch": 0, "step": 1})
            path.write_bytes(path.read_bytes()[:10])
            assert store.load_latest() is None
            assert list(tmp_path.glob("*.corrupt-*"))

    def test_missing_file_skipped_without_quarantine(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            store.save({"w": np.array([1.0])}, {"epoch": 0, "step": 1})
            newer = store.save({"w": np.array([2.0])}, {"epoch": 0, "step": 2})
            newer.unlink()
            arrays, meta, entry = store.load_latest()
            assert entry.step == 1
            assert registry.counter("trainer.checkpoint.fallbacks").value == 1
            assert registry.counter("trainer.checkpoint.quarantined").value == 0

    def test_torn_manifest_starts_fresh(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            store.save({"w": np.array([1.0])}, {"epoch": 0, "step": 1})
            store.manifest_path.write_text("{not json", encoding="utf-8")
            assert store.entries() == []
            assert store.load_latest() is None
            # The orphan npz is never loaded (no digest to trust), but a
            # fresh save sequence works normally.
            store.save({"w": np.array([3.0])}, {"epoch": 1, "step": 9})
            arrays, _meta, entry = store.load_latest()
            assert entry.step == 9

    def test_quarantine_names_collide_safely(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = self._store(tmp_path)
            for _ in range(2):
                path = store.save({"w": np.array([1.0])},
                                  {"epoch": 0, "step": 1})
                path.write_bytes(b"garbage")
                store.load_latest()
            names = sorted(p.name for p in tmp_path.glob("*.corrupt-*"))
            assert len(names) == len(set(names)) == 2

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0, clock=lambda: 0.0)
