"""Training-controller contract: hook ordering, pause/stop semantics,
composition, and the failure path that must never clobber the last good
checkpoint."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core.checkpoint import CheckpointStore
from repro.core.controller import (
    CONTINUE, PAUSE, STOP,
    CheckpointEvery, ComposedController, ControllerError,
    LearningRateController, StopAfter, TrainingController, compose,
)
from repro.core.model import LogSynergyModel
from repro.core.trainer import LogSynergyTrainer, TrainingBatch
from repro.obs import MetricsRegistry, use_registry

_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=16, epochs=3, batch_size=32, learning_rate=1e-3,
)
_STEPS_PER_EPOCH = 3  # 96 samples / batch 32


def _toy_data(n=96, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6, 16)).astype(np.float32)
    y = rng.integers(0, 2, size=n).astype(np.int64)
    x[y == 1, :, :4] += 2.0
    systems = rng.integers(0, 2, size=n).astype(np.int64)
    domains = (systems == 1).astype(np.int64)
    return TrainingBatch(
        sequences=x, anomaly_labels=y, system_labels=systems,
        domain_labels=domains,
    )


def _make(seed=0):
    model = LogSynergyModel(_CONFIG, num_systems=2,
                            rng=np.random.default_rng(seed))
    return model, LogSynergyTrainer(model, _CONFIG)


class _Recorder(TrainingController):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_fit_start(self, trainer):
        self.events.append(("fit_start",))

    def on_epoch_start(self, trainer, epoch):
        self.events.append(("epoch_start", epoch))

    def on_step(self, trainer, step):
        self.events.append(("step", step))

    def on_epoch_end(self, trainer, epoch, metrics):
        self.events.append(("epoch_end", epoch, sorted(metrics)))

    def on_fit_end(self, trainer, history):
        self.events.append(("fit_end",))


class _RaiseAt(TrainingController):
    def __init__(self, step):
        self.step = step

    def on_step(self, trainer, step):
        if step >= self.step:
            raise RuntimeError("hook exploded")
        return None


class TestHookOrdering:
    def test_full_run_event_sequence(self):
        recorder = _Recorder()
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=2, controller=recorder)
        expected = [("fit_start",)]
        step = 0
        for epoch in range(2):
            expected.append(("epoch_start", epoch))
            for _ in range(_STEPS_PER_EPOCH):
                step += 1
                expected.append(("step", step))
            expected.append(
                ("epoch_end", epoch,
                 sorted(["total", "anomaly", "system", "mi", "da"])))
        expected.append(("fit_end",))
        assert recorder.events == expected

    def test_none_controller_is_a_noop(self):
        _, trainer = _make()
        history = trainer.fit(_toy_data(), epochs=1, controller=None)
        assert len(history.total) == 1


class TestPauseAndStop:
    def test_pause_keeps_midepoch_state(self):
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=2, controller=StopAfter(steps=2))
        assert trainer.global_step == 2
        assert trainer.completed_epochs == 0
        assert trainer._epoch_state is not None
        assert trainer._epoch_state["position"] == 2 * _CONFIG.batch_size

    def test_stop_discards_midepoch_state(self):
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=2,
                    controller=StopAfter(steps=2, action=STOP))
        assert trainer.global_step == 2
        assert trainer._epoch_state is None

    def test_pause_then_resume_continues_exactly(self):
        data = _toy_data()
        _, reference = _make()
        reference.fit(data, epochs=2)

        _, trainer = _make()
        trainer.fit(data, epochs=2, controller=StopAfter(steps=2))
        trainer.fit(data, epochs=2 - trainer.completed_epochs)
        assert trainer.global_step == reference.global_step
        assert trainer.history.total == reference.history.total

    def test_stop_at_epoch_boundary(self):
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=3,
                    controller=StopAfter(epochs=1, action=STOP))
        assert trainer.completed_epochs == 1
        assert len(trainer.history.total) == 1

    def test_stop_after_validates_action(self):
        with pytest.raises(ValueError, match="pause|stop"):
            StopAfter(steps=1, action=CONTINUE)


class TestComposition:
    def test_strongest_action_wins(self):
        class _Fixed(TrainingController):
            def __init__(self, action):
                self.action = action

            def on_step(self, trainer, step):
                return self.action

        composed = ComposedController(
            [_Fixed(None), _Fixed(PAUSE), _Fixed(CONTINUE)])
        assert composed.on_step(None, 1) == PAUSE
        composed = ComposedController([_Fixed(STOP), _Fixed(PAUSE)])
        assert composed.on_step(None, 1) == STOP
        composed = ComposedController([_Fixed(None), _Fixed(None)])
        assert composed.on_step(None, 1) is None

    def test_every_child_runs_even_after_a_halt_vote(self):
        recorder = _Recorder()
        composed = ComposedController(
            [StopAfter(steps=1), recorder])
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=1, controller=composed)
        # The recorder (listed after the halting child) still saw the step.
        assert ("step", 1) in recorder.events

    def test_compose_collapses(self):
        assert compose([]) is None
        assert compose([None, None]) is None
        sole = _Recorder()
        assert compose([None, sole]) is sole
        assert isinstance(compose([_Recorder(), _Recorder()]),
                          ComposedController)


class TestCheckpointEvery:
    def test_epoch_cadence(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, keep=10, clock=lambda: 0.0)
            _, trainer = _make()
            trainer.fit(_toy_data(), epochs=3,
                        controller=CheckpointEvery(store, epochs=1))
            entries = store.entries()
            assert [entry.epoch for entry in entries] == [1, 2, 3]

    def test_step_cadence_captures_midepoch(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, keep=20, clock=lambda: 0.0)
            _, trainer = _make()
            trainer.fit(_toy_data(), epochs=1,
                        controller=CheckpointEvery(store, epochs=None,
                                                   steps=2))
            entries = store.entries()
            assert [entry.step for entry in entries] == [2]
            arrays, meta, _entry = store.load_latest()
            assert meta["epoch_state"] is not None
            assert "order" in arrays

    def test_cadence_validation(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, clock=lambda: 0.0)
            with pytest.raises(ValueError):
                CheckpointEvery(store, epochs=0)
            with pytest.raises(ValueError):
                CheckpointEvery(store, steps=0)


class TestFailurePath:
    def test_exception_marks_run_failed(self):
        _, trainer = _make()
        with pytest.raises(ControllerError, match="on_step raised"):
            trainer.fit(_toy_data(), epochs=1, controller=_RaiseAt(2))
        assert trainer.run_failed

    def test_failure_leaves_last_checkpoint_intact(self, tmp_path):
        """The crash happens *after* the cadence checkpoint was written;
        the store still restores that checkpoint, bit-exact."""
        data = _toy_data()
        registry = MetricsRegistry()
        with use_registry(registry):
            store = CheckpointStore(tmp_path, keep=10, clock=lambda: 0.0)
            _, trainer = _make()
            # The raiser is listed first: at step 2 it fires before the
            # checkpointer runs, so the step-2 save never happens and
            # the step-1 checkpoint is the last durable state.
            controller = ComposedController(
                [_RaiseAt(2), CheckpointEvery(store, epochs=None, steps=1)])
            with pytest.raises(ControllerError):
                trainer.fit(data, epochs=2, controller=controller)
            assert trainer.run_failed

            arrays, meta, entry = store.load_latest()
            assert entry.step == 1

            # The checkpoint restores into a fresh trainer and training
            # continues — the failed run never touched the store.
            _, resumed = _make(seed=7)
            resumed.restore_checkpoint(arrays, meta)
            assert resumed.global_step == 1
            resumed.fit(data, epochs=2 - resumed.completed_epochs)
            assert resumed.completed_epochs == 2

    def test_controller_error_passes_through_unwrapped(self):
        class _Direct(TrainingController):
            def on_step(self, trainer, step):
                raise ControllerError("already typed")

        _, trainer = _make()
        with pytest.raises(ControllerError, match="already typed"):
            trainer.fit(_toy_data(), epochs=1, controller=_Direct())
        assert trainer.run_failed


class TestLearningRateController:
    def test_schedule_applied_each_epoch(self):
        seen = []

        class _Spy(TrainingController):
            def on_epoch_start(self, trainer, epoch):
                seen.append((epoch, trainer.optimizer.lr))
                return None

        schedule = lambda epoch: 1e-3 * (0.5 ** epoch)
        composed = ComposedController(
            [LearningRateController(schedule), _Spy()])
        _, trainer = _make()
        trainer.fit(_toy_data(), epochs=3, controller=composed)
        assert [lr for _, lr in seen] == [1e-3, 5e-4, 2.5e-4]

    def test_lr_travels_in_checkpoint(self):
        _, trainer = _make()
        trainer.set_learning_rate(3e-4)
        trainer.fit(_toy_data(), epochs=1)
        arrays, meta = trainer.checkpoint_state()
        assert meta["optimizers"]["opt"]["lr"] == pytest.approx(3e-4)
        _, fresh = _make(seed=5)
        fresh.restore_checkpoint(arrays, meta)
        assert fresh.optimizer.lr == pytest.approx(3e-4)

    def test_set_learning_rate_validates(self):
        _, trainer = _make()
        with pytest.raises(ValueError, match="positive"):
            trainer.set_learning_rate(0.0)
