"""End-to-end LogSynergy facade tests (uses the session-scoped fitted model)."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core import LogSynergy
from repro.evaluation.metrics import binary_metrics


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogSynergy(LogSynergyConfig()).predict([])

    def test_target_in_sources_rejected(self, tiny_experiment_data):
        model = LogSynergy(LogSynergyConfig())
        with pytest.raises(ValueError):
            model.fit(
                tiny_experiment_data["sources"],
                next(iter(tiny_experiment_data["sources"])),
                tiny_experiment_data["target_train"],
            )

    def test_empty_target_rejected(self, tiny_experiment_data):
        model = LogSynergy(LogSynergyConfig())
        with pytest.raises(ValueError):
            model.fit(tiny_experiment_data["sources"], "thunderbird", [])

    def test_encoder_dim_mismatch_rejected(self):
        from repro.embedding.pretrained import load_pretrained_encoder
        with pytest.raises(ValueError):
            LogSynergy(
                LogSynergyConfig(embedding_dim=32),
                encoder=load_pretrained_encoder(64),
            )


class TestFittedModel:
    def test_training_history_recorded(self, fitted_logsynergy):
        assert fitted_logsynergy.history is not None
        from ..conftest import TINY_CONFIG
        assert len(fitted_logsynergy.history.total) == TINY_CONFIG.epochs

    def test_predictions_binary(self, fitted_logsynergy, tiny_experiment_data):
        preds = fitted_logsynergy.predict(tiny_experiment_data["target_test"][:50])
        assert set(np.unique(preds)) <= {0, 1}

    def test_probabilities_in_unit_interval(self, fitted_logsynergy, tiny_experiment_data):
        probs = fitted_logsynergy.predict_proba(tiny_experiment_data["target_test"][:50])
        assert np.all((probs >= 0) & (probs <= 1))

    def test_detects_anomalies_well(self, fitted_logsynergy, tiny_experiment_data):
        """The headline property: high F1 on the unseen tail of the target
        system with only a small labeled slice."""
        test = tiny_experiment_data["target_test"]
        preds = fitted_logsynergy.predict(test)
        metrics = binary_metrics([s.label for s in test], preds)
        assert metrics.f1 > 0.6

    def test_system_index_contains_all(self, fitted_logsynergy):
        assert set(fitted_logsynergy._system_index) == {"bgl", "spirit", "thunderbird"}

    def test_detect_stream_report(self, fitted_logsynergy):
        from repro.logs import generate_logs
        records = generate_logs("thunderbird", 10, seed=123)
        report = fitted_logsynergy.detect_stream(
            [r.message for r in records], timestamps=[r.timestamp for r in records]
        )
        assert report.system == "thunderbird"
        assert 0.0 <= report.score <= 1.0
        assert len(report.interpretations) == 10
        assert report.first_timestamp is not None

    def test_detect_stream_flags_anomalous_window(self, fitted_logsynergy):
        """A window full of a known anomaly concept must score higher than a
        purely normal window."""
        anomalous = ["kernel: Kernel panic - not syncing: Fatal exception in interrupt cpu 3"] * 6
        normal = ["heartbeat: tbird-17 alive, seq 5"] * 6
        anomaly_score = fitted_logsynergy.detect_stream(anomalous).score
        normal_score = fitted_logsynergy.detect_stream(normal).score
        assert anomaly_score > normal_score


class TestBatchFirstAPI:
    def test_predict_single_sequence_returns_int(self, fitted_logsynergy, tiny_experiment_data):
        sequence = tiny_experiment_data["target_test"][0]
        prediction = fitted_logsynergy.predict(sequence)
        assert isinstance(prediction, int)
        assert prediction in (0, 1)

    def test_predict_proba_single_sequence_returns_float(
            self, fitted_logsynergy, tiny_experiment_data):
        sequence = tiny_experiment_data["target_test"][0]
        probability = fitted_logsynergy.predict_proba(sequence)
        assert isinstance(probability, float)
        assert 0.0 <= probability <= 1.0

    def test_single_matches_batch(self, fitted_logsynergy, tiny_experiment_data):
        batch = tiny_experiment_data["target_test"][:5]
        batch_probs = fitted_logsynergy.predict_proba(batch)
        assert isinstance(batch_probs, np.ndarray)
        assert batch_probs.shape == (5,)
        for sequence, expected in zip(batch, batch_probs):
            # BLAS kernels differ across batch shapes; scores agree to
            # float32 noise, not bit-for-bit.
            assert fitted_logsynergy.predict_proba(sequence) == pytest.approx(
                expected, rel=1e-3, abs=1e-6
            )

    def test_detect_stream_batch_matches_sequential(self, fitted_logsynergy):
        from repro.logs import generate_logs
        windows = [
            [r.message for r in generate_logs("thunderbird", 10, seed=seed)]
            for seed in (11, 12, 13)
        ]
        # Mixed lengths exercise the length-grouped model calls.
        windows.append(windows[0][:6])
        batch_reports = fitted_logsynergy.detect_stream_batch(windows)
        assert len(batch_reports) == len(windows)
        for window, batched in zip(windows, batch_reports):
            single = fitted_logsynergy.detect_stream(window)
            assert batched.score == pytest.approx(single.score, rel=1e-3, abs=1e-6)
            assert batched.is_anomalous == single.is_anomalous
            assert batched.interpretations == single.interpretations

    def test_detect_stream_batch_validates_timestamps(self, fitted_logsynergy):
        with pytest.raises(ValueError):
            fitted_logsynergy.detect_stream_batch([["a b c"] * 6], timestamps=[])


class TestAblationSwitchConfig:
    def test_switches_live_on_config(self):
        config = LogSynergyConfig(use_lei=False, use_sufe=False, use_da=False)
        model = LogSynergy(config)
        assert (model.use_lei, model.use_sufe, model.use_da) == (False, False, False)
        assert model.llm is None

    def test_constructor_kwargs_warn_and_fold_into_config(self):
        with pytest.warns(DeprecationWarning, match="use_lei"):
            model = LogSynergy(LogSynergyConfig(), use_lei=False)
        assert model.config.use_lei is False
        assert model.llm is None

    def test_no_warning_without_kwargs(self, recwarn):
        LogSynergy(LogSynergyConfig())
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]
