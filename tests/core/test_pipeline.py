"""End-to-end LogSynergy facade tests (uses the session-scoped fitted model)."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core import LogSynergy
from repro.evaluation.metrics import binary_metrics


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogSynergy(LogSynergyConfig()).predict([])

    def test_target_in_sources_rejected(self, tiny_experiment_data):
        model = LogSynergy(LogSynergyConfig())
        with pytest.raises(ValueError):
            model.fit(
                tiny_experiment_data["sources"],
                next(iter(tiny_experiment_data["sources"])),
                tiny_experiment_data["target_train"],
            )

    def test_empty_target_rejected(self, tiny_experiment_data):
        model = LogSynergy(LogSynergyConfig())
        with pytest.raises(ValueError):
            model.fit(tiny_experiment_data["sources"], "thunderbird", [])

    def test_encoder_dim_mismatch_rejected(self):
        from repro.embedding.pretrained import load_pretrained_encoder
        with pytest.raises(ValueError):
            LogSynergy(
                LogSynergyConfig(embedding_dim=32),
                encoder=load_pretrained_encoder(64),
            )


class TestFittedModel:
    def test_training_history_recorded(self, fitted_logsynergy):
        assert fitted_logsynergy.history is not None
        from ..conftest import TINY_CONFIG
        assert len(fitted_logsynergy.history.total) == TINY_CONFIG.epochs

    def test_predictions_binary(self, fitted_logsynergy, tiny_experiment_data):
        preds = fitted_logsynergy.predict(tiny_experiment_data["target_test"][:50])
        assert set(np.unique(preds)) <= {0, 1}

    def test_probabilities_in_unit_interval(self, fitted_logsynergy, tiny_experiment_data):
        probs = fitted_logsynergy.predict_proba(tiny_experiment_data["target_test"][:50])
        assert np.all((probs >= 0) & (probs <= 1))

    def test_detects_anomalies_well(self, fitted_logsynergy, tiny_experiment_data):
        """The headline property: high F1 on the unseen tail of the target
        system with only a small labeled slice."""
        test = tiny_experiment_data["target_test"]
        preds = fitted_logsynergy.predict(test)
        metrics = binary_metrics([s.label for s in test], preds)
        assert metrics.f1 > 0.6

    def test_system_index_contains_all(self, fitted_logsynergy):
        assert set(fitted_logsynergy._system_index) == {"bgl", "spirit", "thunderbird"}

    def test_detect_stream_report(self, fitted_logsynergy):
        from repro.logs import generate_logs
        records = generate_logs("thunderbird", 10, seed=123)
        report = fitted_logsynergy.detect_stream(
            [r.message for r in records], timestamps=[r.timestamp for r in records]
        )
        assert report.system == "thunderbird"
        assert 0.0 <= report.score <= 1.0
        assert len(report.interpretations) == 10
        assert report.first_timestamp is not None

    def test_detect_stream_flags_anomalous_window(self, fitted_logsynergy):
        """A window full of a known anomaly concept must score higher than a
        purely normal window."""
        anomalous = ["kernel: Kernel panic - not syncing: Fatal exception in interrupt cpu 3"] * 6
        normal = ["heartbeat: tbird-17 alive, seq 5"] * 6
        anomaly_score = fitted_logsynergy.detect_stream(anomalous).score
        normal_score = fitted_logsynergy.detect_stream(normal).score
        assert anomaly_score > normal_score
