"""Trainer tests: Eq. 5 optimization, ablation switches, history."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.core.model import LogSynergyModel
from repro.core.trainer import LogSynergyTrainer, TrainingBatch

_CONFIG = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=16, epochs=3, batch_size=32, learning_rate=1e-3,
)


def _toy_data(n=128, seed=0):
    """Separable toy task: anomalies have a shifted first event embedding."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6, 16)).astype(np.float32)
    y = rng.integers(0, 2, size=n).astype(np.int64)
    x[y == 1, :, :4] += 2.0
    systems = rng.integers(0, 2, size=n).astype(np.int64)
    x[systems == 1, :, 8:12] += 1.5  # system-specific signal
    domains = (systems == 1).astype(np.int64)
    return TrainingBatch(
        sequences=x, anomaly_labels=y, system_labels=systems, domain_labels=domains
    )


def _make(seed=0, **kwargs):
    model = LogSynergyModel(_CONFIG, num_systems=2, rng=np.random.default_rng(seed))
    return model, LogSynergyTrainer(model, _CONFIG, **kwargs)


class TestTraining:
    def test_loss_decreases(self):
        _, trainer = _make()
        history = trainer.fit(_toy_data(), epochs=5)
        assert history.total[-1] < history.total[0]

    def test_learns_separable_task(self):
        model, trainer = _make()
        data = _toy_data()
        trainer.fit(data, epochs=8)
        preds = model.predict(data.sequences)
        accuracy = (preds == data.anomaly_labels).mean()
        assert accuracy > 0.9

    def test_history_has_all_components(self):
        _, trainer = _make()
        history = trainer.fit(_toy_data(), epochs=2)
        assert len(history.total) == 2
        assert len(history.anomaly) == 2
        assert len(history.system) == 2
        assert len(history.mutual_information) == 2
        assert len(history.domain_adaptation) == 2
        last = history.last()
        assert set(last) == {"total", "anomaly", "system", "mi", "da"}

    def test_model_left_in_eval_mode(self):
        model, trainer = _make()
        trainer.fit(_toy_data(), epochs=1)
        assert not model.training


class TestAblationSwitches:
    def test_without_sufe_no_system_loss(self):
        _, trainer = _make(use_sufe=False)
        history = trainer.fit(_toy_data(), epochs=2)
        assert all(v == 0.0 for v in history.system)
        assert all(v == 0.0 for v in history.mutual_information)
        assert any(v != 0.0 for v in history.domain_adaptation)

    def test_without_da_no_domain_loss(self):
        _, trainer = _make(use_da=False)
        history = trainer.fit(_toy_data(), epochs=2)
        assert all(v == 0.0 for v in history.domain_adaptation)
        assert any(v != 0.0 for v in history.system)

    def test_single_domain_batch_skips_da(self):
        """DAAN needs both domains; a single-domain dataset must not crash."""
        data = _toy_data()
        data = TrainingBatch(
            sequences=data.sequences,
            anomaly_labels=data.anomaly_labels,
            system_labels=np.zeros_like(data.system_labels),
            domain_labels=np.zeros_like(data.domain_labels),
        )
        _, trainer = _make()
        history = trainer.fit(data, epochs=1)
        assert history.domain_adaptation[0] == 0.0


class TestEdgeCases:
    def test_empty_data_raises(self):
        _, trainer = _make()
        empty = TrainingBatch(
            sequences=np.zeros((1, 6, 16), dtype=np.float32),
            anomaly_labels=np.zeros(1, dtype=np.int64),
            system_labels=np.zeros(1, dtype=np.int64),
            domain_labels=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            trainer.fit(empty, epochs=1)  # single sample -> no usable batch

    def test_auto_pos_weight_bounded(self):
        _, trainer = _make()
        labels = np.array([0] * 999 + [1])
        assert trainer._auto_pos_weight(labels) == 50.0
        assert trainer._auto_pos_weight(np.zeros(10)) == 1.0
        assert trainer._auto_pos_weight(np.ones(10)) == 1.0

    def test_explicit_pos_weight_respected(self):
        _, trainer = _make(pos_weight=3.0)
        assert trainer.pos_weight == 3.0


class TestDisentanglement:
    def test_mi_between_feature_halves_drops(self):
        """After SUFE training, the empirical correlation between unified
        and specific features should be modest."""
        model, trainer = _make()
        data = _toy_data(n=192)
        trainer.fit(data, epochs=8)
        from repro import nn
        with nn.no_grad():
            unified, specific = model.extract_features(data.sequences)
        u = unified.data - unified.data.mean(0)
        s = specific.data - specific.data.mean(0)
        corr = np.abs(
            (u.T @ s) / (np.outer(np.linalg.norm(u, axis=0), np.linalg.norm(s, axis=0)) + 1e-9)
        )
        assert corr.mean() < 0.5
