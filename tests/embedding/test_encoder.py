"""Sentence encoder tests."""

import numpy as np
import pytest

from repro.embedding.cooccurrence import train_word_vectors
from repro.embedding.encoder import SentenceEncoder

_CORPUS = [
    "network connection interrupted to remote endpoint",
    "network session dropped to remote peer",
    "disk write failure on storage device",
    "disk read error on storage device",
    "heartbeat confirmed component alive",
    "health check passed component responsive",
] * 10


@pytest.fixture(scope="module")
def encoder():
    return SentenceEncoder(train_word_vectors(_CORPUS, dim=16, min_count=1))


class TestEncoding:
    def test_unit_norm(self, encoder):
        vec = encoder.encode("network connection interrupted")
        np.testing.assert_allclose(np.linalg.norm(vec), 1.0, atol=1e-5)

    def test_empty_sentence_zero_vector(self, encoder):
        np.testing.assert_allclose(encoder.encode(""), 0.0)

    def test_deterministic(self, encoder):
        a = encoder.encode("disk write failure")
        b = encoder.encode("disk write failure")
        np.testing.assert_allclose(a, b)

    def test_batch_matches_single(self, encoder):
        sentences = ["network connection interrupted", "disk write failure"]
        batch = encoder.encode_batch(sentences)
        for row, sentence in zip(batch, sentences):
            np.testing.assert_allclose(row, encoder.encode(sentence))

    def test_empty_batch(self, encoder):
        assert encoder.encode_batch([]).shape == (0, 16)

    def test_semantic_neighbourhood(self, encoder):
        net_a = encoder.encode("network connection interrupted")
        net_b = encoder.encode("network session dropped")
        disk = encoder.encode("disk write failure")
        assert float(net_a @ net_b) > float(net_a @ disk)

    def test_oov_tokens_stable(self, encoder):
        a = encoder.encode("zorblat quux")
        b = encoder.encode("zorblat quux")
        np.testing.assert_allclose(a, b)
        assert np.linalg.norm(a) > 0  # hash vectors, not zeros

    def test_oov_distinct_tokens_distinct_vectors(self, encoder):
        a = encoder.encode("zorblat")
        b = encoder.encode("vexmor")
        assert not np.allclose(a, b)
