"""Skip-gram (SGNS) trainer tests."""

import numpy as np
import pytest

from repro.embedding.word2vec_lite import train_skipgram

_CORPUS = [
    "connection dropped to remote server",
    "session dropped to remote server",
    "connection refused by remote host",
    "session refused by remote host",
    "disk failure detected on device",
    "fan failure detected on chassis",
] * 8


class TestSkipgram:
    def test_output_shape(self):
        vectors = train_skipgram(_CORPUS, dim=12, epochs=1, min_count=1, seed=0)
        assert vectors.dim == 12
        assert vectors.matrix.shape[0] == len(vectors.vocabulary)

    def test_deterministic_per_seed(self):
        a = train_skipgram(_CORPUS, dim=8, epochs=1, min_count=1, seed=3)
        b = train_skipgram(_CORPUS, dim=8, epochs=1, min_count=1, seed=3)
        np.testing.assert_allclose(a.matrix, b.matrix)

    def test_distributional_similarity(self):
        """'connection' and 'session' share contexts; they must end up more
        similar than 'connection' and 'disk'."""
        vectors = train_skipgram(_CORPUS, dim=16, epochs=4, min_count=1, seed=0)
        same = vectors.similarity("connection", "session")
        different = vectors.similarity("connection", "disk")
        assert same > different

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            train_skipgram(_CORPUS, epochs=0)
