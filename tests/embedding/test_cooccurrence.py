"""PPMI-SVD word vector tests."""

import numpy as np
import pytest

from repro.embedding.cooccurrence import WordVectors, train_word_vectors
from repro.embedding.vocab import Vocabulary

_CORPUS = [
    "the connection to the server was dropped",
    "the session to the server was dropped",
    "the connection to the host was refused",
    "the session to the host was refused",
    "the disk reported a write error",
    "the disk reported a read error",
    "the memory module reported a parity error",
] * 5


class TestTraining:
    def test_dimensions(self):
        vectors = train_word_vectors(_CORPUS, dim=16, min_count=1)
        assert vectors.dim == 16
        assert vectors.matrix.shape[0] == len(vectors.vocabulary)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            train_word_vectors(_CORPUS, dim=0)

    def test_dim_padded_when_rank_deficient(self):
        vectors = train_word_vectors(["a b", "b a"], dim=64, min_count=1)
        assert vectors.matrix.shape[1] == 64

    def test_deterministic(self):
        a = train_word_vectors(_CORPUS, dim=8, min_count=1)
        b = train_word_vectors(_CORPUS, dim=8, min_count=1)
        np.testing.assert_allclose(np.abs(a.matrix), np.abs(b.matrix), atol=1e-5)


class TestSemanticGeometry:
    def test_shared_context_words_similar(self):
        """'connection' and 'session' appear in identical contexts and must
        be more similar than 'connection' and 'disk'."""
        vectors = train_word_vectors(_CORPUS, dim=16, min_count=1)
        same = vectors.similarity("connection", "session")
        different = vectors.similarity("connection", "disk")
        assert same > different

    def test_most_similar_excludes_self_and_unk(self):
        vectors = train_word_vectors(_CORPUS, dim=16, min_count=1)
        neighbours = vectors.most_similar("connection", k=3)
        tokens = [t for t, _ in neighbours]
        assert "connection" not in tokens
        assert Vocabulary.UNK not in tokens
        assert len(neighbours) == 3

    def test_similarity_of_zero_vector_is_zero(self):
        vocab = Vocabulary()
        vocab.add_sentence(["a", "b"])
        vocab.build()
        matrix = np.zeros((3, 4), dtype=np.float32)
        vectors = WordVectors(vocab, matrix)
        assert vectors.similarity("a", "b") == 0.0

    def test_shape_mismatch_rejected(self):
        vocab = Vocabulary()
        vocab.add_sentence(["a"])
        vocab.build()
        with pytest.raises(ValueError):
            WordVectors(vocab, np.zeros((10, 4), dtype=np.float32))
