"""Cache-behaviour tests for the embedding layer: bounded OOV hash-vector
cache, batch dedup in the sentence encoder, and the memoized
train_word_vectors results."""

import numpy as np
import pytest

from repro.embedding import clear_word_vector_cache
from repro.embedding.cooccurrence import train_word_vectors
from repro.embedding.encoder import SentenceEncoder
from repro.obs import MetricsRegistry, use_registry

_CORPUS = [
    "network connection interrupted to remote endpoint",
    "network session dropped to remote peer",
    "disk write failure on storage device",
    "disk read error on storage device",
] * 5


@pytest.fixture()
def word_vectors():
    return train_word_vectors(_CORPUS, dim=8, min_count=1, use_cache=False)


class TestOovCache:
    def test_capacity_enforced(self, word_vectors):
        registry = MetricsRegistry()
        with use_registry(registry):
            encoder = SentenceEncoder(word_vectors, oov_cache_size=2)
        for token in ("zorblat", "vexmor", "quuxol", "fnord"):
            encoder.encode(token)
        assert len(encoder._oov_cache) <= 2
        assert registry.counter("embedding.encoder.oov_evictions").value == 2.0

    def test_evicted_token_rebuilds_identically(self, word_vectors):
        encoder = SentenceEncoder(word_vectors, oov_cache_size=1)
        first = encoder.encode("zorblat").copy()
        encoder.encode("vexmor")  # evicts zorblat
        assert "zorblat" not in encoder._oov_cache
        np.testing.assert_allclose(encoder.encode("zorblat"), first)

    def test_no_eviction_under_capacity(self, word_vectors):
        registry = MetricsRegistry()
        with use_registry(registry):
            encoder = SentenceEncoder(word_vectors, oov_cache_size=16)
        encoder.encode("zorblat vexmor")
        assert registry.counter("embedding.encoder.oov_evictions").value == 0.0

    def test_rejects_non_positive_capacity(self, word_vectors):
        with pytest.raises(ValueError):
            SentenceEncoder(word_vectors, oov_cache_size=0)


class TestBatchDedup:
    def test_duplicates_counted_and_results_match(self, word_vectors):
        registry = MetricsRegistry()
        with use_registry(registry):
            encoder = SentenceEncoder(word_vectors)
        sentences = [
            "network connection interrupted",
            "disk write failure",
            "network connection interrupted",
            "network connection interrupted",
        ]
        batch = encoder.encode_batch(sentences)
        assert registry.counter("embedding.encoder.batch_dedup_hits").value == 2.0
        for row, sentence in zip(batch, sentences):
            np.testing.assert_allclose(row, encoder.encode(sentence))

    def test_all_distinct_counts_nothing(self, word_vectors):
        registry = MetricsRegistry()
        with use_registry(registry):
            encoder = SentenceEncoder(word_vectors)
        encoder.encode_batch(["network connection", "disk failure"])
        assert registry.counter("embedding.encoder.batch_dedup_hits").value == 0.0


class TestWordVectorCache:
    def setup_method(self):
        clear_word_vector_cache()

    def teardown_method(self):
        clear_word_vector_cache()

    def test_hit_returns_same_object(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            first = train_word_vectors(_CORPUS, dim=8, min_count=1)
            second = train_word_vectors(_CORPUS, dim=8, min_count=1)
        assert second is first
        assert registry.counter("embedding.wordvectors.cache_misses").value == 1.0
        assert registry.counter("embedding.wordvectors.cache_hits").value == 1.0

    def test_different_params_miss(self):
        first = train_word_vectors(_CORPUS, dim=8, min_count=1)
        other = train_word_vectors(_CORPUS, dim=4, min_count=1)
        assert other is not first
        assert other.dim != first.dim

    def test_bypass_flag_skips_cache(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            first = train_word_vectors(_CORPUS, dim=8, min_count=1, use_cache=False)
            second = train_word_vectors(_CORPUS, dim=8, min_count=1, use_cache=False)
        assert second is not first
        assert registry.counter("embedding.wordvectors.cache_hits").value == 0.0
        assert registry.counter("embedding.wordvectors.cache_misses").value == 0.0
        np.testing.assert_allclose(first.matrix, second.matrix)

    def test_clear_forces_recompute(self):
        first = train_word_vectors(_CORPUS, dim=8, min_count=1)
        clear_word_vector_cache()
        second = train_word_vectors(_CORPUS, dim=8, min_count=1)
        assert second is not first
        np.testing.assert_allclose(first.matrix, second.matrix)
