"""Pre-trained domain encoder tests (the DistilBERT substitute)."""

import numpy as np

from repro.embedding.corpus import build_corpus
from repro.embedding.pretrained import load_pretrained_encoder
from repro.logs.events import CONCEPTS


class TestCorpus:
    def test_contains_all_canonicals(self):
        corpus = build_corpus(seed=0)
        for concept in CONCEPTS:
            assert concept.canonical in corpus

    def test_deterministic(self):
        assert build_corpus(seed=1) == build_corpus(seed=1)

    def test_seed_varies_paraphrases(self):
        assert build_corpus(seed=1) != build_corpus(seed=2)


class TestPretrainedEncoder:
    def test_cached_instance(self):
        a = load_pretrained_encoder(32)
        b = load_pretrained_encoder(32)
        assert a is b

    def test_dim_honored(self):
        assert load_pretrained_encoder(32).dim == 32

    def test_canonical_interpretations_well_separated(self):
        """Distinct concepts' canonical sentences must not collapse: the
        anomaly classifier depends on separable event embeddings."""
        encoder = load_pretrained_encoder(64)
        canonicals = [c.canonical for c in CONCEPTS]
        matrix = encoder.encode_batch(canonicals)
        sims = matrix @ matrix.T
        off_diag = sims[~np.eye(len(sims), dtype=bool)]
        assert off_diag.mean() < 0.5

    def test_lei_geometry(self):
        """Canonical sentences must sit closer to their paraphrases than raw
        dialect phrases sit to each other — the quantitative version of the
        Table I observation."""
        encoder = load_pretrained_encoder(64)
        same_concept = float(
            encoder.encode("Network connection to a remote endpoint was interrupted.")
            @ encoder.encode("the session with the peer was dropped unexpectedly")
        )
        raw_dialects = float(
            encoder.encode("Connection refused in open_demux connect")
            @ encoder.encode("Lustre mount FAILED failed on control stream CioStream socket")
        )
        assert same_concept > raw_dialects + 0.2
