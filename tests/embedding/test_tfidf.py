"""TF-IDF vectorizer tests."""

import numpy as np
import pytest

from repro.embedding.tfidf import TfidfVectorizer

_DOCS = [
    "disk error on node seven",
    "disk error on node nine",
    "network link down on switch",
    "user login success",
]


class TestTfidf:
    def test_shapes(self):
        matrix = TfidfVectorizer().fit_transform(_DOCS)
        assert matrix.shape[0] == len(_DOCS)

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(_DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-5)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(_DOCS)

    def test_rare_terms_weighted_higher(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(_DOCS)
        # "login" appears once, "disk" twice: idf(login) > idf(disk).
        login = vectorizer._idf[vectorizer.vocabulary.id_of("login")]
        disk = vectorizer._idf[vectorizer.vocabulary.id_of("disk")]
        assert login > disk

    def test_similar_docs_closer(self):
        matrix = TfidfVectorizer().fit_transform(_DOCS)
        disk_sim = float(matrix[0] @ matrix[1])
        cross_sim = float(matrix[0] @ matrix[3])
        assert disk_sim > cross_sim

    def test_empty_document_row_is_zero(self):
        matrix = TfidfVectorizer().fit_transform(["a b", ""])
        np.testing.assert_allclose(matrix[1], 0.0)

    def test_unseen_tokens_ignored(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(_DOCS)
        out = vectorizer.transform(["completely novel words"])
        # All tokens map to UNK (id 0): only that column may be nonzero.
        assert np.count_nonzero(out[0][1:]) == 0
