"""Embedding-space diagnostic tests."""

import numpy as np
import pytest

from repro.embedding import load_pretrained_encoder
from repro.embedding.analysis import (
    alignment_gap, concept_cluster_purity, isotropy_score,
)
from repro.llm import SimulatedLLM, build_interpretation_prompt
from repro.logs import anomalous_concepts


class TestClusterPurity:
    def test_separable_clusters_pure(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((20, 8)) + np.array([10.0] + [0] * 7)
        b = rng.standard_normal((20, 8)) - np.array([10.0] + [0] * 7)
        embeddings = np.vstack([a, b])
        labels = ["a"] * 20 + ["b"] * 20
        result = concept_cluster_purity(embeddings, labels)
        assert result.purity == 1.0
        assert result.n_labels == 2

    def test_random_labels_impure(self):
        rng = np.random.default_rng(1)
        embeddings = rng.standard_normal((60, 8))
        labels = list(rng.integers(0, 6, size=60))
        result = concept_cluster_purity(embeddings, labels)
        assert result.purity < 0.6

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            concept_cluster_purity(np.zeros((3, 2)), ["a"])

    def test_tiny_input(self):
        assert concept_cluster_purity(np.zeros((1, 2)), ["a"]).purity == 1.0


class TestIsotropy:
    def test_isotropic_gaussian_high(self):
        rng = np.random.default_rng(2)
        score = isotropy_score(rng.standard_normal((500, 16)))
        assert score > 0.5

    def test_collapsed_space_low(self):
        rng = np.random.default_rng(3)
        direction = rng.standard_normal(16)
        embeddings = np.outer(rng.standard_normal(200), direction)
        embeddings += 0.01 * rng.standard_normal((200, 16))
        assert isotropy_score(embeddings) < 0.1

    def test_degenerate_inputs(self):
        assert isotropy_score(np.zeros((1, 4))) == 1.0
        assert isotropy_score(np.zeros((10, 4))) == 1.0

    def test_pretrained_encoder_not_collapsed(self):
        """The LEI embedding space must retain usable rank."""
        encoder = load_pretrained_encoder(64)
        from repro.logs import CONCEPTS
        matrix = encoder.encode_batch([c.canonical for c in CONCEPTS])
        assert isotropy_score(matrix) > 0.05


class TestAlignmentGap:
    def test_lei_gap_exceeds_raw_gap(self):
        """The quantitative Table I claim: grouping dialect renderings by
        concept, LEI interpretations align far better than raw text."""
        encoder = load_pretrained_encoder(64)
        llm = SimulatedLLM()
        concepts = [c for c in anomalous_concepts() if len(c.phrases) >= 3][:6]

        raw_groups = {
            c.name: [p.replace("<*>", "7") for p in c.phrases.values()] for c in concepts
        }
        lei_groups = {
            c.name: [
                llm.complete(build_interpretation_prompt(system, phrase.replace("<*>", "7")))
                for system, phrase in c.phrases.items()
            ]
            for c in concepts
        }
        raw_gap = alignment_gap(encoder, raw_groups)
        lei_gap = alignment_gap(encoder, lei_groups)
        assert lei_gap > raw_gap + 0.3
        assert lei_gap > 0.8  # identical canonical sentences per group

    def test_empty(self):
        encoder = load_pretrained_encoder(64)
        assert alignment_gap(encoder, {}) == 0.0
        assert alignment_gap(encoder, {"one": ["single text"]}) == 0.0
