"""Vocabulary and tokenizer tests."""

import pytest

from repro.embedding.vocab import Vocabulary, tokenize


class TestTokenize:
    def test_lowercase_split(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("retry 42") == ["retry", "42"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("...") == []


class TestVocabulary:
    def test_build_assigns_frequency_ranked_ids(self):
        vocab = Vocabulary()
        vocab.add_sentence(["b", "a", "a", "a", "b", "c"])
        vocab.build()
        assert vocab.id_of("a") == 1  # 0 is UNK
        assert vocab.id_of("b") == 2
        assert vocab.id_of("c") == 3

    def test_unknown_maps_to_zero(self):
        vocab = Vocabulary()
        vocab.add_sentence(["x"])
        vocab.build()
        assert vocab.id_of("never_seen") == 0
        assert vocab.token_of(0) == Vocabulary.UNK

    def test_min_count_filters(self):
        vocab = Vocabulary(min_count=2)
        vocab.add_sentence(["a", "a", "b"])
        vocab.build()
        assert "a" in vocab and "b" not in vocab

    def test_max_size_truncates(self):
        vocab = Vocabulary(max_size=2)
        vocab.add_sentence(["a", "a", "b", "b", "c"])
        vocab.build()
        assert len(vocab) == 3  # UNK + 2

    def test_frozen_rejects_additions(self):
        vocab = Vocabulary()
        vocab.add_sentence(["a"])
        vocab.build()
        with pytest.raises(RuntimeError):
            vocab.add_sentence(["b"])

    def test_encode(self):
        vocab = Vocabulary()
        vocab.add_sentence(["a", "b"])
        vocab.build()
        assert vocab.encode(["a", "zz", "b"]) == [vocab.id_of("a"), 0, vocab.id_of("b")]

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)
