"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(build_loss, shape: tuple[int, ...], seed: int = 0,
                    atol: float = 2e-2, rtol: float = 5e-2) -> None:
    """Assert autograd gradients match finite differences.

    ``build_loss(tensor) -> Tensor`` must construct a scalar loss from a
    (possibly multidimensional) input tensor.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape).astype(np.float32)

    tensor = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(tensor)
    assert loss.data.size == 1, "build_loss must return a scalar"
    loss.backward()
    analytic = tensor.grad.astype(np.float64)

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build_loss(Tensor(arr.astype(np.float32))).data)

    numeric = numeric_gradient(scalar_fn, x.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
