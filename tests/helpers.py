"""Shared test utilities: thin wrappers over :mod:`repro.nn.gradcheck`.

The finite-difference gradient checker graduated into the public API
(``repro.nn.gradcheck``) so the model auditor can reuse it; tests keep
importing from here.
"""

from __future__ import annotations

from repro.nn.gradcheck import check_gradients, numeric_gradient

__all__ = ["check_gradients", "numeric_gradient"]
