"""Threshold calibration tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.calibration import calibrate_threshold, precision_floor_threshold
from repro.evaluation.metrics import binary_metrics


class TestCalibrateThreshold:
    def test_finds_separating_threshold(self):
        y = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        choice = calibrate_threshold(y, scores)
        assert choice.f1 == 1.0
        assert 0.3 <= choice.threshold < 0.8

    def test_beats_default_when_scores_shifted(self):
        """Scores compressed below 0.5: the default threshold finds nothing,
        calibration recovers the anomalies."""
        y = np.array([0] * 8 + [1] * 2)
        scores = np.concatenate([np.full(8, 0.05), np.full(2, 0.3)])
        default_f1 = binary_metrics(y, (scores > 0.5).astype(int)).f1
        choice = calibrate_threshold(y, scores)
        assert default_f1 == 0.0
        assert choice.f1 == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            calibrate_threshold([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            calibrate_threshold([0, 1], [0.5])

    @given(st.lists(st.tuples(st.integers(0, 1),
                              st.floats(0, 1, allow_nan=False)), min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_default(self, pairs):
        y = np.array([a for a, _ in pairs])
        scores = np.array([b for _, b in pairs])
        choice = calibrate_threshold(y, scores)
        default_f1 = binary_metrics(y, (scores > 0.5).astype(int)).f1
        assert choice.f1 >= default_f1 - 1e-9


class TestPrecisionFloor:
    def test_respects_floor(self):
        y = np.array([0, 0, 1, 1, 1, 0])
        scores = np.array([0.4, 0.45, 0.5, 0.8, 0.9, 0.85])
        choice = precision_floor_threshold(y, scores, min_precision=0.66)
        assert choice.precision >= 0.66
        assert choice.recall > 0

    def test_falls_back_when_unreachable(self):
        y = np.array([1, 0])
        scores = np.array([0.1, 0.9])  # anomaly scored below normal
        choice = precision_floor_threshold(y, scores, min_precision=0.99)
        fallback = calibrate_threshold(y, scores)
        assert choice == fallback

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            precision_floor_threshold([1], [0.5], min_precision=0.0)
