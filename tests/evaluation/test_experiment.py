"""Cross-system experiment runner tests."""

import numpy as np
import pytest

from repro.config import LogSynergyConfig
from repro.evaluation.experiment import CrossSystemExperiment

_FAST = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=2, batch_size=64, learning_rate=3e-4,
)


@pytest.fixture(scope="module")
def experiment():
    exp = CrossSystemExperiment(
        "thunderbird", ["bgl", "spirit"], scale=0.002,
        n_source=200, n_target=50, max_test=200, seed=0,
    )
    return exp.prepare()


class TestPreparation:
    def test_splits_built(self, experiment):
        assert set(experiment.source_train) == {"bgl", "spirit"}
        assert len(experiment.target_train) == 50
        assert 0 < len(experiment.target_test) <= 200

    def test_continuous_policy(self, experiment):
        assert experiment.target_train[-1].start_index < experiment.target_test[0].start_index

    def test_prepare_idempotent(self, experiment):
        before = len(experiment.target_test)
        experiment.prepare()
        assert len(experiment.target_test) == before

    def test_target_in_sources_rejected(self):
        with pytest.raises(ValueError):
            CrossSystemExperiment("bgl", ["bgl", "spirit"])


class TestRuns:
    def test_run_logsynergy(self, experiment):
        result = experiment.run_logsynergy(_FAST)
        assert result.method == "LogSynergy"
        assert result.target == "thunderbird"
        assert 0.0 <= result.metrics.f1 <= 1.0
        assert result.train_seconds > 0

    def test_run_ablated_variant_named(self, experiment):
        result = experiment.run_logsynergy(_FAST, method_name="LogSynergy w/o LEI",
                                           use_lei=False)
        assert result.method == "LogSynergy w/o LEI"

    def test_run_baseline_by_name(self, experiment):
        result = experiment.run_baseline("DeepLog", epochs=1, hidden_size=16, num_layers=1)
        assert result.method == "DeepLog"
        assert result.metrics.counts.total == len(experiment.target_test)

    def test_run_many(self, experiment):
        outcome = experiment.run(["LogSynergy"], config=_FAST)
        assert outcome.target == "thunderbird"
        assert outcome.f1_of("LogSynergy") == outcome.results[0].metrics.f1
        row = outcome.results[0].row()
        assert set(row) == {"method", "target", "P(%)", "R(%)", "F1(%)"}
