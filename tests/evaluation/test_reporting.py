"""Markdown report generator tests."""

from repro.evaluation.experiment import ExperimentResult, MethodResult
from repro.evaluation.metrics import binary_metrics
from repro.evaluation.reporting import MarkdownReport


def _experiment():
    results = [
        MethodResult("LogSynergy", "bgl", binary_metrics([1, 0], [1, 0]), 12.0, 0.5),
        MethodResult("DeepLog", "bgl", binary_metrics([1, 0], [1, 1]), 3.0, 0.2),
    ]
    return ExperimentResult("bgl", ("spirit",), results)


class TestMarkdownReport:
    def test_structure(self):
        report = MarkdownReport("Title", preamble="Intro text.")
        report.add_section("Section A", commentary="Comment.", tables=["a  b\n1  2"])
        rendered = report.render()
        assert rendered.startswith("# Title")
        assert "Intro text." in rendered
        assert "## Section A" in rendered
        assert "```\na  b\n1  2\n```" in rendered

    def test_experiment_section(self):
        report = MarkdownReport("R")
        report.add_experiment("Table IV row", _experiment(), commentary="Shape holds.")
        rendered = report.render()
        assert "LogSynergy" in rendered and "DeepLog" in rendered
        assert "100.00" in rendered
        assert "Shape holds." in rendered

    def test_save(self, tmp_path):
        report = MarkdownReport("R")
        report.add_section("S")
        path = tmp_path / "report.md"
        report.save(str(path))
        assert path.read_text().startswith("# R")

    def test_sections_in_order(self):
        report = MarkdownReport("R")
        report.add_section("First")
        report.add_section("Second")
        rendered = report.render()
        assert rendered.index("## First") < rendered.index("## Second")
