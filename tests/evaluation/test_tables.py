"""Table formatter tests."""

from repro.evaluation.experiment import ExperimentResult, MethodResult
from repro.evaluation.metrics import binary_metrics
from repro.evaluation.tables import format_results_table, format_series, format_stats_table


def _result(method, target, y_true, y_pred):
    return MethodResult(
        method=method, target=target,
        metrics=binary_metrics(y_true, y_pred),
        train_seconds=1.0, predict_seconds=0.1,
    )


class TestResultsTable:
    def test_layout(self):
        experiments = [
            ExperimentResult("bgl", ("spirit",), [
                _result("LogSynergy", "bgl", [1, 0], [1, 0]),
                _result("DeepLog", "bgl", [1, 0], [1, 1]),
            ]),
            ExperimentResult("spirit", ("bgl",), [
                _result("LogSynergy", "spirit", [1, 0], [1, 0]),
            ]),
        ]
        table = format_results_table(experiments, ["DeepLog", "LogSynergy"], title="Table IV")
        assert "Table IV" in table
        assert "LogSynergy" in table and "DeepLog" in table
        assert "100.00" in table
        # Missing method/target cell renders a dash.
        assert "-" in table

    def test_method_order_respected(self):
        experiments = [ExperimentResult("bgl", (), [
            _result("B", "bgl", [1], [1]), _result("A", "bgl", [1], [1]),
        ])]
        table = format_results_table(experiments, ["A", "B"])
        assert table.index("A") < table.index("B")


class TestSeries:
    def test_rows_and_columns(self):
        text = format_series("Fig 4a", [0.001, 0.01], {"BGL": [80.0, 85.0], "Spirit": [70.0, 75.0]},
                             x_label="lambda_mi")
        assert "Fig 4a" in text
        assert "lambda_mi" in text
        assert "85.00" in text and "75.00" in text


class TestStats:
    def test_table3_style(self):
        rows = [
            {"system": "BGL", "num_logs": 100, "anomaly_ratio": 0.1},
            {"system": "Spirit", "num_logs": 200, "anomaly_ratio": 0.01},
        ]
        text = format_stats_table(rows, title="Table III")
        assert "Table III" in text
        assert "BGL" in text and "Spirit" in text

    def test_empty(self):
        assert format_stats_table([], title="t") == "t"
