"""Multi-seed repetition tests."""

import pytest

from repro.config import LogSynergyConfig
from repro.evaluation.repeated import repeat_experiment

_FAST = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=2, batch_size=64, learning_rate=3e-4,
)


class TestRepeatExperiment:
    def test_aggregates_over_seeds(self):
        aggregate = repeat_experiment(
            "thunderbird", ["bgl", "spirit"], seeds=[0, 1],
            scale=0.002, n_source=200, n_target=50, max_test=150, config=_FAST,
        )
        assert len(aggregate.runs) == 2
        assert 0.0 <= aggregate.f1_mean <= 1.0
        assert aggregate.f1_std >= 0.0
        assert "F1" in aggregate.summary()
        assert "n=2" in aggregate.summary()

    def test_baseline_repetition(self):
        aggregate = repeat_experiment(
            "thunderbird", ["bgl", "spirit"], method="DeepLog", seeds=[0],
            scale=0.002, n_source=200, n_target=50, max_test=150,
            baseline_kwargs=dict(epochs=1, hidden_size=16, num_layers=1),
        )
        assert aggregate.method == "DeepLog"
        assert len(aggregate.runs) == 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            repeat_experiment("bgl", ["spirit"], seeds=[])
