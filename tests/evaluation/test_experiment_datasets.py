"""CrossSystemExperiment with injected datasets (avoids regeneration)."""

from repro.config import LogSynergyConfig
from repro.evaluation import CrossSystemExperiment
from repro.logs import build_dataset

_FAST = LogSynergyConfig(
    d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
    embedding_dim=64, epochs=2, batch_size=64,
)


class TestInjectedDatasets:
    def test_reuses_provided_datasets(self):
        shared = {
            name: build_dataset(name, scale=0.002, seed=index)
            for index, name in enumerate(["bgl", "spirit", "thunderbird"])
        }
        experiment = CrossSystemExperiment(
            "thunderbird", ["bgl", "spirit"], datasets=shared,
            n_source=150, n_target=40, max_test=100,
        )
        experiment.prepare()
        # The injected objects are used directly, not regenerated.
        assert experiment.target_test[0].records[0] in shared["thunderbird"].records

    def test_two_experiments_can_share_generation(self):
        shared = {
            name: build_dataset(name, scale=0.002, seed=index)
            for index, name in enumerate(["bgl", "spirit"])
        }
        a = CrossSystemExperiment("bgl", ["spirit"], datasets=dict(shared),
                                  n_source=100, n_target=40, max_test=100)
        b = CrossSystemExperiment("spirit", ["bgl"], datasets=dict(shared),
                                  n_source=100, n_target=40, max_test=100)
        a.prepare()
        b.prepare()
        assert a.source_train["spirit"][0].records[0] in shared["spirit"].records
        assert b.source_train["bgl"][0].records[0] in shared["bgl"].records
