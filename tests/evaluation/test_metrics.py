"""Metric tests: precision/recall/F1 definitions from §IV-A3."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.metrics import binary_metrics, confusion_counts


class TestConfusionCounts:
    def test_cells(self):
        counts = confusion_counts([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert counts.true_positive == 2
        assert counts.false_negative == 1
        assert counts.false_positive == 1
        assert counts.true_negative == 1
        assert counts.total == 5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            confusion_counts([0, 2], [0, 1])


class TestBinaryMetrics:
    def test_perfect(self):
        metrics = binary_metrics([1, 0, 1], [1, 0, 1])
        assert metrics.precision == metrics.recall == metrics.f1 == 1.0

    def test_paper_definitions(self):
        # TP=1, FP=1, FN=1 -> P=0.5, R=0.5, F1=0.5
        metrics = binary_metrics([1, 1, 0, 0], [1, 0, 1, 0])
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.f1 == 0.5

    def test_all_negative_predictions_zero_not_nan(self):
        metrics = binary_metrics([1, 1, 0], [0, 0, 0])
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_no_positives_at_all(self):
        metrics = binary_metrics([0, 0], [0, 0])
        assert metrics.f1 == 0.0

    def test_percentages(self):
        metrics = binary_metrics([1, 1, 0, 0], [1, 0, 1, 0])
        pct = metrics.as_percentages()
        assert pct == {"P(%)": 50.0, "R(%)": 50.0, "F1(%)": 50.0}

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_f1_is_harmonic_mean(self, pairs):
        y_true = [a for a, _ in pairs]
        y_pred = [b for _, b in pairs]
        metrics = binary_metrics(y_true, y_pred)
        assert 0.0 <= metrics.f1 <= 1.0
        if metrics.precision + metrics.recall > 0:
            expected = 2 * metrics.precision * metrics.recall / (
                metrics.precision + metrics.recall
            )
            assert metrics.f1 == pytest.approx(expected)
        assert min(metrics.precision, metrics.recall) <= metrics.f1 + 1e-9
        assert metrics.f1 <= max(metrics.precision, metrics.recall) + 1e-9

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_self_prediction_perfect_when_positives_exist(self, labels):
        metrics = binary_metrics(labels, labels)
        if any(labels):
            assert metrics.f1 == 1.0
