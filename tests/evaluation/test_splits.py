"""Split policy tests (§IV-A1)."""

import pytest

from repro.evaluation.splits import (
    continuous_target_split, random_split, source_training_slice,
)
from repro.logs import generate_logs, sliding_windows


def _sequences(n_lines=300, seed=0):
    return sliding_windows(generate_logs("bgl", n_lines, seed=seed))


class TestContinuousSplit:
    def test_temporal_order_preserved(self):
        sequences = _sequences()
        split = continuous_target_split(sequences, 20)
        assert split.train == sequences[:20]
        assert split.test == sequences[20:]
        latest_train = max(s.records[-1].timestamp for s in split.train)
        earliest_test = min(s.records[0].timestamp for s in split.test)
        # Overlapping windows share records, but no test window may start
        # before all train windows started.
        assert split.test[0].start_index > split.train[-1].start_index

    def test_labels_accessors(self):
        split = continuous_target_split(_sequences(), 10)
        assert len(split.train_labels) == 10
        assert set(split.train_labels) <= {0, 1}

    def test_invalid_sizes(self):
        sequences = _sequences()
        with pytest.raises(ValueError):
            continuous_target_split(sequences, 0)
        with pytest.raises(ValueError):
            continuous_target_split(sequences, len(sequences))


class TestSourceSlice:
    def test_takes_prefix(self):
        sequences = _sequences()
        assert source_training_slice(sequences, 7) == sequences[:7]

    def test_short_source_returns_all(self):
        sequences = _sequences(100)
        assert source_training_slice(sequences, 10_000) == sequences

    def test_invalid(self):
        with pytest.raises(ValueError):
            source_training_slice(_sequences(100), 0)


class TestRandomSplit:
    def test_partition(self):
        sequences = _sequences()
        split = random_split(sequences, 15, seed=0)
        assert len(split.train) == 15
        assert len(split.train) + len(split.test) == len(sequences)

    def test_seed_determinism(self):
        sequences = _sequences()
        a = random_split(sequences, 15, seed=1)
        b = random_split(sequences, 15, seed=1)
        assert a.train == b.train

    def test_differs_from_continuous(self):
        sequences = _sequences()
        random = random_split(sequences, 15, seed=2)
        continuous = continuous_target_split(sequences, 15)
        assert random.train != continuous.train
