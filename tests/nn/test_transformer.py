"""Transformer encoder tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.nn.transformer import PositionalEncoding


def _encoder(d_model=16, heads=4, layers=2, d_ff=32, seed=0, max_len=64):
    return nn.TransformerEncoder(d_model, heads, layers, d_ff, dropout=0.0,
                                 max_len=max_len, rng=np.random.default_rng(seed))


class TestPositionalEncoding:
    def test_adds_position_signal(self):
        pe = PositionalEncoding(8, max_len=16)
        x = Tensor(np.zeros((1, 4, 8), dtype=np.float32))
        out = pe(x).data
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_deterministic(self):
        pe = PositionalEncoding(8, max_len=16)
        x = Tensor(np.zeros((1, 4, 8), dtype=np.float32))
        np.testing.assert_allclose(pe(x).data, pe(x).data)

    def test_too_long_raises(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 8), dtype=np.float32)))

    def test_odd_d_model(self):
        pe = PositionalEncoding(7, max_len=8)
        assert pe(Tensor(np.zeros((1, 3, 7), dtype=np.float32))).shape == (1, 3, 7)


class TestTransformerEncoder:
    def test_output_shape(self):
        enc = _encoder()
        x = Tensor(np.random.default_rng(0).standard_normal((3, 6, 16)).astype(np.float32))
        assert enc(x).shape == (3, 6, 16)

    def test_pooled_shape(self):
        enc = _encoder()
        x = Tensor(np.random.default_rng(1).standard_normal((3, 6, 16)).astype(np.float32))
        assert enc.pooled(x).shape == (3, 16)

    def test_pooled_with_mask_ignores_invalid(self):
        enc = _encoder(seed=2)
        enc.eval()
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 16)).astype(np.float32)
        mask = np.array([[True, True, False, False]])
        base = enc.pooled(Tensor(x), mask=mask).data
        x2 = x.copy()
        x2[0, 2:] += 50.0
        out = enc.pooled(Tensor(x2), mask=mask).data
        np.testing.assert_allclose(out, base, atol=1e-3)

    def test_order_sensitivity(self):
        """With positional encoding the encoder must distinguish order."""
        enc = _encoder(seed=4)
        enc.eval()
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 5, 16)).astype(np.float32)
        out_fwd = enc.pooled(Tensor(x)).data
        out_rev = enc.pooled(Tensor(x[:, ::-1].copy())).data
        assert not np.allclose(out_fwd, out_rev, atol=1e-3)

    def test_training_reduces_loss(self):
        """A tiny classification task must be learnable end-to-end."""
        rng = np.random.default_rng(6)
        enc = _encoder(seed=6)
        head = nn.Linear(16, 1, rng=rng)
        params = enc.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=1e-3)
        x = rng.standard_normal((32, 4, 16)).astype(np.float32)
        y = (x[:, 0, 0] > 0).astype(np.float32)

        def loss_value():
            logits = head(enc.pooled(Tensor(x))).reshape(-1)
            return nn.binary_cross_entropy_with_logits(logits, y)

        initial = float(loss_value().data)
        for _ in range(30):
            loss = loss_value()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        final = float(loss_value().data)
        assert final < initial * 0.7

    def test_num_layers_reflected_in_params(self):
        one = _encoder(layers=1).num_parameters()
        two = _encoder(layers=2).num_parameters()
        assert two > one
