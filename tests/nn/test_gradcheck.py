"""Tests for the public gradient-checking API (repro.nn.gradcheck)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_gradients, parameter_gradient_error


class TestCheckGradients:
    def test_passes_for_correct_graph(self):
        check_gradients(lambda x: (x * x).sum(), (3, 4))

    def test_fails_for_wrong_gradient(self):
        def lossy(x):
            # the squared term reaches the value but not the graph
            hidden = nn.Tensor(x.data ** 2)
            return (x * 3.0).sum() + hidden.sum()

        with pytest.raises(AssertionError):
            check_gradients(lossy, (2, 2))


class TestParameterGradientError:
    def test_small_error_for_correct_graph(self):
        model = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = nn.Tensor(np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32))

        def loss_value():
            with nn.no_grad():
                return float(model(x).sum().data)

        model(x).sum().backward()
        error = parameter_gradient_error(loss_value, model.weight)
        assert error < 1e-2

    def test_requires_backward_first(self):
        model = nn.Linear(3, 2)
        with pytest.raises(ValueError, match="no gradient"):
            parameter_gradient_error(lambda: 0.0, model.weight)
