"""Autograd engine tests: op correctness, broadcasting, graph mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import (
    Tensor, concatenate, is_grad_enabled, no_grad, stack, tensor, where, zeros,
)

from ..helpers import check_gradients


# ----------------------------------------------------------------------
# Forward correctness
# ----------------------------------------------------------------------
class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_broadcast(self):
        out = Tensor([[1.0, 2.0]]) + 1.0
        np.testing.assert_allclose(out.data, [[2.0, 3.0]])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((a * 3).data, [6.0, 12.0])
        np.testing.assert_allclose((a / 2).data, [1.0, 2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((10 - a).data, [8.0])
        np.testing.assert_allclose((10 / a).data, [5.0])

    def test_matmul(self):
        a = Tensor(np.eye(2, dtype=np.float32) * 2)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)).astype(np.float32))
        s = x.softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(1).standard_normal((3, 5)).astype(np.float32)
        a = Tensor(x).softmax().data
        b = Tensor(x + 100.0).softmax().data
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).standard_normal((3, 5)).astype(np.float32))
        np.testing.assert_allclose(
            x.log_softmax().data, np.log(x.softmax().data), atol=1e-5
        )

    def test_reductions(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert x.sum().item() == 10.0
        assert x.mean().item() == 2.5
        np.testing.assert_allclose(x.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_allclose(x.mean(axis=1, keepdims=True).data, [[1.5], [3.5]])
        assert x.max().item() == 4.0

    def test_var(self):
        x = np.random.default_rng(3).standard_normal((4, 6)).astype(np.float32)
        np.testing.assert_allclose(Tensor(x).var(axis=1).data, x.var(axis=1), atol=1e-5)

    def test_getitem_and_slice(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose(x[1].data, [4, 5, 6, 7])
        np.testing.assert_allclose(x[:, ::-1].data[:, 0], [3, 7, 11])

    def test_transpose_reshape(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert x.T.shape == (3, 2)
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.reshape((6,)).shape == (6,)

    def test_clip(self):
        x = Tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(x.clip(-1, 1).data, [-1.0, 0.5, 1.0])

    def test_comparison_produces_mask(self):
        mask = Tensor([1.0, -1.0]) > 0
        np.testing.assert_allclose(mask.data, [1.0, 0.0])
        assert not mask.requires_grad

    def test_concatenate_and_stack(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        assert concatenate([a, b], axis=0).shape == (2, 1)
        assert stack([a, b], axis=0).shape == (2, 1, 1)

    def test_where(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert tensor([1.0]).data.dtype == np.float32


# ----------------------------------------------------------------------
# Gradient checks (finite differences)
# ----------------------------------------------------------------------
class TestGradients:
    def test_add_broadcast(self):
        bias = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        check_gradients(lambda x: ((x + bias) * (x + bias)).sum(), (3, 4))

    def test_mul(self):
        check_gradients(lambda x: (x * x * 0.5).sum(), (5,))

    def test_div(self):
        check_gradients(lambda x: (1.0 / (x * x + 2.0)).sum(), (4,))

    def test_pow(self):
        check_gradients(lambda x: ((x * x + 1.0) ** 1.5).sum(), (3,))

    def test_exp_log(self):
        check_gradients(lambda x: ((x * x + 1.0).log() + x.exp()).sum(), (4,))

    def test_tanh_sigmoid_relu(self):
        check_gradients(lambda x: (x.tanh() + x.sigmoid() + (x + 0.3).relu()).sum(), (6,))

    def test_abs(self):
        check_gradients(lambda x: (x + 0.31).abs().sum(), (5,))

    def test_matmul(self):
        w = Tensor(np.random.default_rng(7).standard_normal((4, 3)).astype(np.float32),
                   requires_grad=True)
        check_gradients(lambda x: (x @ w).sum(), (2, 4))

    def test_batched_matmul(self):
        w = Tensor(np.random.default_rng(8).standard_normal((2, 4, 3)).astype(np.float32))
        check_gradients(lambda x: ((x @ w) * (x @ w)).sum(), (2, 5, 4))

    def test_softmax(self):
        coefficients = Tensor(np.random.default_rng(9).standard_normal((3, 5)).astype(np.float32))
        check_gradients(lambda x: (x.softmax(axis=-1) * coefficients).sum(), (3, 5))

    def test_log_softmax(self):
        check_gradients(lambda x: x.log_softmax(axis=-1)[:, 0].sum(), (3, 5))

    def test_mean_axis(self):
        check_gradients(lambda x: (x.mean(axis=1) ** 2.0).sum(), (3, 4))

    def test_var(self):
        check_gradients(lambda x: x.var(axis=-1).sum(), (2, 6))

    def test_max(self):
        # Avoid ties: add a deterministic ramp.
        ramp = Tensor(np.linspace(0, 0.1, 12, dtype=np.float32).reshape(3, 4))
        check_gradients(lambda x: (x + ramp).max(axis=1).sum(), (3, 4))

    def test_getitem(self):
        check_gradients(lambda x: (x[1:] * x[1:]).sum(), (4, 3))

    def test_transpose(self):
        w = Tensor(np.random.default_rng(10).standard_normal((3, 2)).astype(np.float32))
        check_gradients(lambda x: (x.transpose() * w).sum(), (2, 3))

    def test_concatenate(self):
        other = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        check_gradients(
            lambda x: (concatenate([x, other], axis=1) ** 2.0).sum(), (2, 3)
        )

    def test_stack(self):
        check_gradients(lambda x: (stack([x[0], x[1]], axis=0) ** 2.0).sum(), (2, 3))

    def test_where(self):
        mask = np.array([[True, False, True]])
        check_gradients(lambda x: (where(mask, x * 2.0, x * 3.0)).sum(), (2, 3))


# ----------------------------------------------------------------------
# Graph mechanics
# ----------------------------------------------------------------------
class TestGraph:
    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        np.testing.assert_allclose(x.grad, [12.0])

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad
        assert y._parents == ()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        np.testing.assert_allclose(d.data, x.data)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * x).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_explicit_grad_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
_float_arrays = st.integers(1, 5).flatmap(
    lambda n: st.lists(
        st.floats(-10, 10, allow_nan=False, width=32), min_size=n, max_size=n
    )
)


class TestProperties:
    @given(_float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_add_commutes(self, values):
        a = Tensor(values)
        b = Tensor(list(reversed(values)))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(_float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, values):
        s = Tensor([values]).softmax(axis=-1).data
        assert np.all(s >= 0)
        np.testing.assert_allclose(s.sum(), 1.0, atol=1e-4)

    @given(_float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_relu_nonnegative(self, values):
        assert np.all(Tensor(values).relu().data >= 0)

    @given(_float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_sum_linearity_of_gradient(self, values):
        x = Tensor(values, requires_grad=True)
        (x.sum() * 3.0).backward()
        np.testing.assert_allclose(x.grad, np.full(len(values), 3.0), atol=1e-5)

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, n, m):
        a = Tensor(np.ones((n, 3), dtype=np.float32))
        b = Tensor(np.ones((3, m), dtype=np.float32))
        assert (a @ b).shape == (n, m)
        np.testing.assert_allclose((a @ b).data, np.full((n, m), 3.0))
