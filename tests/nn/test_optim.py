"""Optimizer tests: SGD, Adam, AdamW, clipping, scheduling."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


def _quadratic_param(start=5.0):
    return Parameter(np.array([start], dtype=np.float32))


def _step(param, optimizer, steps=100):
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        assert abs(_step(p, nn.SGD([p], lr=0.1))) < 1e-3

    def test_momentum_accelerates(self):
        plain = _quadratic_param()
        momentum = _quadratic_param()
        _step(plain, nn.SGD([plain], lr=0.01), steps=20)
        _step(momentum, nn.SGD([momentum], lr=0.01, momentum=0.9), steps=20)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = nn.SGD([p], lr=0.1, weight_decay=1.0)
        # Zero-gradient loss: decay alone must shrink the weight.
        loss = (p * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert p.data[0] < 1.0

    def test_skips_none_grads(self):
        p1, p2 = _quadratic_param(), _quadratic_param()
        optimizer = nn.SGD([p1, p2], lr=0.1)
        (p1 * p1).sum().backward()
        optimizer.step()  # p2 has no grad; must not crash
        assert p2.data[0] == 5.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        assert abs(_step(p, nn.Adam([p], lr=0.1), steps=200)) < 1e-2

    def test_bias_correction_first_step(self):
        p = _quadratic_param(1.0)
        optimizer = nn.Adam([p], lr=0.1)
        (p * p).sum().backward()
        optimizer.step()
        # With bias correction the first step has magnitude ~lr.
        np.testing.assert_allclose(p.data[0], 1.0 - 0.1, atol=1e-3)


class TestAdamW:
    def test_decay_decoupled_from_gradient(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        optimizer = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        (p * 0.0).sum().backward()
        optimizer.step()
        # Decay applies even with a zero gradient: 2 - 0.1*0.5*2 = 1.9.
        np.testing.assert_allclose(p.data[0], 1.9, atol=1e-4)

    def test_converges(self):
        p = _quadratic_param()
        assert abs(_step(p, nn.AdamW([p], lr=0.1, weight_decay=0.0), steps=200)) < 1e-2


class TestValidation:
    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        before = nn.clip_grad_norm([p], max_norm=1.0)
        assert before == pytest.approx(20.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-5)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        nn.clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestSchedule:
    def test_linear_warmup(self):
        p = _quadratic_param()
        optimizer = nn.SGD([p], lr=1.0)
        schedule = nn.LinearWarmupSchedule(optimizer, warmup_steps=4)
        lrs = [schedule.step() for _ in range(6)]
        np.testing.assert_allclose(lrs, [0.25, 0.5, 0.75, 1.0, 1.0, 1.0])
