"""End-to-end gradient checks through composite architectures.

These are the heaviest correctness tests in the suite: full finite-
difference validation of the gradient through multi-module compositions
(the exact paths the LogSynergy trainer differentiates).
"""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor

from ..helpers import check_gradients


class TestTransformerBlockGradients:
    def test_encoder_layer(self):
        layer = nn.TransformerEncoderLayer(8, 2, 16, dropout=0.0,
                                           rng=np.random.default_rng(0))
        layer.eval()
        check_gradients(lambda x: (layer(x) ** 2.0).sum(), (2, 3, 8), atol=6e-2)

    def test_full_encoder_pooled(self):
        encoder = nn.TransformerEncoder(8, 2, 1, 16, dropout=0.0, max_len=8,
                                        rng=np.random.default_rng(1))
        encoder.eval()
        check_gradients(lambda x: (encoder.pooled(x) ** 2.0).sum(), (2, 3, 8), atol=6e-2)


class TestRecurrentCellGradients:
    def test_lstm_cell(self):
        cell = nn.LSTMCell(4, 4, rng=np.random.default_rng(2))

        def loss(x):
            h = Tensor(np.zeros((2, 4), dtype=np.float32))
            c = Tensor(np.zeros((2, 4), dtype=np.float32))
            h, c = cell(x, (h, c))
            h, c = cell(x * 0.5, (h, c))  # two chained steps
            return (h * h).sum() + (c * c).sum()

        check_gradients(loss, (2, 4), atol=5e-2)

    def test_gru_cell(self):
        cell = nn.GRUCell(4, 4, rng=np.random.default_rng(3))

        def loss(x):
            h = Tensor(np.zeros((2, 4), dtype=np.float32))
            h = cell(x, h)
            h = cell(x * 0.3, h)
            return (h * h).sum()

        check_gradients(loss, (2, 4), atol=5e-2)


class TestAdversarialPathGradients:
    def test_grl_plus_discriminator(self):
        """The DAAN path: features -> GRL -> MLP -> BCE."""
        rng = np.random.default_rng(4)
        discriminator = nn.Sequential(
            nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 1, rng=rng)
        )
        labels = np.array([0.0, 1.0, 0.0, 1.0], dtype=np.float32)

        def loss(x):
            logits = discriminator(nn.gradient_reversal(x, alpha=0.7)).reshape(-1)
            return nn.binary_cross_entropy_with_logits(logits, labels)

        # GRL flips the sign; finite differences measure the TRUE derivative
        # of the loss, so compare against the negated autograd gradient.
        x = rng.standard_normal((4, 4)).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        loss(t).backward()
        from ..helpers import numeric_gradient
        numeric = numeric_gradient(
            lambda arr: float(loss(Tensor(arr.astype(np.float32))).data),
            x.astype(np.float64),
        )
        np.testing.assert_allclose(-t.grad / 0.7, numeric, atol=2e-2, rtol=5e-2)

    def test_club_mi_bound_path(self):
        from repro.core.club import CLUBEstimator
        club = CLUBEstimator(3, 3, rng=np.random.default_rng(5))
        s = Tensor(np.random.default_rng(6).standard_normal((4, 3)).astype(np.float32))

        def loss(x):
            return club.mi_upper_bound(x, s, rng=np.random.default_rng(7))

        check_gradients(loss, (4, 3), atol=5e-2)


class TestSpikingPathGradients:
    def test_lif_surrogate_path_is_differentiable(self):
        lif = nn.LIFLayer(3, 4, rng=np.random.default_rng(8))
        x = Tensor(np.random.default_rng(9).standard_normal((2, 4, 3)).astype(np.float32),
                   requires_grad=True)
        spikes, membrane = lif(x)
        ((spikes.mean(axis=1) ** 2.0).sum() + (membrane ** 2.0).sum()).backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
