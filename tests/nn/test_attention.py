"""Multi-head attention tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

from ..helpers import check_gradients


def _mha(d_model=8, heads=2, seed=0):
    return nn.MultiHeadAttention(d_model, heads, rng=np.random.default_rng(seed))


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = _mha()
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5, 8)).astype(np.float32))
        assert mha(x).shape == (3, 5, 8)

    def test_d_model_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_mask_blocks_attention(self):
        """Masked positions must not influence the outputs at valid positions."""
        mha = _mha()
        mha.eval()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        mask = np.array([[True, True, False, False]])
        base = mha(Tensor(x), mask=mask).data.copy()
        # Perturb masked positions wildly; valid outputs must be unchanged.
        x2 = x.copy()
        x2[0, 2:] += 100.0
        out = mha(Tensor(x2), mask=mask).data
        np.testing.assert_allclose(out[0, :2], base[0, :2], atol=1e-4)

    def test_cross_attention_shapes(self):
        mha = _mha()
        q = Tensor(np.zeros((2, 3, 8), dtype=np.float32))
        kv = Tensor(np.zeros((2, 6, 8), dtype=np.float32))
        assert mha(q, key=kv, value=kv).shape == (2, 3, 8)

    def test_permutation_equivariance_without_mask(self):
        """Self-attention without positional info is permutation-equivariant."""
        mha = _mha(seed=3)
        mha.eval()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 5, 8)).astype(np.float32)
        perm = np.array([4, 2, 0, 1, 3])
        out = mha(Tensor(x)).data
        out_perm = mha(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-4)

    def test_gradients_flow(self):
        mha = _mha()
        mha.eval()
        check_gradients(lambda x: (mha(x) ** 2.0).sum(), (2, 3, 8), atol=5e-2)

    def test_all_params_receive_grads(self):
        mha = _mha()
        x = Tensor(np.random.default_rng(4).standard_normal((2, 4, 8)).astype(np.float32))
        (mha(x) ** 2.0).sum().backward()
        for name, p in mha.named_parameters():
            assert p.grad is not None, f"no grad for {name}"
