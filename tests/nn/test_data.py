"""Dataset / DataLoader tests."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader, train_test_split_continuous


class TestArrayDataset:
    def test_parallel_indexing(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        x, y = ds[np.array([1, 3])]
        np.testing.assert_allclose(x, [1, 3])
        np.testing.assert_allclose(y, [2, 6])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))

    def test_empty_args_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset()


class TestDataLoader:
    def test_covers_all_samples(self):
        ds = ArrayDataset(np.arange(23))
        loader = DataLoader(ds, batch_size=5, shuffle=True, rng=np.random.default_rng(0))
        seen = np.concatenate([batch[0] for batch in loader])
        assert sorted(seen.tolist()) == list(range(23))

    def test_drop_last(self):
        ds = ArrayDataset(np.arange(23))
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        batches = list(loader)
        assert len(batches) == 4
        assert all(len(b[0]) == 5 for b in batches)
        assert len(loader) == 4

    def test_len_without_drop(self):
        assert len(DataLoader(ArrayDataset(np.arange(23)), batch_size=5)) == 5

    def test_deterministic_with_seed(self):
        ds = ArrayDataset(np.arange(10))
        a = [b[0].tolist() for b in DataLoader(ds, 3, rng=np.random.default_rng(7))]
        b = [b[0].tolist() for b in DataLoader(ds, 3, rng=np.random.default_rng(7))]
        assert a == b

    def test_no_shuffle_is_ordered(self):
        ds = ArrayDataset(np.arange(6))
        batches = [b[0].tolist() for b in DataLoader(ds, 2, shuffle=False)]
        assert batches == [[0, 1], [2, 3], [4, 5]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(3)), batch_size=0)


class TestContinuousSplit:
    def test_prefix_suffix(self):
        train, test = train_test_split_continuous(list(range(10)), 4)
        assert train == [0, 1, 2, 3]
        assert test == [4, 5, 6, 7, 8, 9]

    def test_zero_train(self):
        train, test = train_test_split_continuous([1, 2], 0)
        assert train == [] and test == [1, 2]

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            train_test_split_continuous([1], -1)
