"""Gradient reversal layer tests."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class TestGradientReversal:
    def test_forward_identity(self):
        x = Tensor([1.0, -2.0, 3.0])
        np.testing.assert_allclose(nn.gradient_reversal(x, 0.7).data, x.data)

    def test_backward_negates_and_scales(self):
        x = Tensor([2.0], requires_grad=True)
        (nn.gradient_reversal(x, alpha=0.5) * 3.0).backward()
        np.testing.assert_allclose(x.grad, [-1.5])  # -(0.5 * 3)

    def test_module_alpha_mutable(self):
        grl = nn.GradientReversal(alpha=1.0)
        x = Tensor([1.0], requires_grad=True)
        grl.alpha = 2.0
        grl(x).backward()
        np.testing.assert_allclose(x.grad, [-2.0])

    def test_adversarial_direction(self):
        """Minimizing a discriminator through GRL must *increase* its loss
        w.r.t. the upstream features (the adversarial effect)."""
        rng = np.random.default_rng(0)
        feature_layer = nn.Linear(4, 4, rng=rng)
        discriminator = nn.Linear(4, 1, rng=rng)
        x = Tensor(rng.standard_normal((8, 4)).astype(np.float32))
        y = np.array([0, 1] * 4, dtype=np.float32)

        features = feature_layer(x)
        logits = discriminator(nn.gradient_reversal(features, 1.0)).reshape(-1)
        loss = nn.binary_cross_entropy_with_logits(logits, y)
        loss.backward()
        grl_grad = feature_layer.weight.grad.copy()

        feature_layer.zero_grad()
        discriminator.zero_grad()
        features = feature_layer(x)
        logits = discriminator(features).reshape(-1)
        nn.binary_cross_entropy_with_logits(logits, y).backward()
        direct_grad = feature_layer.weight.grad

        np.testing.assert_allclose(grl_grad, -direct_grad, atol=1e-6)
