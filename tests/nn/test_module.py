"""Module system tests: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn


class _Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.linear = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = nn.Parameter(np.ones(2, dtype=np.float32))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_found(self):
        toy = _Toy()
        names = [n for n, _ in toy.named_parameters()]
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_num_parameters(self):
        toy = _Toy()
        assert toy.num_parameters() == 3 * 2 + 2 + 2

    def test_named_modules(self):
        toy = _Toy()
        names = [n for n, _ in toy.named_modules()]
        assert "" in names and "linear" in names

    def test_zero_grad_clears_all(self):
        toy = _Toy()
        out = toy(nn.Tensor(np.ones((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestModes:
    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        seq.eval()
        assert all(not layer.training for layer in seq)
        seq.train()
        assert all(layer.training for layer in seq)


class TestStateDict:
    def test_roundtrip(self):
        a, b = _Toy(), _Toy()
        b.linear.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.linear.weight.data, b.linear.weight.data)

    def test_strict_missing_raises(self):
        toy = _Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = _Toy()
        state = toy.state_dict()
        state["scale"] = np.ones(5, dtype=np.float32)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a, b = _Toy(), _Toy()
        a.scale.data[:] = 7.0
        path = str(tmp_path / "model.npz")
        a.save(path)
        b.load(path)
        np.testing.assert_allclose(b.scale.data, 7.0)

    def test_state_dict_copies(self):
        toy = _Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert toy.scale.data[0] != 99.0


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        out = seq(nn.Tensor(np.ones((5, 3), dtype=np.float32)))
        assert out.shape == (5, 2)
        assert len(seq) == 3

    def test_modulelist_registers(self):
        layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))
        assert len(layers) == 3
        assert len(layers.parameters()) == 6
        assert layers[0] is list(iter(layers))[0]

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestMissingSuperInit:
    def test_submodule_assignment_raises(self):
        class Bad(nn.Module):
            def __init__(self):
                self.linear = nn.Linear(2, 2)

        with pytest.raises(RuntimeError, match=r"super\(\)\.__init__\(\)"):
            Bad()

    def test_parameter_assignment_raises(self):
        class Bad(nn.Module):
            def __init__(self):
                self.scale = nn.Parameter(np.ones(2, dtype=np.float32))

        with pytest.raises(RuntimeError, match=r"before Module.__init__"):
            Bad()

    def test_plain_attributes_still_allowed(self):
        # Non-module attributes don't need the registries, so assigning
        # them first is legal (if discouraged).
        class Odd(nn.Module):
            def __init__(self):
                self.count = 3
                super().__init__()
                self.linear = nn.Linear(2, 2)

        assert Odd().count == 3
