"""Recurrent layer tests: LSTM, GRU, BiLSTM."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor

from ..helpers import check_gradients


def _input(batch=3, seq=5, dim=4, seed=0):
    return np.random.default_rng(seed).standard_normal((batch, seq, dim)).astype(np.float32)


class TestLSTM:
    def test_shapes(self):
        lstm = nn.LSTM(4, 6, num_layers=2, rng=np.random.default_rng(0))
        outputs, hidden = lstm(Tensor(_input()))
        assert outputs.shape == (3, 5, 6)
        assert hidden.shape == (3, 6)

    def test_last_output_equals_hidden(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        outputs, hidden = lstm(Tensor(_input()))
        np.testing.assert_allclose(outputs.data[:, -1, :], hidden.data)

    def test_state_depends_on_history(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(1))
        x = _input(seed=2)
        x2 = x.copy()
        x2[:, 0, :] += 5.0  # perturb first step; final state must change
        _, h1 = lstm(Tensor(x))
        _, h2 = lstm(Tensor(x2))
        assert not np.allclose(h1.data, h2.data, atol=1e-4)

    def test_gradients(self):
        lstm = nn.LSTM(3, 4, rng=np.random.default_rng(3))
        check_gradients(lambda x: (lstm(x)[1] ** 2.0).sum(), (2, 3, 3), atol=5e-2)

    def test_forget_bias_initialized_to_one(self):
        lstm = nn.LSTM(3, 4, rng=np.random.default_rng(0))
        cell = lstm.cells[0]
        np.testing.assert_allclose(cell.bias.data[4:8], 1.0)


class TestGRU:
    def test_shapes(self):
        gru = nn.GRU(4, 6, num_layers=2, rng=np.random.default_rng(0))
        outputs, hidden = gru(Tensor(_input()))
        assert outputs.shape == (3, 5, 6)
        assert hidden.shape == (3, 6)

    def test_bounded_activations(self):
        gru = nn.GRU(4, 6, rng=np.random.default_rng(0))
        outputs, _ = gru(Tensor(_input(seed=4) * 10))
        assert np.all(np.abs(outputs.data) <= 1.0 + 1e-5)

    def test_gradients(self):
        gru = nn.GRU(3, 4, rng=np.random.default_rng(5))
        check_gradients(lambda x: (gru(x)[1] ** 2.0).sum(), (2, 3, 3), atol=5e-2)


class TestBiLSTM:
    def test_output_concatenates_directions(self):
        bilstm = nn.BiLSTM(4, 6, rng=np.random.default_rng(0))
        out = bilstm(Tensor(_input()))
        assert out.shape == (3, 5, 12)

    def test_backward_direction_sees_future(self):
        bilstm = nn.BiLSTM(4, 6, rng=np.random.default_rng(1))
        x = _input(seed=6)
        x2 = x.copy()
        x2[:, -1, :] += 5.0  # perturb the last step
        out1 = bilstm(Tensor(x)).data
        out2 = bilstm(Tensor(x2)).data
        # Forward half at t=0 unaffected; backward half at t=0 must change.
        np.testing.assert_allclose(out1[:, 0, :6], out2[:, 0, :6], atol=1e-5)
        assert not np.allclose(out1[:, 0, 6:], out2[:, 0, 6:], atol=1e-4)

    def test_gradients(self):
        bilstm = nn.BiLSTM(3, 3, rng=np.random.default_rng(7))
        check_gradients(lambda x: (bilstm(x) ** 2.0).sum(), (2, 3, 3), atol=5e-2)
