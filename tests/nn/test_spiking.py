"""Spiking (LIF) layer tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.spiking import spike_function
from repro.nn.tensor import Tensor


class TestSpikeFunction:
    def test_forward_is_heaviside(self):
        m = Tensor([0.5, 1.0, 1.5])
        out = spike_function(m, threshold=1.0)
        np.testing.assert_allclose(out.data, [0.0, 1.0, 1.0])

    def test_surrogate_gradient_nonzero_near_threshold(self):
        m = Tensor([0.99], requires_grad=True)
        spike_function(m, threshold=1.0).sum().backward()
        assert m.grad is not None and m.grad[0] > 0.1

    def test_surrogate_gradient_small_far_from_threshold(self):
        m = Tensor([-5.0], requires_grad=True)
        spike_function(m, threshold=1.0).sum().backward()
        assert abs(m.grad[0]) < 1e-3


class TestLIFLayer:
    def _x(self, batch=2, seq=6, dim=4, scale=1.0, seed=0):
        rng = np.random.default_rng(seed)
        return Tensor((rng.standard_normal((batch, seq, dim)) * scale).astype(np.float32))

    def test_shapes(self):
        lif = nn.LIFLayer(4, 8, rng=np.random.default_rng(0))
        spikes, membrane = lif(self._x())
        assert spikes.shape == (2, 6, 8)
        assert membrane.shape == (2, 8)

    def test_spikes_are_binary(self):
        lif = nn.LIFLayer(4, 8, rng=np.random.default_rng(0))
        spikes, _ = lif(self._x(scale=3.0))
        assert set(np.unique(spikes.data)) <= {0.0, 1.0}

    def test_no_input_no_spikes(self):
        lif = nn.LIFLayer(4, 8, rng=np.random.default_rng(0))
        lif.projection.bias.data[:] = 0.0
        spikes, membrane = lif(Tensor(np.zeros((1, 5, 4), dtype=np.float32)))
        np.testing.assert_allclose(spikes.data, 0.0)
        np.testing.assert_allclose(membrane.data, 0.0)

    def test_strong_input_spikes(self):
        lif = nn.LIFLayer(4, 8, rng=np.random.default_rng(1))
        spikes, _ = lif(self._x(scale=10.0, seed=1))
        assert spikes.data.sum() > 0

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            nn.LIFLayer(4, 8, beta=0.0)
        with pytest.raises(ValueError):
            nn.LIFLayer(4, 8, beta=1.5)

    def test_trainable_end_to_end(self):
        """LIF + surrogate gradient must be able to fit a toy separation."""
        rng = np.random.default_rng(2)
        lif = nn.LIFLayer(4, 16, rng=rng)
        head = nn.Linear(32, 1, rng=rng)
        params = lif.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=1e-2)
        x = rng.standard_normal((24, 5, 4)).astype(np.float32)
        y = (x.mean(axis=(1, 2)) > 0).astype(np.float32)

        def forward():
            spikes, membrane = lif(Tensor(x))
            readout = nn.concatenate([spikes.mean(axis=1), membrane], axis=1)
            return nn.binary_cross_entropy_with_logits(head(readout).reshape(-1), y)

        initial = float(forward().data)
        for _ in range(40):
            loss = forward()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert float(forward().data) < initial * 0.8
