"""Loss function tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.tensor import Tensor

from ..helpers import check_gradients


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        targets = np.array([0.0, 1.0, 1.0], dtype=np.float32)
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        got = nn.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        np.testing.assert_allclose(got, expected, rtol=1e-5)

    def test_extreme_logits_stable(self):
        loss = nn.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0], dtype=np.float32)
        )
        assert np.isfinite(loss.item())
        np.testing.assert_allclose(loss.item(), 0.0, atol=1e-5)

    def test_pos_weight_scales_positive_term(self):
        logits = Tensor([0.0])
        one = nn.binary_cross_entropy_with_logits(logits, np.array([1.0], dtype=np.float32))
        five = nn.binary_cross_entropy_with_logits(
            logits, np.array([1.0], dtype=np.float32), pos_weight=5.0
        )
        np.testing.assert_allclose(five.item(), 5.0 * one.item(), rtol=1e-5)

    def test_pos_weight_leaves_negatives_alone(self):
        logits = Tensor([0.3])
        a = nn.binary_cross_entropy_with_logits(logits, np.array([0.0], dtype=np.float32))
        b = nn.binary_cross_entropy_with_logits(
            logits, np.array([0.0], dtype=np.float32), pos_weight=7.0
        )
        np.testing.assert_allclose(a.item(), b.item())

    def test_gradients(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        check_gradients(
            lambda x: nn.binary_cross_entropy_with_logits(x, targets), (4,)
        )

    @given(st.floats(-5, 5), st.integers(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, logit, label):
        loss = nn.binary_cross_entropy_with_logits(
            Tensor([logit]), np.array([float(label)], dtype=np.float32)
        )
        assert loss.item() >= -1e-6


class TestBCEOnProbabilities:
    def test_perfect_prediction_near_zero(self):
        loss = nn.binary_cross_entropy(Tensor([0.999999]), np.array([1.0], dtype=np.float32))
        assert loss.item() < 1e-3

    def test_clipping_prevents_infinity(self):
        loss = nn.binary_cross_entropy(Tensor([0.0]), np.array([1.0], dtype=np.float32))
        assert np.isfinite(loss.item())


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((5, 4), dtype=np.float32))
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3, 0]))
        np.testing.assert_allclose(loss.item(), np.log(4), rtol=1e-5)

    def test_confident_correct_near_zero(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-4

    def test_gradients(self):
        labels = np.array([0, 2, 1])
        check_gradients(lambda x: nn.cross_entropy(x, labels), (3, 4))

    def test_nll_consistent_with_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal((4, 5)).astype(np.float32))
        labels = np.array([0, 1, 2, 3])
        ce = nn.cross_entropy(logits, labels).item()
        nll = nn.nll_loss(logits.log_softmax(axis=-1), labels).item()
        np.testing.assert_allclose(ce, nll, rtol=1e-5)


class TestMSE:
    def test_zero_for_equal(self):
        x = Tensor([1.0, 2.0])
        assert nn.mse_loss(x, np.array([1.0, 2.0], dtype=np.float32)).item() == 0.0

    def test_value(self):
        loss = nn.mse_loss(Tensor([0.0, 2.0]), np.array([1.0, 0.0], dtype=np.float32))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_gradients(self):
        targets = np.array([0.5, -0.5, 1.0], dtype=np.float32)
        check_gradients(lambda x: nn.mse_loss(x, targets), (3,))
