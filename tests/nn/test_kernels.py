"""Fused-kernel parity tests.

Every fused node (LSTM/GRU BPTT, BiLSTM, SDPA attention, losses) must
match the seed per-timestep/per-primitive composition in both forward
values and gradients, and pass numeric gradcheck on its hand-written
backward.  The fused LSTM groups ``(x W_i + b) + h W_h`` where the cell
computes ``x W_i + h W_h + b``, so comparisons use allclose tolerances
rather than exact equality.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import kernels
from repro.nn.tensor import Tensor

from ..helpers import check_gradients

_RTOL = 1e-4
_ATOL = 1e-5


def _input(batch=3, seq=5, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, seq, dim)).astype(np.float32)


def _run_module(factory, x_data, fused):
    """Build a fresh module (same init rng), run forward+backward once."""
    with nn.use_fused_kernels(fused):
        module = factory()
        x = Tensor(x_data.copy(), requires_grad=True)
        out = module(x)
        outputs = out[0] if isinstance(out, tuple) else out
        ((outputs * outputs).sum()).backward()
        param_grads = [p.grad.copy() for p in module.parameters()]
    return outputs.data.copy(), x.grad.copy(), param_grads


def _assert_parity(factory, x_data):
    fused_out, fused_dx, fused_grads = _run_module(factory, x_data, fused=True)
    seed_out, seed_dx, seed_grads = _run_module(factory, x_data, fused=False)
    np.testing.assert_allclose(fused_out, seed_out, rtol=_RTOL, atol=_ATOL)
    np.testing.assert_allclose(fused_dx, seed_dx, rtol=_RTOL, atol=_ATOL)
    assert len(fused_grads) == len(seed_grads)
    for got, want in zip(fused_grads, seed_grads):
        np.testing.assert_allclose(got, want, rtol=_RTOL, atol=1e-4)


class TestFusedSwitch:
    def test_default_enabled(self):
        assert nn.fused_kernels_enabled()

    def test_set_returns_previous(self):
        previous = nn.set_fused_kernels(False)
        try:
            assert previous is True
            assert not nn.fused_kernels_enabled()
        finally:
            nn.set_fused_kernels(previous)

    def test_context_manager_restores(self):
        with nn.use_fused_kernels(False):
            assert not nn.fused_kernels_enabled()
            with nn.use_fused_kernels(True):
                assert nn.fused_kernels_enabled()
            assert not nn.fused_kernels_enabled()
        assert nn.fused_kernels_enabled()


class TestRecurrentParity:
    def test_lstm_single_layer(self):
        _assert_parity(
            lambda: nn.LSTM(4, 6, rng=np.random.default_rng(7)), _input(dim=4)
        )

    def test_lstm_multi_layer(self):
        _assert_parity(
            lambda: nn.LSTM(4, 5, num_layers=2, rng=np.random.default_rng(11)),
            _input(dim=4, seed=1),
        )

    def test_gru_single_layer(self):
        _assert_parity(
            lambda: nn.GRU(4, 6, rng=np.random.default_rng(3)), _input(dim=4, seed=2)
        )

    def test_gru_multi_layer(self):
        _assert_parity(
            lambda: nn.GRU(4, 5, num_layers=2, rng=np.random.default_rng(5)),
            _input(dim=4, seed=3),
        )

    def test_bilstm(self):
        _assert_parity(
            lambda: nn.BiLSTM(4, 5, rng=np.random.default_rng(9)), _input(dim=4, seed=4)
        )

    def test_lstm_seq_len_one(self):
        _assert_parity(
            lambda: nn.LSTM(3, 4, rng=np.random.default_rng(2)),
            _input(batch=2, seq=1, dim=3, seed=5),
        )

    def test_last_hidden_matches_outputs(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        outputs, last = lstm(Tensor(_input(dim=4)))
        np.testing.assert_allclose(last.data, outputs.data[:, -1, :])


class TestRecurrentGradcheck:
    def test_lstm(self):
        lstm = nn.LSTM(3, 3, rng=np.random.default_rng(0))
        check_gradients(lambda x: (lstm(x)[1] ** 2.0).sum(), (2, 3, 3), atol=5e-2)

    def test_lstm_full_sequence_loss(self):
        lstm = nn.LSTM(3, 3, rng=np.random.default_rng(1))
        check_gradients(lambda x: (lstm(x)[0] ** 2.0).sum(), (2, 3, 3), atol=5e-2)

    def test_gru(self):
        gru = nn.GRU(3, 3, rng=np.random.default_rng(0))
        check_gradients(lambda x: (gru(x)[1] ** 2.0).sum(), (2, 3, 3), atol=5e-2)

    def test_bilstm(self):
        bilstm = nn.BiLSTM(3, 2, rng=np.random.default_rng(0))
        check_gradients(lambda x: (bilstm(x) ** 2.0).sum(), (2, 3, 3), atol=5e-2)


class TestRecurrentInference:
    def test_no_grad_returns_constant(self):
        lstm = nn.LSTM(4, 6, rng=np.random.default_rng(0))
        with nn.no_grad():
            outputs, last = lstm(Tensor(_input(dim=4), requires_grad=True))
        assert not outputs.requires_grad
        assert outputs._backward is None

    def test_constant_input_returns_constant(self):
        gru = nn.GRU(4, 6, rng=np.random.default_rng(0))
        for p in gru.parameters():
            p.requires_grad = False
        outputs, _ = gru(Tensor(_input(dim=4)))
        assert not outputs.requires_grad


class TestFeedForwardParity:
    def test_linear(self):
        _assert_parity(
            lambda: nn.Linear(4, 3, rng=np.random.default_rng(1)), _input(dim=4)
        )

    def test_linear_no_bias(self):
        _assert_parity(
            lambda: nn.Linear(4, 3, bias=False, rng=np.random.default_rng(2)),
            _input(dim=4, seed=1),
        )

    def test_linear_2d_input(self):
        _assert_parity(
            lambda: nn.Linear(5, 2, rng=np.random.default_rng(3)),
            np.random.default_rng(9).standard_normal((6, 5)).astype(np.float32),
        )

    def test_layer_norm(self):
        _assert_parity(lambda: nn.LayerNorm(4), _input(dim=4, seed=2))

    def test_linear_gradcheck(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        check_gradients(lambda x: (layer(x) ** 2.0).sum(), (2, 4, 3), atol=5e-2)

    def test_layer_norm_gradcheck(self):
        norm = nn.LayerNorm(4)
        # Non-trivial affine so gamma/beta participate in the backward.
        norm.gamma.data[:] = np.linspace(0.5, 1.5, 4, dtype=np.float32)
        norm.beta.data[:] = 0.3
        check_gradients(lambda x: (norm(x) ** 2.0).sum(), (2, 3, 4), atol=5e-2)

    def test_gelu(self):
        _assert_parity(lambda: nn.GELU(), _input(dim=4, seed=3))

    def test_gelu_gradcheck(self):
        gelu = nn.GELU()
        check_gradients(lambda x: (gelu(x) ** 2.0).sum(), (3, 4), atol=5e-2)

    def test_dropout_rng_parity(self):
        """Fused dropout consumes the identical RNG draw as the seed mul."""
        x_data = _input(dim=4, seed=4)
        results = {}
        for fused in (True, False):
            with nn.use_fused_kernels(fused):
                layer = nn.Dropout(0.3, rng=np.random.default_rng(5))
                layer.train()
                x = Tensor(x_data.copy(), requires_grad=True)
                out = layer(x)
                ((out * out).sum()).backward()
                results[fused] = (out.data.copy(), x.grad.copy())
        np.testing.assert_allclose(results[True][0], results[False][0],
                                   rtol=_RTOL, atol=_ATOL)
        np.testing.assert_allclose(results[True][1], results[False][1],
                                   rtol=_RTOL, atol=_ATOL)

    def test_dropout_eval_identity(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(_input(dim=4))
        assert layer(x) is x


class TestGaussianLogLikelihoodParity:
    def _run(self, fused):
        from repro.core.club import CLUBEstimator

        rng = np.random.default_rng(10)
        u_data = rng.standard_normal((6, 5)).astype(np.float32)
        s_data = rng.standard_normal((6, 5)).astype(np.float32)
        with nn.use_fused_kernels(fused):
            club = CLUBEstimator(5, 5, hidden_dim=8, rng=np.random.default_rng(1))
            u = Tensor(u_data, requires_grad=True)
            s = Tensor(s_data, requires_grad=True)
            loss = club.learning_loss(u, s)
            loss.backward()
            grads = [p.grad.copy() for p in club.parameters()]
        return float(loss.data), u.grad.copy(), s.grad.copy(), grads

    def test_club_learning_loss_parity(self):
        fused = self._run(True)
        seed = self._run(False)
        np.testing.assert_allclose(fused[0], seed[0], rtol=1e-5)
        np.testing.assert_allclose(fused[1], seed[1], rtol=_RTOL, atol=1e-4)
        np.testing.assert_allclose(fused[2], seed[2], rtol=_RTOL, atol=1e-4)
        for got, want in zip(fused[3], seed[3]):
            np.testing.assert_allclose(got, want, rtol=_RTOL, atol=1e-4)

    def test_gradcheck_each_input(self):
        rng = np.random.default_rng(2)
        mu = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        logvar = Tensor((rng.standard_normal((4, 3)) * 0.3).astype(np.float32),
                        requires_grad=True)
        check_gradients(
            lambda s: kernels.gaussian_log_likelihood(s, mu, logvar).sum(),
            (4, 3), atol=5e-2,
        )
        s = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        check_gradients(
            lambda m: kernels.gaussian_log_likelihood(s, m, logvar).sum(),
            (4, 3), atol=5e-2,
        )
        check_gradients(
            lambda lv: kernels.gaussian_log_likelihood(s, mu, lv).sum(),
            (4, 3), atol=5e-2,
        )


class TestAttentionParity:
    def _run(self, fused, dropout=0.0, train=False, mask=None, seed=0):
        x_data = _input(batch=2, seq=4, dim=8, seed=6)
        with nn.use_fused_kernels(fused):
            mha = nn.MultiHeadAttention(8, 2, dropout=dropout,
                                        rng=np.random.default_rng(seed))
            mha.train() if train else mha.eval()
            x = Tensor(x_data, requires_grad=True)
            out = mha(x, mask=mask)
            ((out * out).sum()).backward()
            grads = [p.grad.copy() for p in mha.parameters()]
        return out.data.copy(), x.grad.copy(), grads

    def _assert_close(self, a, b, atol=_ATOL):
        for got, want in zip(a, b):
            np.testing.assert_allclose(got, want, rtol=_RTOL, atol=atol)

    def test_eval_parity(self):
        self._assert_close(self._run(True)[:2], self._run(False)[:2])

    def test_masked_parity(self):
        mask = np.array([[True, True, False, True], [True, False, True, True]])
        fused = self._run(True, mask=mask)
        seed = self._run(False, mask=mask)
        self._assert_close(fused[:2], seed[:2])
        # Masked-position grads are ~0 with path-dependent fp residue;
        # compare them on an absolute scale (values are O(10)).
        self._assert_close(fused[2], seed[2], atol=1e-3)

    def test_dropout_rng_parity(self):
        """Same dropout draw (RNG stream) whether fused or not."""
        fused = self._run(True, dropout=0.4, train=True, seed=12)
        seed = self._run(False, dropout=0.4, train=True, seed=12)
        self._assert_close(fused[:2], seed[:2])
        self._assert_close(fused[2], seed[2], atol=1e-3)

    def test_gradcheck(self):
        mha = nn.MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        mha.eval()
        check_gradients(lambda x: (mha(x) ** 2.0).sum(), (2, 3, 8), atol=5e-2)

    def test_raw_kernel_gradcheck(self):
        k = Tensor(_input(batch=2, seq=3, dim=4, seed=7), requires_grad=True)
        v = Tensor(_input(batch=2, seq=3, dim=4, seed=8), requires_grad=True)
        check_gradients(
            lambda q: (kernels.attention(q, k, v, 0.5) ** 2.0).sum(),
            (2, 3, 4), atol=5e-2,
        )


class TestLossParity:
    def test_bce_with_logits(self):
        # No logit sits exactly at 0: the seed abs/relu composition and the
        # closed-form derivative pick different subgradients at the kink.
        logits_data = np.array([-2.0, -0.5, 0.25, 0.7, 3.0], dtype=np.float32)
        targets = np.array([0.0, 1.0, 1.0, 0.0, 1.0], dtype=np.float32)
        results = {}
        for fused in (True, False):
            with nn.use_fused_kernels(fused):
                logits = Tensor(logits_data.copy(), requires_grad=True)
                loss = nn.binary_cross_entropy_with_logits(logits, targets, pos_weight=3.0)
                loss.backward()
                results[fused] = (float(loss.data), logits.grad.copy())
        np.testing.assert_allclose(results[True][0], results[False][0], rtol=1e-6)
        np.testing.assert_allclose(results[True][1], results[False][1],
                                   rtol=_RTOL, atol=_ATOL)

    def test_bce_grad_tracking_targets_falls_back(self):
        """Fused path treats targets as constant, so grad-tracked targets
        must route through the seed composition (and get gradients)."""
        logits = Tensor(np.array([0.3, -1.0], dtype=np.float32), requires_grad=True)
        targets = Tensor(np.array([1.0, 0.0], dtype=np.float32), requires_grad=True)
        loss = nn.binary_cross_entropy_with_logits(logits, targets)
        loss.backward()
        assert targets.grad is not None
        assert logits.grad is not None

    def test_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits_data = rng.standard_normal((6, 4)).astype(np.float32)
        ids = rng.integers(0, 4, size=6)
        results = {}
        for fused in (True, False):
            with nn.use_fused_kernels(fused):
                logits = Tensor(logits_data.copy(), requires_grad=True)
                loss = nn.cross_entropy(logits, ids)
                loss.backward()
                results[fused] = (float(loss.data), logits.grad.copy())
        np.testing.assert_allclose(results[True][0], results[False][0], rtol=1e-6)
        np.testing.assert_allclose(results[True][1], results[False][1],
                                   rtol=_RTOL, atol=_ATOL)

    def test_bce_gradcheck(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        check_gradients(
            lambda x: kernels.bce_with_logits(x, targets, pos_weight=2.0), (4,)
        )

    def test_cross_entropy_gradcheck(self):
        ids = np.array([0, 2, 1], dtype=np.int64)
        check_gradients(lambda x: kernels.cross_entropy(x, ids), (3, 3))

    def test_loss_no_grad(self):
        with nn.no_grad():
            loss = kernels.cross_entropy(
                Tensor(np.zeros((2, 3), dtype=np.float32), requires_grad=True),
                np.array([0, 1]),
            )
        assert not loss.requires_grad
