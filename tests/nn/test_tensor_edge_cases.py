"""Tensor edge cases: broadcasting corners, axes handling, dtype discipline."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, stack

from ..helpers import check_gradients


class TestBroadcastingCorners:
    def test_scalar_times_matrix_gradient(self):
        scale = Tensor([2.0], requires_grad=True)
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        (scale * x).sum().backward()
        np.testing.assert_allclose(scale.grad, [12.0])

    def test_row_and_column_broadcast(self):
        row = Tensor(np.ones((1, 4), dtype=np.float32), requires_grad=True)
        col = Tensor(np.ones((3, 1), dtype=np.float32), requires_grad=True)
        (row + col).sum().backward()
        np.testing.assert_allclose(row.grad, np.full((1, 4), 3.0))
        np.testing.assert_allclose(col.grad, np.full((3, 1), 4.0))

    def test_leading_axis_broadcast(self):
        bias = Tensor(np.ones(5, dtype=np.float32), requires_grad=True)
        x = Tensor(np.ones((2, 3, 5), dtype=np.float32))
        (x * bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(5, 6.0))

    def test_division_broadcast_gradcheck(self):
        denom = Tensor(np.array([2.0, 4.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda x: (x / denom).sum(), (3, 2))


class TestAxesHandling:
    def test_negative_axis_sum(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        x.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_tuple_axis_sum(self):
        x = Tensor(np.ones((2, 3, 4), dtype=np.float32))
        assert x.sum(axis=(0, 2)).shape == (3,)
        np.testing.assert_allclose(x.sum(axis=(0, 2)).data, np.full(3, 8.0))

    def test_keepdims_gradient(self):
        check_gradients(lambda x: (x - x.mean(axis=1, keepdims=True)).abs().sum(),
                        (3, 4), atol=5e-2)

    def test_swapaxes_gradient(self):
        coefficients = Tensor(np.random.default_rng(0).standard_normal((3, 2, 4)).astype(np.float32))
        check_gradients(lambda x: (x.swapaxes(0, 1) * coefficients).sum(), (2, 3, 4))


class TestDtypeDiscipline:
    def test_float64_input_cast_to_float32(self):
        t = Tensor(np.ones(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_list_input(self):
        assert Tensor([[1, 2], [3, 4]]).dtype == np.float32

    def test_grad_matches_data_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad.dtype == np.float32


class TestContainers:
    def test_concat_gradient_partition(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * Tensor(np.arange(10, dtype=np.float32).reshape(2, 5))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_stack_axis1(self):
        a = Tensor(np.zeros(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float32))
        out = stack([a, b], axis=1)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out.data[:, 1], 1.0)

    def test_len_and_item(self):
        assert len(Tensor(np.zeros((4, 2), dtype=np.float32))) == 4
        assert Tensor([7.5]).item() == 7.5

    def test_repr_mentions_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestErrorPaths:
    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_shape_mismatch_matmul(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 3), dtype=np.float32)) @ Tensor(np.ones((2, 3), dtype=np.float32))
