"""Layer tests: Linear, Embedding, LayerNorm, Dropout, activations."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

from ..helpers import check_gradients


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((7, 4), dtype=np.float32))).shape == (7, 3)

    def test_batched_3d_input(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((2, 5, 4), dtype=np.float32))).shape == (2, 5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_correct(self):
        layer = nn.Linear(2, 1, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[2.0, 3.0]], dtype=np.float32)
        layer.bias.data = np.array([1.0], dtype=np.float32)
        out = layer(Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[6.0]])

    def test_gradients(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(1))
        check_gradients(lambda x: (layer(x) ** 2.0).sum(), (4, 3))


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_for_repeated_ids(self):
        emb = nn.Embedding(3, 2, rng=np.random.default_rng(0))
        out = emb(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestLayerNorm:
    def test_normalizes(self):
        ln = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32) * 5 + 3)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_learnable(self):
        ln = nn.LayerNorm(4)
        assert {p.shape for p in ln.parameters()} == {(4,)}

    def test_gradients(self):
        ln = nn.LayerNorm(5)
        check_gradients(lambda x: (ln(x) ** 2.0).sum(), (3, 5), atol=3e-2)


class TestDropout:
    def test_eval_is_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_scales_kept_units(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = drop(x).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # Expectation preserved within sampling noise.
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_p_identity_in_train(self):
        drop = nn.Dropout(0.0)
        x = Tensor(np.ones((3, 3), dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)


class TestActivations:
    def test_relu_module(self):
        np.testing.assert_allclose(nn.ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = nn.Sigmoid()(Tensor(np.linspace(-10, 10, 21).astype(np.float32))).data
        assert np.all((out > 0) & (out < 1))

    def test_tanh_odd(self):
        x = np.linspace(-3, 3, 7).astype(np.float32)
        out = nn.Tanh()(Tensor(x)).data
        np.testing.assert_allclose(out, -out[::-1], atol=1e-6)

    def test_gelu_close_to_identity_for_large_positive(self):
        out = nn.GELU()(Tensor([5.0])).data
        np.testing.assert_allclose(out, [5.0], atol=1e-3)

    def test_gelu_gradients(self):
        gelu = nn.GELU()
        check_gradients(lambda x: gelu(x).sum(), (6,))
