"""Op profiler tests: attribution, nesting self-time, backward timing,
zero recording when disabled, obs publishing and the ranked table."""

import numpy as np

from repro import nn
from repro.nn.profiler import OpProfiler, active_profiler, profiled_op
from repro.nn.tensor import Tensor
from repro.obs import MetricsRegistry


def _fake_clock(step=1.0):
    """Deterministic clock: every read advances by ``step`` seconds."""
    state = {"now": 0.0}

    def clock():
        value = state["now"]
        state["now"] += step
        return value

    return clock


def _tensor(shape=(3, 4), seed=0, requires_grad=False):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32),
                  requires_grad=requires_grad)


class TestActivation:
    def test_inactive_by_default(self):
        assert active_profiler() is None

    def test_context_installs_and_restores(self):
        profiler = OpProfiler()
        with profiler:
            assert active_profiler() is profiler
        assert active_profiler() is None

    def test_nested_profilers_restore_previous(self):
        outer, inner = OpProfiler(), OpProfiler()
        with outer:
            with inner:
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_no_recording_when_disabled(self):
        profiler = OpProfiler()
        with profiler:
            pass
        (_tensor() * 2.0).sum()  # runs after exit: must not be recorded
        assert profiler.stats == {}


class TestAttribution:
    def test_op_names_and_calls(self):
        a, b = _tensor(seed=1), _tensor(seed=2)
        with OpProfiler() as profiler:
            a.matmul(b.transpose((1, 0)))
            a + b
            a + b
        assert profiler.stats["matmul"].calls == 1
        assert profiler.stats["add"].calls == 2
        assert profiler.stats["transpose"].calls == 1

    def test_output_bytes(self):
        x = _tensor(shape=(4, 8))
        with OpProfiler() as profiler:
            x * 2.0
        assert profiler.stats["mul"].output_bytes == 4 * 8 * 4  # float32

    def test_nested_self_time(self):
        """``mean`` = ``sum`` + ``mul``: child time lands on the children
        and is subtracted from the parent's self time."""
        x = _tensor()
        with OpProfiler(clock=_fake_clock()) as profiler:
            x.mean()
        mean = profiler.stats["mean"]
        children = profiler.stats["sum"], profiler.stats["mul"]
        # Each clock read ticks 1s, two reads per op: children take 1s each.
        for child in children:
            assert child.forward_seconds == 1.0
            assert child.forward_self_seconds == 1.0
        assert mean.forward_seconds == 5.0  # spans both children + own reads
        assert mean.forward_self_seconds == mean.forward_seconds - 2.0

    def test_fused_kernel_recorded_as_one_op(self):
        lstm = nn.LSTM(3, 4, rng=np.random.default_rng(0))
        with OpProfiler() as profiler:
            lstm(_tensor(shape=(2, 5, 3)))
        assert profiler.stats["lstm_layer"].calls == 1
        # The recurrence is inside the node: no per-timestep sigmoid/tanh ops.
        assert "sigmoid" not in profiler.stats


class TestBackward:
    def test_backward_calls_and_time(self):
        x = _tensor(requires_grad=True)
        with OpProfiler(clock=_fake_clock()) as profiler:
            ((x * x).sum()).backward()
        assert profiler.stats["mul"].backward_calls == 1
        assert profiler.stats["sum"].backward_calls == 1
        assert profiler.stats["mul"].backward_seconds > 0.0

    def test_backward_attributed_to_creating_op(self):
        lstm = nn.LSTM(3, 4, rng=np.random.default_rng(0))
        x = _tensor(shape=(2, 5, 3), requires_grad=True)
        with OpProfiler() as profiler:
            outputs, _ = lstm(x)
            ((outputs * outputs).sum()).backward()
        assert profiler.stats["lstm_layer"].backward_calls == 1
        assert x.grad is not None

    def test_no_backward_without_call(self):
        x = _tensor(requires_grad=True)
        with OpProfiler() as profiler:
            x * 2.0
        assert profiler.stats["mul"].backward_calls == 0


class TestReporting:
    def _profiled(self):
        x = _tensor(requires_grad=True)
        with OpProfiler(clock=_fake_clock()) as profiler:
            ((x * x).sum()).backward()
        return profiler

    def test_ranked_hottest_first(self):
        profiler = self._profiled()
        ranked = profiler.ranked()
        hot = [s.hot_seconds for s in ranked]
        assert hot == sorted(hot, reverse=True)

    def test_table_contains_ops_and_header(self):
        table = self._profiled().table()
        assert "op" in table and "fwd self" in table and "bwd total" in table
        assert "mul" in table and "sum" in table
        assert "total (self)" in table

    def test_table_limit(self):
        table = self._profiled().table(limit=1)
        # header + rule + 1 row + rule + total row
        assert len(table.splitlines()) == 5

    def test_as_rows_json_able(self):
        rows = self._profiled().as_rows()
        assert {row["op"] for row in rows} == {"mul", "sum"}
        assert all(isinstance(row["calls"], int) for row in rows)

    def test_publish_to_registry(self):
        profiler = self._profiled()
        registry = MetricsRegistry()
        profiler.publish(registry)
        assert registry.counter("nn.profile.mul.calls").value == 1.0
        assert registry.counter("nn.profile.mul.backward_calls").value == 1.0
        assert registry.gauge("nn.profile.mul.forward_seconds").value > 0.0


class TestDecorator:
    def test_names_strip_dunders(self):
        @profiled_op
        def __frob__():
            return None

        assert __frob__.__profiled_op__ == "frob"

    def test_plain_function_untouched_when_inactive(self):
        calls = []

        @profiled_op
        def op(value):
            calls.append(value)
            return value

        assert op(3) == 3
        assert calls == [3]
