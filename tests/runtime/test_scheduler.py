"""Micro-batch scheduler: size trigger, latency trigger, chunk invariance."""

import pytest

from repro.runtime import MicroBatchScheduler, PendingWindow


def pending(system: str, index: int, enqueued_at: float = 0.0) -> PendingWindow:
    return PendingWindow(system=system, index=index, window=[],
                         pattern=(index,), enqueued_at=enqueued_at)


class TestSizeTrigger:
    def test_full_lane_flushes_exact_chunk(self):
        scheduler = MicroBatchScheduler(max_batch=4)
        for index in range(4):
            scheduler.add(pending("svc", index))
        (batch,) = scheduler.ready_batches(now=0.0)
        assert [p.index for p in batch] == [0, 1, 2, 3]
        assert len(scheduler) == 0

    def test_partial_lane_waits_without_latency_budget(self):
        scheduler = MicroBatchScheduler(max_batch=4)
        scheduler.add(pending("svc", 0))
        assert scheduler.ready_batches(now=1e9) == []
        assert len(scheduler) == 1

    def test_multiple_chunks_flush_in_arrival_order(self):
        scheduler = MicroBatchScheduler(max_batch=2)
        for index in range(6):
            scheduler.add(pending("svc", index))
        batches = scheduler.ready_batches(now=0.0)
        assert [[p.index for p in batch] for batch in batches] == \
            [[0, 1], [2, 3], [4, 5]]

    def test_lanes_are_per_system(self):
        scheduler = MicroBatchScheduler(max_batch=2)
        scheduler.add(pending("a", 0))
        scheduler.add(pending("b", 0))
        # Two half-full lanes: nothing is due even though 2 windows wait.
        assert scheduler.ready_batches(now=0.0) == []


class TestLatencyTrigger:
    def test_expired_lane_flushes_partial_remainder(self, fake_clock):
        scheduler = MicroBatchScheduler(max_batch=4, max_latency=0.5)
        scheduler.add(pending("svc", 0, enqueued_at=fake_clock()))
        scheduler.add(pending("svc", 1, enqueued_at=fake_clock()))
        assert scheduler.ready_batches(now=fake_clock()) == []
        fake_clock.advance(0.5)
        (batch,) = scheduler.ready_batches(now=fake_clock())
        assert [p.index for p in batch] == [0, 1]

    def test_expiry_flushes_full_chunks_before_the_partial(self, fake_clock):
        scheduler = MicroBatchScheduler(max_batch=2, max_latency=1.0)
        for index in range(5):
            scheduler.add(pending("svc", index, enqueued_at=fake_clock()))
        fake_clock.advance(2.0)
        batches = scheduler.ready_batches(now=fake_clock())
        # Chunk boundaries identical to what the size trigger would emit,
        # plus the timed-out remainder.
        assert [[p.index for p in batch] for batch in batches] == \
            [[0, 1], [2, 3], [4]]

    def test_oldest_deadline_tracks_earliest_head(self, fake_clock):
        scheduler = MicroBatchScheduler(max_batch=8, max_latency=0.25)
        assert scheduler.oldest_deadline() is None
        scheduler.add(pending("a", 0, enqueued_at=10.0))
        scheduler.add(pending("b", 0, enqueued_at=5.0))
        assert scheduler.oldest_deadline() == pytest.approx(5.25)

    def test_no_deadline_without_latency_budget(self):
        scheduler = MicroBatchScheduler(max_batch=8)
        scheduler.add(pending("a", 0, enqueued_at=10.0))
        assert scheduler.oldest_deadline() is None


class TestDrain:
    def test_drain_flushes_partials_in_system_order(self):
        scheduler = MicroBatchScheduler(max_batch=4)
        scheduler.add(pending("zeta", 0))
        scheduler.add(pending("alpha", 0))
        batches = scheduler.drain()
        assert [batch[0].system for batch in batches] == ["alpha", "zeta"]
        assert len(scheduler) == 0


class TestValidation:
    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch=4, max_latency=-1.0)

    def test_window_id_format(self):
        assert pending("svc", 7).window_id == "svc:7"
