"""Shard queue backpressure policies and shed accounting."""

import threading

import pytest

from repro.runtime import (
    OFFER_DROPPED, OFFER_FULL, OFFER_OK, OFFER_REJECTED, ShardQueue,
)


class TestAdmission:
    def test_fifo_order(self):
        queue = ShardQueue(10)
        for value in range(5):
            assert queue.try_offer(value) == OFFER_OK
        assert queue.poll(10) == [0, 1, 2, 3, 4]

    def test_block_policy_reports_full_without_shedding(self):
        queue = ShardQueue(2, policy="block")
        assert queue.try_offer("a") == OFFER_OK
        assert queue.try_offer("b") == OFFER_OK
        assert queue.try_offer("c") == OFFER_FULL
        assert queue.total_rejected == 0
        assert queue.total_dropped == 0
        assert queue.poll(10) == ["a", "b"]  # nothing was lost

    def test_reject_policy_sheds_the_new_record(self):
        queue = ShardQueue(2, policy="reject")
        queue.try_offer("a")
        queue.try_offer("b")
        assert queue.try_offer("c") == OFFER_REJECTED
        assert queue.total_rejected == 1
        assert queue.poll(10) == ["a", "b"]

    def test_drop_oldest_policy_evicts_the_head(self):
        queue = ShardQueue(2, policy="drop-oldest")
        queue.try_offer("a")
        queue.try_offer("b")
        assert queue.try_offer("c") == OFFER_DROPPED
        assert queue.total_dropped == 1
        assert queue.poll(10) == ["b", "c"]

    def test_offered_counter_counts_admissions(self):
        queue = ShardQueue(1, policy="reject")
        queue.try_offer("a")
        queue.try_offer("b")
        assert queue.total_offered == 2


class TestBlockingOffer:
    def test_offer_times_out_when_no_consumer(self):
        queue = ShardQueue(1, policy="block")
        queue.try_offer("a")
        assert queue.offer("b", timeout=0.01) == OFFER_FULL

    def test_offer_unblocks_when_consumer_polls(self):
        queue = ShardQueue(1, policy="block")
        queue.try_offer("a")
        admitted = []

        def producer():
            admitted.append(queue.offer("b", timeout=5.0))

        # lint: disable=direct-thread  (exercising the queue's blocking path)
        thread = threading.Thread(target=producer)
        thread.start()
        assert queue.poll_wait(1, timeout=1.0) == ["a"]
        thread.join(timeout=5.0)
        assert admitted == [OFFER_OK]
        assert queue.poll(10) == ["b"]


class TestPolling:
    def test_poll_respects_max_items(self):
        queue = ShardQueue(10)
        for value in range(6):
            queue.try_offer(value)
        assert queue.poll(4) == [0, 1, 2, 3]
        assert len(queue) == 2

    @pytest.mark.parametrize("bad", [0, -3])
    def test_poll_rejects_non_positive_max_items(self, bad):
        with pytest.raises(ValueError):
            ShardQueue(4).poll(bad)

    def test_peek_is_non_destructive(self):
        queue = ShardQueue(4)
        assert queue.peek() is None
        queue.try_offer("a")
        assert queue.peek() == "a"
        assert len(queue) == 1


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ShardQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown backpressure policy"):
            ShardQueue(4, policy="spill")
