"""Engine integration: shard invariance, backpressure, degradation."""

import time

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import (
    FlakyWorker, InferenceRuntime, SyntheticWorker, message_pattern,
    render_reports, report_sort_key,
)

from .conftest import FakeClock, multi_system_stream


def sync_runtime(shards: int = 1, worker_factory=None, **kwargs):
    factory = worker_factory or (lambda index: SyntheticWorker())
    kwargs.setdefault("registry", MetricsRegistry())
    return InferenceRuntime(factory, pattern_fn=message_pattern,
                            shards=shards, **kwargs)


def run_sync(runtime, records):
    for record in records:
        runtime.submit(record)
    reports = runtime.drain()
    reports.sort(key=report_sort_key)
    return reports


class TestShardInvariance:
    def test_output_identical_across_shard_counts(self):
        records = multi_system_stream(systems=6, lines=120)
        rendered = []
        stats = []
        for shards in (1, 2, 4):
            runtime = sync_runtime(shards, max_batch=4)
            rendered.append(render_reports(run_sync(runtime, records)))
            stats.append((runtime.stats.windows_seen,
                          runtime.stats.model_invocations))
        assert rendered[0] == rendered[1] == rendered[2]
        assert rendered[0]  # the stream does raise anomalies
        assert stats[0] == stats[1] == stats[2]

    def test_every_window_resolves_exactly_once(self):
        records = multi_system_stream(systems=3, lines=100)
        runtime = sync_runtime(2, max_batch=4)
        run_sync(runtime, records)
        latency = runtime.registry.metrics()["runtime.window_seconds"]
        assert latency.count == runtime.stats.windows_seen
        assert runtime.pending_windows() == 0

    def test_window_ids_are_stable_per_system_ordinals(self):
        records = multi_system_stream(systems=2, lines=60)
        runtime = sync_runtime(2, max_batch=4)
        reports = run_sync(runtime, records)
        for report in reports:
            system, _, ordinal = report.metadata["window_id"].rpartition(":")
            assert system == report.system
            assert ordinal.isdigit()


class TestBackpressure:
    """A slow consumer (expensive worker, tiny queues) under each policy."""

    def _run_threaded(self, policy: str):
        records = multi_system_stream(systems=1, lines=400)
        runtime = sync_runtime(
            1, worker_factory=lambda i: SyntheticWorker(
                cost=lambda n: time.sleep(0.01)),
            max_batch=4, queue_capacity=8, backpressure=policy,
            threaded=True, poll_interval=0.005,
        )
        runtime.start()
        for index, record in enumerate(records):
            runtime.submit(record)
            if index % 20 == 19:
                # Pace the producer so the consumer admits enough for
                # complete windows; the slow worker still falls behind.
                time.sleep(0.002)
        runtime.stop()
        return runtime, len(records)

    def test_block_policy_loses_nothing(self):
        runtime, total = self._run_threaded("block")
        queue = runtime.queues[0]
        assert queue.total_offered == total
        assert queue.total_rejected == 0
        assert queue.total_dropped == 0
        assert runtime.stats.records_rejected == 0
        assert runtime.stats.records_dropped == 0
        # Every record was windowed: (400 - 10) // 5 + 1 windows.
        assert runtime.stats.windows_seen == 79

    def test_reject_policy_sheds_and_counts(self):
        runtime, _total = self._run_threaded("reject")
        assert runtime.stats.records_rejected > 0
        assert runtime.queues[0].total_rejected == \
            runtime.stats.records_rejected
        assert runtime.stats.windows_seen > 0  # survivors still judged

    def test_drop_oldest_policy_sheds_and_counts(self):
        runtime, _total = self._run_threaded("drop-oldest")
        assert runtime.stats.records_dropped > 0
        assert runtime.queues[0].total_dropped == \
            runtime.stats.records_dropped
        assert runtime.stats.windows_seen > 0

    def test_sync_block_pumps_inline_instead_of_shedding(self):
        records = multi_system_stream(systems=1, lines=200)
        runtime = sync_runtime(1, max_batch=4, queue_capacity=4,
                               backpressure="block")
        reports = run_sync(runtime, records)
        assert runtime.stats.records_rejected == 0
        assert runtime.stats.records_dropped == 0
        assert runtime.stats.windows_seen == 39
        assert render_reports(reports) == render_reports(
            run_sync(sync_runtime(1, max_batch=4), records))


class TestGracefulDegradation:
    def test_unhealthy_shard_keeps_emitting_via_fallback(self):
        # svc-00..05 split onto both shards under the CRC32 router.
        records = multi_system_stream(systems=6, lines=120)
        runtime = sync_runtime(2, max_batch=4)
        runtime.shards[0].supervisor.force_unhealthy(cooldown=1e9)
        reports = run_sync(runtime, records)
        stats = runtime.stats
        assert stats.degraded_windows > 0
        assert stats.model_invocations > 0  # the healthy shard still scores
        assert stats.records_dropped == 0 and stats.records_rejected == 0
        # Degraded windows all resolved and are marked as such.
        degraded = [r for r in reports if r.metadata.get("degraded")]
        assert len(degraded) == stats.degraded_windows
        assert runtime.pending_windows() == 0

    def test_degraded_verdicts_are_not_remembered(self):
        records = multi_system_stream(systems=1, lines=150)
        runtime = sync_runtime(1, max_batch=4)
        runtime.shards[0].supervisor.force_unhealthy(cooldown=1e9)
        run_sync(runtime, records)
        libraries = runtime.shards[0].libraries.values()
        assert all(len(library) == 0 for library in libraries)

    def test_recovery_resumes_model_scoring(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        worker = FlakyWorker(SyntheticWorker())
        runtime = sync_runtime(
            1, worker_factory=lambda i: worker, max_batch=4,
            registry=registry, supervisor_options={"cooldown": 10.0},
        )
        runtime.shards[0].supervisor.force_unhealthy()
        first = multi_system_stream(systems=1, lines=120, seed=5)
        run_sync(runtime, first)
        assert runtime.stats.degraded_windows > 0
        assert runtime.stats.model_invocations == 0

        clock.advance(11.0)  # past the cooldown: next batch is the probe
        second = multi_system_stream(systems=1, lines=120, seed=9)
        run_sync(runtime, second)
        assert runtime.shards[0].supervisor.healthy
        assert runtime.stats.model_invocations > 0
        assert runtime.stats.worker_recoveries == 1


class TestThreadedMode:
    def test_threaded_finds_the_same_reports_as_sync(self):
        records = multi_system_stream(systems=4, lines=120)
        expected = render_reports(
            run_sync(sync_runtime(4, max_batch=4), records))

        runtime = sync_runtime(4, max_batch=4, threaded=True,
                               max_latency=0.01, poll_interval=0.005)
        runtime.start()
        for record in records:
            runtime.submit(record)
        reports = runtime.stop()
        reports.sort(key=report_sort_key)
        assert render_reports(reports) == expected
        assert runtime.shard_errors == []

    def test_mode_guards(self):
        runtime = sync_runtime(1)
        with pytest.raises(RuntimeError):
            runtime.start()
        threaded = sync_runtime(1, threaded=True)
        with pytest.raises(RuntimeError):
            threaded.pump()


class TestStats:
    def test_skip_rate_zero_before_any_window(self):
        runtime = sync_runtime(1)
        assert runtime.stats.model_skip_rate == 0.0

    def test_repetitive_stream_skips_model_calls(self):
        records = multi_system_stream(systems=1, lines=400)
        runtime = sync_runtime(1, max_batch=4)
        run_sync(runtime, records)
        stats = runtime.stats
        assert stats.library_hits + stats.model_invocations <= \
            stats.windows_seen
        assert 0.0 <= stats.model_skip_rate <= 1.0
