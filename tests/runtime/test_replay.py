"""Deterministic replay: shard-count invariance against OnlineService."""

import json

from repro.deploy import OnlineService
from repro.logs.generator import LogGenerator
from repro.runtime import (
    InferenceRuntime, SyntheticWorker, message_pattern, render_reports,
    replay_records, report_sort_key,
)

from .conftest import multi_system_stream


class TestRenderReports:
    def _reports(self):
        runtime = InferenceRuntime(
            lambda index: SyntheticWorker(), pattern_fn=message_pattern,
            shards=2, max_batch=4,
        )
        for record in multi_system_stream(systems=3, lines=120):
            runtime.submit(record)
        reports = runtime.drain()
        reports.sort(key=report_sort_key)
        return reports

    def test_renders_canonical_jsonl(self):
        reports = self._reports()
        rendered = render_reports(reports)
        lines = rendered.strip().splitlines()
        assert len(lines) == len(reports) > 0
        for line, report in zip(lines, reports):
            payload = json.loads(line)
            assert payload["system"] == report.system
            assert payload["window_id"] == report.metadata["window_id"]
            assert set(payload) == {"window_id", "system", "score",
                                    "threshold", "anomalous", "degraded"}

    def test_sort_key_orders_by_system_then_ordinal(self):
        reports = self._reports()
        keys = [report_sort_key(r) for r in reports]
        assert keys == sorted(keys)
        # Ordinals are numeric, not lexicographic: "svc:10" > "svc:9".
        systems = {r.system for r in reports}
        for system in systems:
            ordinals = [k[1] for k in keys if k[0] == system]
            assert all(isinstance(o, int) for o in ordinals)


class TestReplayRecords:
    def test_byte_identical_across_shard_counts(self, fitted_logsynergy):
        records = LogGenerator("thunderbird", seed=21,
                               repeat_probability=0.6).generate(900)
        rendered = set()
        for shards in (1, 2, 4):
            reports, _runtime = replay_records(
                fitted_logsynergy, records, shards=shards, max_batch=8)
            rendered.add(render_reports(reports))
        assert len(rendered) == 1

    def test_matches_online_service_process(self, fitted_logsynergy):
        records = LogGenerator("thunderbird", seed=22,
                               repeat_probability=0.6).generate(900)
        service = OnlineService(fitted_logsynergy)
        expected = sorted(service.process(records), key=report_sort_key)

        reports, _runtime = replay_records(fitted_logsynergy, records,
                                           shards=4, max_batch=16)
        anomalous = [r for r in reports if r.is_anomalous]
        assert render_reports(anomalous) == render_reports(expected)
