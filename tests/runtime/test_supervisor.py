"""Worker supervision: retries, health transitions, probes, recovery."""

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import (
    FlakyWorker, SyntheticWorker, WorkerSupervisor, PendingWindow,
)

from .conftest import entry


def batch_of(count: int = 2) -> list[PendingWindow]:
    return [PendingWindow(system="svc", index=i, window=[entry(f"msg {i}")],
                          pattern=(i,)) for i in range(count)]


def make_supervisor(worker, clock, **kwargs):
    sleeps = []
    registry = MetricsRegistry(clock=clock)
    supervisor = WorkerSupervisor(worker, clock=clock, sleep=sleeps.append,
                                  registry=registry, **kwargs)
    return supervisor, sleeps, registry


class TestRetries:
    def test_transient_failure_is_retried_with_backoff(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=2)
        supervisor, sleeps, registry = make_supervisor(
            worker, fake_clock, max_retries=2, backoff_base=0.05,
        )
        reports = supervisor.score_batch(batch_of())
        assert reports is not None and len(reports) == 2
        assert worker.calls == 3
        assert sleeps == [0.05, 0.1]  # exponential backoff
        assert registry.counter("runtime.worker_retries").value == 2
        assert supervisor.healthy

    def test_exhausted_retries_return_degraded(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=10)
        supervisor, _sleeps, registry = make_supervisor(
            worker, fake_clock, max_retries=1, unhealthy_after=3,
        )
        assert supervisor.score_batch(batch_of()) is None
        assert supervisor.healthy  # one bad batch is not yet unhealthy
        assert registry.counter("runtime.worker_failures").value == 2

    def test_rejects_negative_max_retries(self, fake_clock):
        with pytest.raises(ValueError):
            WorkerSupervisor(SyntheticWorker(), clock=fake_clock,
                             max_retries=-1, registry=MetricsRegistry())


class TestHealthStateMachine:
    def test_consecutive_bad_batches_mark_unhealthy(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=100)
        supervisor, _sleeps, registry = make_supervisor(
            worker, fake_clock, max_retries=0, unhealthy_after=2, cooldown=1.0,
        )
        assert supervisor.score_batch(batch_of()) is None
        assert supervisor.healthy
        assert supervisor.score_batch(batch_of()) is None
        assert not supervisor.healthy
        assert registry.counter("runtime.unhealthy_transitions").value == 1

    def test_unhealthy_short_circuits_until_cooldown(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=2)
        supervisor, _sleeps, _registry = make_supervisor(
            worker, fake_clock, max_retries=0, unhealthy_after=2, cooldown=5.0,
        )
        supervisor.score_batch(batch_of())
        supervisor.score_batch(batch_of())
        assert not supervisor.healthy
        calls_before = worker.calls
        assert supervisor.score_batch(batch_of()) is None
        assert worker.calls == calls_before  # worker was never touched

    def test_probe_recovers_after_cooldown(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=2)
        supervisor, _sleeps, registry = make_supervisor(
            worker, fake_clock, max_retries=0, unhealthy_after=2, cooldown=5.0,
        )
        supervisor.score_batch(batch_of())
        supervisor.score_batch(batch_of())
        fake_clock.advance(5.0)
        reports = supervisor.score_batch(batch_of())
        assert reports is not None
        assert supervisor.healthy
        assert registry.counter("runtime.worker_recoveries").value == 1

    def test_failed_probe_backs_the_cooldown_off(self, fake_clock):
        worker = FlakyWorker(SyntheticWorker(), failures=3)
        supervisor, _sleeps, _registry = make_supervisor(
            worker, fake_clock, max_retries=0, unhealthy_after=2, cooldown=1.0,
        )
        supervisor.score_batch(batch_of())
        supervisor.score_batch(batch_of())
        fake_clock.advance(1.0)
        assert supervisor.score_batch(batch_of()) is None  # probe fails
        fake_clock.advance(1.0)
        # Cooldown doubled: still inside the backed-off window.
        calls_before = worker.calls
        assert supervisor.score_batch(batch_of()) is None
        assert worker.calls == calls_before
        fake_clock.advance(1.0)  # now past the 2x cooldown
        assert supervisor.score_batch(batch_of()) is not None
        assert supervisor.healthy

    def test_force_unhealthy_degrades_immediately(self, fake_clock):
        supervisor, _sleeps, registry = make_supervisor(
            SyntheticWorker(), fake_clock, cooldown=10.0,
        )
        supervisor.force_unhealthy()
        assert not supervisor.healthy
        assert supervisor.score_batch(batch_of()) is None
        assert registry.counter("runtime.unhealthy_transitions").value == 1


class TestTimeoutAccounting:
    def test_slow_batches_keep_results_but_degrade_health(self, fake_clock):
        class SlowWorker:
            def __init__(self, clock):
                self.clock = clock
                self.inner = SyntheticWorker()

            def score_batch(self, batch):
                self.clock.advance(2.0)  # simulated slow inference
                return self.inner.score_batch(batch)

        supervisor, _sleeps, registry = make_supervisor(
            SlowWorker(fake_clock), fake_clock, timeout=1.0, unhealthy_after=2,
        )
        assert supervisor.score_batch(batch_of()) is not None  # late, not lost
        assert supervisor.healthy
        assert supervisor.score_batch(batch_of()) is not None
        assert not supervisor.healthy  # two overruns crossed the streak
        assert registry.counter("runtime.worker_timeouts").value == 2
