"""Weight broadcast: shared-memory round-trips, cleanup, npz fallback."""

import glob
import multiprocessing
import pickle

import numpy as np
import pytest

from repro.runtime import (
    WeightBroadcast, attach, pipeline_state, restore_pipeline,
)


def _shm_segments() -> set[str]:
    return set(glob.glob("/dev/shm/repro-bcast-*"))


def sample_arrays():
    rng = np.random.default_rng(7)
    return {
        "model/w": rng.standard_normal((5, 3)),
        "model/b": rng.standard_normal(3).astype(np.float32),
        "feat/sys/7": rng.standard_normal(16),
        # Odd sizes exercise the 64-byte alignment padding.
        "feat/sys/9": rng.standard_normal(13),
    }


class TestArenaRoundTrip:
    def test_same_process_round_trip_is_exact(self):
        arrays = sample_arrays()
        meta = {"config": {"seed": 0}, "note": "non-array state"}
        broadcast = WeightBroadcast(arrays, meta)
        try:
            attached = attach(broadcast.handle())
            assert attached.meta == meta
            assert set(attached.arrays) == set(arrays)
            for key, value in arrays.items():
                np.testing.assert_array_equal(attached.arrays[key], value)
                assert attached.arrays[key].dtype == value.dtype
            attached.close()
        finally:
            broadcast.unlink()

    def test_shared_memory_views_are_read_only(self):
        broadcast = WeightBroadcast(sample_arrays(), {})
        try:
            assert broadcast.via_shared_memory
            attached = attach(broadcast.handle())
            view = attached.arrays["model/w"]
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            attached.close()
        finally:
            broadcast.unlink()

    def test_handle_is_picklable(self):
        broadcast = WeightBroadcast(sample_arrays(), {"k": 1})
        try:
            handle = pickle.loads(pickle.dumps(broadcast.handle()))
            attached = attach(handle)
            np.testing.assert_array_equal(
                attached.arrays["model/b"],
                sample_arrays()["model/b"])
            attached.close()
        finally:
            broadcast.unlink()

    def test_child_process_round_trip_is_exact(self):
        arrays = sample_arrays()
        broadcast = WeightBroadcast(arrays, {"who": "child"})
        try:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
            queue = ctx.Queue()
            process = ctx.Process(
                target=_child_checksums, args=(broadcast.handle(), queue))
            process.start()
            result = queue.get(timeout=30)
            process.join(timeout=30)
            assert result["meta"] == {"who": "child"}
            expected = {key: float(value.astype(np.float64).sum())
                        for key, value in sorted(arrays.items())}
            assert result["sums"] == pytest.approx(expected)
        finally:
            broadcast.unlink()


def _child_checksums(handle, queue) -> None:
    attached = attach(handle)
    queue.put({
        "meta": attached.meta,
        "sums": {key: float(value.astype(np.float64).sum())
                 for key, value in sorted(attached.arrays.items())},
    })
    attached.close()


class TestCleanup:
    def test_unlink_removes_the_segment(self):
        before = _shm_segments()
        broadcast = WeightBroadcast(sample_arrays(), {})
        assert broadcast.via_shared_memory
        assert len(_shm_segments()) == len(before) + 1
        broadcast.unlink()
        assert _shm_segments() == before
        broadcast.unlink()  # idempotent

    def test_garbage_collection_backstop_unlinks(self):
        before = _shm_segments()
        broadcast = WeightBroadcast(sample_arrays(), {})
        assert len(_shm_segments()) == len(before) + 1
        del broadcast
        import gc

        gc.collect()
        assert _shm_segments() == before


class TestNpzFallback:
    def test_fallback_round_trip_and_cleanup(self, tmp_path):
        arrays = sample_arrays()
        broadcast = WeightBroadcast(arrays, {"via": "npz"}, use_shm=False)
        assert not broadcast.via_shared_memory
        handle = broadcast.handle()
        assert handle.segment is None
        assert handle.npz_path is not None
        attached = attach(handle)
        assert attached.meta == {"via": "npz"}
        for key, value in arrays.items():
            np.testing.assert_array_equal(attached.arrays[key], value)
        broadcast.unlink()
        import os

        assert not os.path.exists(handle.npz_path)


class TestPipelineBroadcast:
    def test_restored_replica_scores_identically(self, fitted_logsynergy):
        from repro.logs import generate_logs

        arrays, meta = pipeline_state(fitted_logsynergy)
        assert any(key.startswith("model/") for key in arrays)
        assert any(key.startswith("feat/") for key in arrays)
        broadcast = WeightBroadcast(arrays, meta)
        try:
            replica = restore_pipeline(attach(broadcast.handle()))
            assert replica.target_system == fitted_logsynergy.target_system
            original_state = fitted_logsynergy.model.state_dict()
            for key, value in replica.model.state_dict().items():
                np.testing.assert_array_equal(value, original_state[key])
            window = [record.message
                      for record in generate_logs("thunderbird", 10, seed=11)]
            expected = fitted_logsynergy.detect_stream_batch([window])
            got = replica.detect_stream_batch([window])
            assert got[0].score == expected[0].score
            assert got[0].is_anomalous == expected[0].is_anomalous
        finally:
            broadcast.unlink()
