"""Runtime test helpers: fake clocks and synthetic multi-system streams."""

import dataclasses
from datetime import datetime
from types import SimpleNamespace

import pytest

from repro.logs.generator import LogGenerator


class FakeClock:
    """Manually advanced clock for deterministic scheduler/supervisor tests."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


def entry(message: str, timestamp: datetime | None = None) -> SimpleNamespace:
    """A minimal normalized log entry (what shard windows hold)."""
    return SimpleNamespace(
        message=message, timestamp=timestamp or datetime(2026, 1, 1),
    )


def multi_system_stream(systems: int = 6, lines: int = 120,
                        seed: int = 0) -> list:
    """Interleaved records across ``systems`` synthetic services.

    Service names follow ``svc-NN``, which hash evenly onto 2 and 4
    shards under the CRC32 router.
    """
    streams = []
    for index in range(systems):
        records = LogGenerator("thunderbird", seed=seed + index).generate(lines)
        streams.append([dataclasses.replace(record, system=f"svc-{index:02d}")
                       for record in records])
    return [record for group in zip(*streams) for record in group]
