"""Injected worker faults vs. the supervisor's recovery budget.

Differential tests: a run with transient faults inside the retry budget
must render byte-identically to the fault-free golden run; faults beyond
the budget must degrade exactly the affected batch and nothing else.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import (
    InferenceRuntime, SyntheticWorker, message_pattern, render_reports,
    report_sort_key,
)
from repro.testing import FaultInjector, FaultPlan, FaultSpec

from .conftest import multi_system_stream

RECORDS = multi_system_stream(systems=3, lines=120)


def _no_sleep(seconds: float) -> None:
    return None


def _run(records, *, supervisor_options=None, shards=2, max_batch=4):
    registry = MetricsRegistry()
    runtime = InferenceRuntime(
        lambda index: SyntheticWorker(), pattern_fn=message_pattern,
        shards=shards, max_batch=max_batch, registry=registry,
        supervisor_options=supervisor_options,
    )
    for record in records:
        runtime.submit(record)
    reports = runtime.drain()
    reports.sort(key=report_sort_key)
    return reports, runtime


def _golden():
    reports, _ = _run(RECORDS)
    return render_reports(reports)


class TestTransientRaisesWithinBudget:
    @pytest.mark.parametrize("raises", [1, 2, 3])
    def test_verdicts_identical_and_retries_counted(self, raises):
        golden = _golden()
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "raise", start=0, count=raises),
        ))
        options = {"max_retries": 3, "sleep": _no_sleep,
                   "unhealthy_after": 1_000_000}
        with FaultInjector(plan) as injector:
            reports, runtime = _run(RECORDS, supervisor_options=options)
        assert injector.total_fired == raises
        assert render_reports(reports) == golden
        assert runtime.stats.degraded_windows == 0
        assert runtime.stats.worker_failures == raises
        # Every failed attempt within the budget consumed one retry.
        retries = runtime.registry.counter("runtime.worker_retries").value
        assert retries == raises


class TestRaisesBeyondBudget:
    def test_exactly_one_batch_degrades(self):
        golden_reports, _ = _run(RECORDS)
        # 4 consecutive raises exhaust 1 initial attempt + 3 retries on
        # the first batch; every later batch sees a healthy worker.
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "raise", start=0, count=4),
        ))
        options = {"max_retries": 3, "sleep": _no_sleep,
                   "unhealthy_after": 1_000_000}
        with FaultInjector(plan) as injector:
            reports, runtime = _run(RECORDS, supervisor_options=options)
        assert injector.total_fired == 4
        degraded = [r for r in reports if r.metadata.get("degraded")]
        clean = [r for r in reports if not r.metadata.get("degraded")]
        assert runtime.stats.degraded_windows == len(degraded) > 0
        assert runtime.stats.worker_failures == 4
        # Untouched windows keep verdicts identical to the golden run.
        degraded_keys = {(r.system, r.metadata["window_id"]) for r in degraded}
        golden_clean = [r for r in golden_reports
                        if (r.system, r.metadata["window_id"]) not in degraded_keys]
        assert render_reports(clean) == render_reports(golden_clean)

    def test_persistent_failure_transitions_unhealthy_exactly_once(self):
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "raise", start=0,
                      count=1_000_000),
        ))
        options = {"max_retries": 1, "sleep": _no_sleep,
                   "unhealthy_after": 1, "cooldown": 1e9}
        with FaultInjector(plan):
            reports, runtime = _run(RECORDS, shards=1,
                                    supervisor_options=options)
        assert runtime.stats.unhealthy_transitions == 1
        assert reports and all(r.metadata.get("degraded") for r in reports)
        assert runtime.stats.degraded_windows == len(reports)


class TestDropFaults:
    def test_dropped_result_degrades_only_that_batch(self):
        plan = FaultPlan((
            FaultSpec("runtime.worker.result", "drop", start=0, count=1),
        ))
        options = {"max_retries": 3, "sleep": _no_sleep,
                   "unhealthy_after": 1_000_000}
        with FaultInjector(plan) as injector:
            reports, runtime = _run(RECORDS, supervisor_options=options)
        assert injector.total_fired == 1
        # A swallowed result is not an exception: no retries, straight to
        # the degraded fallback for that batch.
        assert runtime.registry.counter("runtime.worker_retries").value == 0
        assert runtime.stats.degraded_windows > 0

    def test_dropped_admission_is_silent_ingress_loss(self):
        _, golden_runtime = _run(RECORDS)
        plan = FaultPlan((
            FaultSpec("runtime.queues.admit", "drop", start=0, count=30),
        ))
        with FaultInjector(plan) as injector:
            _, runtime = _run(RECORDS)
        assert injector.total_fired == 30
        # The queue lies politely: nothing rejected, nothing counted as
        # dropped — the windows simply never form.
        assert runtime.stats.records_rejected == 0
        assert runtime.stats.windows_seen < golden_runtime.stats.windows_seen
