"""HealthMonitor state machine (shared by supervisor and LLM breaker)."""

import pytest

from repro.runtime.health import HealthMonitor


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="unhealthy_after"):
            HealthMonitor(unhealthy_after=0)
        with pytest.raises(ValueError, match="cooldown"):
            HealthMonitor(cooldown=-1.0)
        with pytest.raises(ValueError, match="backoff_cap"):
            HealthMonitor(backoff_cap=0)


class TestClosedState:
    def test_trips_after_consecutive_failures(self):
        monitor = HealthMonitor(unhealthy_after=3, cooldown=5.0)
        assert not monitor.record_bad(0.0)
        assert not monitor.record_bad(1.0)
        assert monitor.record_bad(2.0)  # the tripping failure, exactly once
        assert not monitor.healthy
        assert monitor.retry_at == 7.0

    def test_success_resets_the_streak(self):
        monitor = HealthMonitor(unhealthy_after=2)
        monitor.record_bad(0.0)
        monitor.record_good()
        assert not monitor.record_bad(1.0)
        assert monitor.healthy

    def test_force_unhealthy_reports_the_transition_once(self):
        monitor = HealthMonitor(cooldown=2.0)
        assert monitor.force_unhealthy(10.0)
        assert not monitor.force_unhealthy(20.0)  # already open
        assert monitor.retry_at == 22.0  # cooldown re-armed regardless

    def test_force_unhealthy_accepts_a_cooldown_override(self):
        monitor = HealthMonitor(cooldown=2.0)
        monitor.force_unhealthy(0.0, cooldown=100.0)
        assert monitor.retry_at == 100.0


class TestOpenState:
    def _open(self, cooldown=4.0):
        monitor = HealthMonitor(unhealthy_after=1, cooldown=cooldown)
        monitor.record_bad(0.0)
        return monitor

    def test_probe_gated_by_cooldown(self):
        monitor = self._open(cooldown=4.0)
        assert not monitor.ready_to_probe(3.9)
        assert monitor.ready_to_probe(4.0)

    def test_healthy_monitor_never_probes(self):
        assert not HealthMonitor().ready_to_probe(1e9)

    def test_probe_success_closes_and_resets(self):
        monitor = self._open()
        monitor.probe_failed(4.0)
        monitor.probe_succeeded()
        assert monitor.healthy
        assert monitor.bad_streak == 0
        assert monitor.probe_failures == 0

    def test_probe_failures_double_the_cooldown(self):
        monitor = self._open(cooldown=4.0)
        monitor.probe_failed(10.0)
        assert monitor.retry_at == 10.0 + 8.0  # 2x
        monitor.probe_failed(20.0)
        assert monitor.retry_at == 20.0 + 16.0  # 4x

    def test_probe_backoff_caps(self):
        monitor = self._open(cooldown=1.0)
        for attempt in range(10):
            monitor.probe_failed(float(attempt))
        # 2**10 >> backoff_cap: the multiplier pins at 16x.
        assert monitor.retry_at == 9.0 + 16.0
