"""Shard router: stable hashing, full coverage, validation."""

import zlib

import pytest

from repro.runtime import ShardRouter


class TestShardRouter:
    def test_deterministic_across_instances(self):
        systems = [f"svc-{i:02d}" for i in range(32)] + ["bgl", "spirit"]
        first = ShardRouter(4)
        second = ShardRouter(4)
        assert [first.shard_of(s) for s in systems] == \
            [second.shard_of(s) for s in systems]

    def test_matches_crc32(self):
        router = ShardRouter(8)
        assert router.shard_of("web-frontend") == \
            zlib.crc32(b"web-frontend") % 8

    def test_all_records_of_a_system_land_on_one_shard(self):
        router = ShardRouter(3)
        assignments = {router.shard_of("auth-service") for _ in range(100)}
        assert len(assignments) == 1

    def test_every_shard_reachable(self):
        router = ShardRouter(4)
        hit = {router.shard_of(f"svc-{i:02d}") for i in range(64)}
        assert hit == {0, 1, 2, 3}

    def test_single_shard_maps_everything_to_zero(self):
        router = ShardRouter(1)
        assert router.shard_of("anything") == 0

    @pytest.mark.parametrize("shards", [0, -1])
    def test_rejects_non_positive_shard_count(self, shards):
        with pytest.raises(ValueError):
            ShardRouter(shards)
