"""Process executor: byte-identity to sync mode, crash recovery, stats."""

import glob

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import (
    InferenceRuntime, ProcessWorkerSpec, SyntheticWorker, message_pattern,
    render_reports, report_sort_key,
)
from repro.testing.plan import FaultInjector, FaultPlan, FaultSpec

from .conftest import multi_system_stream


def sync_replay(records, shards: int = 1, **kwargs):
    runtime = InferenceRuntime(
        lambda index: SyntheticWorker(threshold=0.5),
        pattern_fn=message_pattern, shards=shards, max_batch=4,
        max_latency=None, backpressure="block",
        registry=MetricsRegistry(), **kwargs)
    for record in records:
        runtime.submit(record)
    reports = runtime.drain()
    reports.sort(key=report_sort_key)
    return render_reports(reports)


def process_replay(records, shards: int, registry=None, spec=None, **kwargs):
    registry = registry if registry is not None else MetricsRegistry()
    runtime = InferenceRuntime(
        None, pattern_fn=message_pattern, executor="process",
        process_spec=spec or ProcessWorkerSpec.synthetic(threshold=0.5),
        shards=shards, max_batch=4, max_latency=None,
        backpressure="block", registry=registry, **kwargs)
    try:
        for record in records:
            runtime.submit(record)
        reports = runtime.drain()
    finally:
        runtime.stop()
    reports.sort(key=report_sort_key)
    return render_reports(reports), runtime


class TestByteIdentity:
    def test_process_matches_sync_across_shard_counts(self):
        records = multi_system_stream(systems=3, lines=100)
        golden = sync_replay(records)
        for shards in (1, 2, 4):
            rendered, runtime = process_replay(records, shards)
            assert rendered == golden, f"diverged at shards={shards}"
            spawned = runtime.registry.counter(
                "runtime.proc.spawned").value
            assert spawned == shards
        assert golden  # the stream does produce reports

    def test_ensemble_spec_matches_sync_ensemble(self):
        from repro.detectors import ensemble_from_spec

        records = multi_system_stream(systems=3, lines=80)
        registry = MetricsRegistry()
        ensemble = ensemble_from_spec("ewma,lof,rules:max", seed=0,
                                      registry=registry)
        runtime = InferenceRuntime.from_ensemble(
            ensemble, shards=1, max_batch=4, max_latency=None,
            backpressure="block", registry=registry)
        for record in records:
            runtime.submit(record)
        reports = runtime.drain()
        reports.sort(key=report_sort_key)
        golden = render_reports(reports)

        spec = ProcessWorkerSpec.ensemble("ewma,lof,rules:max", seed=0)
        for shards in (1, 2):
            rendered, _ = process_replay(records, shards, spec=spec)
            assert rendered == golden, f"diverged at shards={shards}"

    def test_model_broadcast_matches_sync(self, fitted_logsynergy, tmp_path):
        from repro.core import LogSynergy
        from repro.logs.generator import LogGenerator
        from repro.runtime.replay import replay_records

        # detect_stream_batch ingests novel templates into the featurizer
        # store, so every run must start from an identical on-disk
        # pipeline (exactly what the CLI does with --model-dir).
        fitted_logsynergy.save_pipeline(tmp_path / "pipe")
        # The target system's own dialect, dense enough in repeats that
        # the pattern-library gate emits reports (same recipe as
        # test_replay.py), so the comparison below is not vacuous.
        records = LogGenerator("thunderbird", seed=21,
                               repeat_probability=0.6).generate(900)

        golden_model = LogSynergy.load_pipeline(tmp_path / "pipe")
        reports, _ = replay_records(golden_model, records, shards=1,
                                    max_batch=4, registry=MetricsRegistry())
        golden = render_reports(reports)

        process_model = LogSynergy.load_pipeline(tmp_path / "pipe")
        runtime = InferenceRuntime.from_model(
            process_model, executor="process", shards=2, max_batch=4,
            max_latency=None, backpressure="block",
            registry=MetricsRegistry())
        try:
            for record in records:
                runtime.submit(record)
            got = runtime.drain()
        finally:
            runtime.stop()
        got.sort(key=report_sort_key)
        assert render_reports(got) == golden
        assert golden  # model path produced reports


class TestCrashRecovery:
    def test_sigkill_mid_stream_is_invisible_in_output(self):
        records = multi_system_stream(systems=3, lines=100)
        golden = sync_replay(records, shards=2)
        plan = FaultPlan((
            FaultSpec("runtime.proc.death", "corrupt", start=60, count=1,
                      mutate=lambda _value: True),
        ), seed=0)
        registry = MetricsRegistry()
        with FaultInjector(plan, registry=registry) as injector:
            rendered, _ = process_replay(records, 2, registry=registry)
        assert injector.total_fired == 1
        assert rendered == golden
        assert registry.counter("runtime.proc.deaths").value == 1
        assert registry.counter("runtime.proc.restarts").value == 1
        assert registry.counter("runtime.proc.refed_records").value > 0

    def test_spawn_failure_is_retried(self):
        records = multi_system_stream(systems=2, lines=60)
        golden = sync_replay(records, shards=2)
        plan = FaultPlan((
            FaultSpec("runtime.proc.spawn", "raise", start=0, count=1),
        ), seed=0)
        registry = MetricsRegistry()
        with FaultInjector(plan, registry=registry) as injector:
            rendered, _ = process_replay(records, 2, registry=registry)
        assert injector.total_fired == 1
        assert rendered == golden
        assert registry.counter("runtime.proc.spawn_failures").value == 1
        assert registry.counter("runtime.proc.spawned").value == 2


class TestValidationAndCleanup:
    def test_process_requires_spec(self):
        with pytest.raises(ValueError, match="process_spec"):
            InferenceRuntime(None, pattern_fn=message_pattern,
                             executor="process")

    def test_process_requires_block_backpressure(self):
        with pytest.raises(ValueError, match="block"):
            InferenceRuntime(
                None, pattern_fn=message_pattern, executor="process",
                process_spec=ProcessWorkerSpec.synthetic(),
                backpressure="reject")

    def test_process_rejects_custom_normalize(self):
        with pytest.raises(ValueError, match="normalize"):
            InferenceRuntime(
                None, pattern_fn=message_pattern, executor="process",
                process_spec=ProcessWorkerSpec.synthetic(),
                normalize=lambda record: record)

    def test_threaded_flag_conflicts_with_process(self):
        with pytest.raises(ValueError, match="conflicts"):
            InferenceRuntime(
                None, pattern_fn=message_pattern, threaded=True,
                executor="process",
                process_spec=ProcessWorkerSpec.synthetic())

    def test_from_ensemble_refuses_process_executor(self):
        from repro.detectors import ensemble_from_spec

        ensemble = ensemble_from_spec("ewma:max", registry=MetricsRegistry())
        with pytest.raises(ValueError, match="ProcessWorkerSpec.ensemble"):
            InferenceRuntime.from_ensemble(ensemble, executor="process")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="broadcast"):
            ProcessWorkerSpec(kind="model")
        with pytest.raises(ValueError, match="detectors"):
            ProcessWorkerSpec(kind="ensemble")
        with pytest.raises(ValueError, match="kind"):
            ProcessWorkerSpec(kind="gpu")

    def test_pump_raises_in_process_mode(self):
        runtime = InferenceRuntime(
            None, pattern_fn=message_pattern, executor="process",
            process_spec=ProcessWorkerSpec.synthetic(),
            registry=MetricsRegistry())
        with pytest.raises(RuntimeError, match="pump"):
            runtime.pump()
        runtime.stop()

    def test_stop_leaves_no_shm_segments(self):
        before = set(glob.glob("/dev/shm/repro-bcast-*"))
        records = multi_system_stream(systems=2, lines=40)
        spec = ProcessWorkerSpec.synthetic(threshold=0.5)
        rendered, _ = process_replay(records, 2, spec=spec)
        assert rendered
        assert set(glob.glob("/dev/shm/repro-bcast-*")) == before
