"""The ``repro fuzz`` subcommand."""

from repro.cli import main


class TestFuzzCommand:
    def test_green_run_exits_zero_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "fuzz.txt"
        code = main(["fuzz", "--episodes", "1", "--seed", "3",
                     "--suite", "fuzzer", "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "violations: 0" in captured
        assert "episode seeds: 3" in captured
        assert out.read_text(encoding="utf-8") in captured

    def test_reports_are_byte_identical_across_runs(self, tmp_path):
        first, second = tmp_path / "a.txt", tmp_path / "b.txt"
        for path in (first, second):
            assert main(["fuzz", "--episodes", "2", "--seed", "11",
                         "--suite", "fuzzer", "--out", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_broken_recovery_exits_nonzero(self, capsys):
        code = main(["fuzz", "--episodes", "1", "--seed", "3",
                     "--suite", "trainer", "--break", "nan-guard"])
        captured = capsys.readouterr().out
        assert code == 1
        assert "FAIL nan-loss-skipped" in captured
        assert "broken recovery path(s) nan-guard" in captured

    def test_flaky_provider_spec_stays_green(self):
        code = main(["fuzz", "--episodes", "1", "--seed", "5", "--suite", "llm",
                     "--llm", "flaky:error_rate=0.35"])
        assert code == 0

    def test_break_breaker_trips_the_flaky_invariant(self, capsys):
        code = main(["fuzz", "--episodes", "1", "--seed", "5", "--suite", "llm",
                     "--break", "breaker"])
        captured = capsys.readouterr().out
        assert code == 1
        assert ("FAIL flaky-provider-within-retry-budget-is-byte-identical"
                in captured)
        assert "broken recovery path(s) breaker" in captured

    def test_bench_overhead_prints_and_respects_limit(self, capsys):
        code = main(["fuzz", "--episodes", "1", "--seed", "3",
                     "--suite", "fuzzer", "--bench-overhead",
                     "--overhead-limit-ns", "1000000"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "ns/call" in captured

    def test_metrics_export_includes_fuzz_totals(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        code = main(["fuzz", "--episodes", "1", "--seed", "3",
                     "--suite", "trainer", "--metrics-out", str(metrics)])
        assert code == 0
        text = metrics.read_text(encoding="utf-8")
        assert "testing.fuzz.episodes" in text
        assert "testing.fuzz.invariants_checked" in text

    def test_onboard_suite_is_green(self, capsys):
        code = main(["fuzz", "--episodes", "1", "--seed", "3",
                     "--suite", "onboard"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "onboard-crash-never-demotes" in captured
        assert "violations: 0" in captured
