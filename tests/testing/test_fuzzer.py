"""LogStreamFuzzer: determinism, ground truth, dialects, noise."""

import pytest

from repro.logs.events import EventKind, concepts_for_system
from repro.testing import LogStreamFuzzer


def _raws(stream):
    return [record.raw for record in stream.records]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        fuzzer = LogStreamFuzzer(lines_per_system=60, parameter_noise=0.2)
        first, second = fuzzer.generate(5), fuzzer.generate(5)
        assert _raws(first) == _raws(second)
        assert first.planted == second.planted

    def test_different_seeds_differ(self):
        fuzzer = LogStreamFuzzer(lines_per_system=60)
        assert _raws(fuzzer.generate(1)) != _raws(fuzzer.generate(2))


class TestGroundTruth:
    def test_planted_bursts_match_record_labels(self):
        fuzzer = LogStreamFuzzer(lines_per_system=80, anomaly_bursts=3,
                                 burst_length=(2, 4))
        stream = fuzzer.generate(9)
        grouped = stream.by_system()
        for system in stream.systems:
            flags = [record.is_anomalous for record in grouped[system]]
            expected = set()
            for burst in stream.planted:
                if burst.system == system:
                    expected.update(range(burst.start, burst.start + burst.length))
            assert {i for i, flag in enumerate(flags) if flag} == expected

    def test_bursts_use_anomalous_concepts_and_do_not_touch(self):
        fuzzer = LogStreamFuzzer(lines_per_system=100, anomaly_bursts=4)
        stream = fuzzer.generate(3)
        anomalous = {c.name for c in concepts_for_system("bgl", EventKind.ANOMALOUS)
                     } | {c.name for c in concepts_for_system("spirit", EventKind.ANOMALOUS)
                          } | {c.name for c in concepts_for_system(
                              "thunderbird", EventKind.ANOMALOUS)}
        per_system: dict[str, list] = {}
        for burst in stream.planted:
            assert burst.concept in anomalous
            per_system.setdefault(burst.system, []).append(burst)
        for bursts in per_system.values():
            bursts.sort(key=lambda b: b.start)
            for earlier, later in zip(bursts, bursts[1:]):
                # Padded by at least one normal line, so window truth is
                # unambiguous about which burst flagged a window.
                assert earlier.start + earlier.length < later.start

    def test_expected_window_labels_mirror_runtime_windowing(self):
        fuzzer = LogStreamFuzzer(lines_per_system=40, anomaly_bursts=1)
        stream = fuzzer.generate(4)
        labels = stream.expected_window_labels(window=10, step=5)
        for system, records in stream.by_system().items():
            flags = [record.is_anomalous for record in records]
            manual = [any(flags[start:start + 10])
                      for start in range(0, len(flags) - 10 + 1, 5)]
            assert labels[system] == manual

    def test_interleave_preserves_per_system_order(self):
        fuzzer = LogStreamFuzzer(lines_per_system=50)
        stream = fuzzer.generate(2)
        assert len(stream.records) == 50 * len(stream.systems)
        for system, records in stream.by_system().items():
            assert len(records) == 50
            stamps = [record.timestamp for record in records]
            assert stamps == sorted(stamps)


class TestDialects:
    def test_logical_names_speak_mapped_dialects(self):
        fuzzer = LogStreamFuzzer(
            systems=("svc-a", "svc-b"),
            dialects={"svc-a": "bgl", "svc-b": "spirit"},
            lines_per_system=30,
        )
        stream = fuzzer.generate(0)
        grouped = stream.by_system()
        assert set(grouped) == {"svc-a", "svc-b"}
        bgl_concepts = {c.name for c in concepts_for_system("bgl")}
        assert all(record.concept in bgl_concepts for record in grouped["svc-a"])

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ValueError):
            LogStreamFuzzer(systems=("martian",), lines_per_system=10).generate(0)


class TestParameterNoise:
    def test_noise_perturbs_messages_but_not_labels(self):
        clean = LogStreamFuzzer(lines_per_system=60, parameter_noise=0.0)
        noisy = LogStreamFuzzer(lines_per_system=60, parameter_noise=0.9)
        a, b = clean.generate(8), noisy.generate(8)
        assert [r.is_anomalous for r in a.records] == [
            r.is_anomalous for r in b.records]
        assert a.planted == b.planted
        changed = sum(x.message != y.message
                      for x, y in zip(a.records, b.records))
        assert changed > len(a.records) // 2


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            LogStreamFuzzer(lines_per_system=0)
        with pytest.raises(ValueError):
            LogStreamFuzzer(anomaly_bursts=-1)
        with pytest.raises(ValueError):
            LogStreamFuzzer(parameter_noise=1.5)
        with pytest.raises(ValueError):
            LogStreamFuzzer(burst_length=(4, 2))
        with pytest.raises(ValueError):
            LogStreamFuzzer(systems=())
