"""Fault-point hooks and the plan/injector machinery."""

import pytest

from repro.obs import MetricsRegistry
from repro.testing import (
    DROPPED,
    FAULT_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    fault_point,
    register_fault_point,
)


class TestUnarmedHook:
    def test_passes_value_through_untouched(self):
        sentinel = object()
        assert fault_point("runtime.worker.score") is None
        assert fault_point("runtime.worker.score", sentinel) is sentinel

    def test_unregistered_names_are_inert_when_unarmed(self):
        # The *linter* polices names statically; the hot path must not
        # pay for a registry lookup.
        assert fault_point("no.such.point", 42) == 42

    def test_no_active_injector_by_default(self):
        assert active_injector() is None


class TestRegistry:
    def test_known_points_cover_the_planted_modules(self):
        assert FAULT_POINTS["runtime.worker.score"] == "repro/runtime/worker.py"
        assert FAULT_POINTS["core.trainer.loss"] == "repro/core/trainer.py"

    def test_register_rejects_conflicting_module(self):
        register_fault_point("tests.extension.point", "repro/x.py")
        try:
            # Idempotent re-registration is fine...
            register_fault_point("tests.extension.point", "repro/x.py")
            # ...but silently moving a hook to another module is not.
            with pytest.raises(ValueError, match="already registered"):
                register_fault_point("tests.extension.point", "repro/y.py")
        finally:
            del FAULT_POINTS["tests.extension.point"]

    def test_register_rejects_empty(self):
        with pytest.raises(ValueError):
            register_fault_point("", "repro/x.py")


class TestFaultSpecValidation:
    def test_unknown_point(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("nope.nope", "raise")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("runtime.worker.score", "explode")

    def test_corrupt_requires_mutate(self):
        with pytest.raises(ValueError, match="mutate"):
            FaultSpec("runtime.worker.score", "corrupt")

    def test_timeout_requires_seconds(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec("runtime.supervisor.attempt", "timeout")

    def test_bad_schedule_and_probability(self):
        with pytest.raises(ValueError):
            FaultSpec("runtime.worker.score", "raise", start=-1)
        with pytest.raises(ValueError):
            FaultSpec("runtime.worker.score", "raise", count=0)
        with pytest.raises(ValueError):
            FaultSpec("runtime.worker.score", "raise", probability=1.5)

    def test_plan_points(self):
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "raise"),
            FaultSpec("llm.cache.load", "drop"),
        ))
        assert plan.points() == {"runtime.worker.score", "llm.cache.load"}
        assert len(plan) == 2


class TestInjectorFiring:
    def test_positional_raise_schedule(self):
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "raise", start=1, count=2),
        ))
        with FaultInjector(plan) as injector:
            assert fault_point("runtime.worker.score", "a") == "a"  # call 0
            for _ in range(2):  # calls 1 and 2
                with pytest.raises(InjectedFault):
                    fault_point("runtime.worker.score")
            assert fault_point("runtime.worker.score", "b") == "b"  # call 3
        assert injector.total_fired == 2
        assert injector.fired_at("runtime.worker.score") == 2
        assert injector.calls_at("runtime.worker.score") == 4

    def test_corrupt_and_drop(self):
        plan = FaultPlan((
            FaultSpec("llm.cache.load", "corrupt", start=0, count=1,
                      mutate=str.upper),
            FaultSpec("runtime.queues.admit", "drop", start=0, count=1),
        ))
        with FaultInjector(plan):
            assert fault_point("llm.cache.load", "abc") == "ABC"
            assert fault_point("llm.cache.load", "abc") == "abc"
            assert fault_point("runtime.queues.admit", "x") is DROPPED
            assert fault_point("runtime.queues.admit", "x") == "x"

    def test_timeout_skews_only_the_injector_clock(self):
        plan = FaultPlan((
            FaultSpec("runtime.supervisor.attempt", "timeout", seconds=30.0),
        ))
        base = lambda: 100.0
        injector = FaultInjector(plan, base_clock=base)
        assert injector.clock() == 100.0
        with injector:
            fault_point("runtime.supervisor.attempt")
        assert injector.clock() == 130.0
        assert base() == 100.0

    def test_unplanned_points_pass_through_while_armed(self):
        plan = FaultPlan((FaultSpec("runtime.worker.score", "raise"),))
        with FaultInjector(plan):
            assert fault_point("llm.cache.load", "kept") == "kept"

    def test_probabilistic_schedule_is_seed_deterministic(self):
        def firings(seed):
            plan = FaultPlan((
                FaultSpec("runtime.worker.score", "drop", probability=0.3),
            ), seed=seed)
            with FaultInjector(plan):
                return [fault_point("runtime.worker.score", i) is DROPPED
                        for i in range(50)]

        assert firings(5) == firings(5)
        assert firings(5) != firings(6)
        assert any(firings(5)) and not all(firings(5))

    def test_counts_mirrored_into_obs(self):
        registry = MetricsRegistry()
        plan = FaultPlan((
            FaultSpec("runtime.worker.score", "drop", start=0, count=3),
        ))
        with FaultInjector(plan, registry=registry):
            for i in range(5):
                fault_point("runtime.worker.score", i)
        assert registry.counter("testing.faults.fired").value == 3.0
        assert registry.counter(
            "testing.faults.fired.runtime.worker.score").value == 3.0


class TestArming:
    def test_context_restores_previous_injector(self):
        outer = FaultInjector(FaultPlan())
        inner = FaultInjector(FaultPlan())
        with outer:
            assert active_injector() is outer
            with inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_double_arm_rejected(self):
        injector = FaultInjector(FaultPlan())
        with injector:
            with pytest.raises(RuntimeError, match="already armed"):
                injector.__enter__()

    def test_disarmed_after_exception(self):
        plan = FaultPlan((FaultSpec("runtime.worker.score", "raise"),))
        with pytest.raises(InjectedFault):
            with FaultInjector(plan):
                fault_point("runtime.worker.score")
        assert active_injector() is None
        assert fault_point("runtime.worker.score", 1) == 1
