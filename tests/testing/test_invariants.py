"""Invariant suites over fuzz episodes, including the --break self-test."""

import pytest

from repro.testing import (
    BREAKABLE_RECOVERIES,
    CHECKERS,
    SUITES,
    ConceptMatcher,
    LogStreamFuzzer,
    episode_seed,
    run_episodes,
    suite_checkers,
)

# A smaller fuzzer keeps the full-suite test fast while still producing
# enough windows/batches for every scheduled fault to land.
FAST_FUZZER = LogStreamFuzzer(lines_per_system=100, anomaly_bursts=3,
                              parameter_noise=0.1)


class TestSuiteRegistry:
    def test_all_suite_contains_every_checker(self):
        assert set(SUITES["all"]) == set(CHECKERS)

    def test_named_suites_partition_sensibly(self):
        assert "shard-invariance" in SUITES["replay"]
        assert "cache-corruption-regenerates" in SUITES["llm"]
        assert "nan-loss-skipped" in SUITES["trainer"]
        assert "label-recovery-f1" in SUITES["fuzzer"]

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown invariant suite"):
            suite_checkers("bogus")


class TestEpisodeRunner:
    def test_full_suite_green_and_deterministic(self):
        report = run_episodes(1, 29, fuzzer=FAST_FUZZER)
        assert report.ok, report.render()
        assert {r.invariant for r in report.episodes[0].results} == set(CHECKERS)
        again = run_episodes(1, 29, fuzzer=FAST_FUZZER)
        assert report.render() == again.render()

    def test_episode_seeds_derive_from_base(self):
        report = run_episodes(2, 4, suite="fuzzer", fuzzer=FAST_FUZZER)
        assert [e.seed for e in report.episodes] == [
            episode_seed(4, 0), episode_seed(4, 1)]
        rendered = report.render()
        for episode in report.episodes:
            assert str(episode.seed) in rendered

    def test_single_episode_replays_a_multi_episode_member(self):
        multi = run_episodes(2, 4, suite="fuzzer", fuzzer=FAST_FUZZER)
        solo = run_episodes(1, multi.episodes[1].seed, suite="fuzzer",
                            fuzzer=FAST_FUZZER)
        assert solo.episodes[0].results == multi.episodes[1].results

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="episodes"):
            run_episodes(0, 1)
        with pytest.raises(ValueError, match="breakable"):
            run_episodes(1, 1, broken=("warp-drive",))


# Each recovery path, when disabled, must trip the invariant that guards
# it — the acceptance criterion that the harness can detect the defects
# it exists for.  The suite is narrowed per case to keep the test fast.
_BREAK_CASES = [
    ("retry", "replay", "transient-fault-equivalence"),
    ("quarantine", "llm", "cache-corruption-regenerates"),
    ("review", "llm", "hallucination-burst-bounded"),
    ("nan-guard", "trainer", "nan-loss-skipped"),
    ("breaker", "llm", "flaky-provider-within-retry-budget-is-byte-identical"),
]


class TestBrokenRecoveryDetection:
    def test_cases_cover_every_breakable_path(self):
        assert {case[0] for case in _BREAK_CASES} == set(BREAKABLE_RECOVERIES)

    @pytest.mark.parametrize("broken,suite,invariant", _BREAK_CASES)
    def test_breaking_a_recovery_trips_its_invariant(self, broken, suite,
                                                     invariant):
        report = run_episodes(1, 3, suite=suite, broken=(broken,),
                              fuzzer=FAST_FUZZER)
        assert not report.ok
        assert invariant in {v.invariant for v in report.violations}

    @pytest.mark.parametrize("broken,suite,invariant", _BREAK_CASES)
    def test_intact_recovery_keeps_the_suite_green(self, broken, suite,
                                                   invariant):
        report = run_episodes(1, 3, suite=suite, fuzzer=FAST_FUZZER)
        assert report.ok, report.render()


class TestConceptMatcher:
    def test_matches_anomalous_phrases_not_normal_ones(self):
        matcher = ConceptMatcher()
        assert matcher.is_anomalous_line(
            "machine check interrupt (bit=7): L2 dcache unit "
            "read return parity error")
        assert not matcher.is_anomalous_line(
            "completely unrelated chatter about lunch menus")


class TestDetectorInvariants:
    def test_detectors_suite_membership(self):
        names = [name for name, _ in suite_checkers("detectors")]
        assert names == [
            "day0-ensemble-f1-floor",
            "ensemble-not-worse-than-worst-member",
            "degraded-model-keeps-unsupervised-live",
        ]
        assert set(names) <= set(SUITES["all"])

    def test_detectors_suite_green_and_deterministic(self):
        report = run_episodes(1, 7, suite="detectors", fuzzer=FAST_FUZZER)
        assert report.ok, report.render()
        again = run_episodes(1, 7, suite="detectors", fuzzer=FAST_FUZZER)
        assert report.render() == again.render()

    def test_day0_floor_details_mention_model_degradation(self):
        report = run_episodes(1, 7, suite="detectors", fuzzer=FAST_FUZZER)
        by_name = {r.invariant: r for r in report.episodes[0].results}
        assert "degraded model calls" in by_name["day0-ensemble-f1-floor"].details
