"""Dataflow engine tests: both lattices the passes rely on (growing
reachability chains, shrinking lock-set intersections), determinism of
the worklist, and the non-convergence guard."""

import pytest

from repro.analysis.dataflow import ForwardDataflow


def chain_flow(edges):
    return ForwardDataflow(
        successors=lambda node: [(t, t) for t in edges.get(node, [])],
        transfer=lambda chain, target: chain + (target,),
        join=lambda old, new: min(old, new, key=lambda c: (len(c), c)),
    )


class TestReachabilityLattice:
    def test_facts_reach_fixpoint(self):
        flow = chain_flow({"a": ["b"], "b": ["c"], "c": []})
        facts = flow.solve({"a": ("a",)})
        assert facts == {"a": ("a",), "b": ("a", "b"), "c": ("a", "b", "c")}

    def test_join_prefers_shorter_chain(self):
        flow = chain_flow({"a": ["b", "c"], "b": ["c"], "c": []})
        facts = flow.solve({"a": ("a",)})
        assert facts["c"] == ("a", "c")

    def test_cycles_converge(self):
        flow = chain_flow({"a": ["b"], "b": ["a"]})
        facts = flow.solve({"a": ("a",)})
        assert facts["a"] == ("a",) and facts["b"] == ("a", "b")

    def test_two_seeds_deterministic_tiebreak(self):
        flow = chain_flow({"x": ["shared"], "y": ["shared"]})
        first = flow.solve({"x": ("x",), "y": ("y",)})
        second = flow.solve({"y": ("y",), "x": ("x",)})
        assert first == second
        assert first["shared"] == ("x", "shared")    # lexicographic winner


class TestIntersectionLattice:
    def test_meet_over_call_sites(self):
        # helper is called holding {L} from one place and {} from another:
        # its entry fact must shrink to the intersection.
        calls = {
            "guarded": [(frozenset({"L"}), "helper")],
            "bare": [(frozenset(), "helper")],
            "helper": [],
        }
        flow = ForwardDataflow(
            successors=lambda n: calls[n],
            transfer=lambda entry, held: entry | held,
            join=lambda old, new: old & new,
        )
        facts = flow.solve({
            "guarded": frozenset(), "bare": frozenset(),
            "helper": frozenset({"L"}),
        })
        assert facts["helper"] == frozenset()

    def test_all_sites_guarded_keeps_lock(self):
        calls = {
            "one": [(frozenset({"L"}), "helper")],
            "two": [(frozenset({"L"}), "helper")],
            "helper": [],
        }
        flow = ForwardDataflow(
            successors=lambda n: calls[n],
            transfer=lambda entry, held: entry | held,
            join=lambda old, new: old & new,
        )
        facts = flow.solve({
            "one": frozenset(), "two": frozenset(),
            "helper": frozenset({"L"}),
        })
        assert facts["helper"] == frozenset({"L"})


class TestGuards:
    def test_non_monotonic_lattice_raises(self):
        # join always "changes" the fact -> the worklist never drains.
        flow = ForwardDataflow(
            successors=lambda n: [(None, "b" if n == "a" else "a")],
            transfer=lambda fact, _edge: fact + 1,
            join=lambda old, new: new,
        )
        with pytest.raises(RuntimeError, match="converge"):
            flow.solve({"a": 0})
