"""Auditor tests: planted defects must produce exactly the expected
finding, and the repo's own models (LogSynergy + every registry
baseline) must audit clean — the self-hosting gate."""

import numpy as np
import pytest

from repro import nn
from repro.analysis import (
    audit_logsynergy,
    audit_model,
    audit_spec,
    build_probe,
    shapes,
)
from repro.nn.tensor import Tensor
from repro.obs import MetricsRegistry, use_registry


def _input(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32))


class TestPlantedDefects:
    def test_dead_parameter(self):
        class Dead(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 2)
                self.unused = nn.Parameter(np.zeros(3, dtype=np.float32))

            def forward(self, x):
                return self.fc(x)

        model = Dead()
        x = _input((2, 4))
        report = audit_model(model, probe=lambda: model(x).sum())
        assert [f.code for f in report.findings] == ["dead-parameter"]
        assert report.findings[0].path == "unused"
        assert not report.ok

    def test_broken_graph_via_data_rewrap(self):
        class Broken(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(4, 4)
                self.b = nn.Linear(4, 2)

            def forward(self, x):
                hidden = self.a(x)
                hidden = Tensor(hidden.data)  # severs the autograd edge
                return self.b(hidden)

        model = Broken()
        x = _input((2, 4))
        report = audit_model(model, probe=lambda: model(x).sum())
        assert {f.code for f in report.findings} == {"broken-graph"}
        assert {f.path for f in report.findings} == {"a.weight", "a.bias"}

    def test_detached_grl_branch(self):
        # The failure mode that motivated the auditor: features reach the
        # domain discriminator through a severed edge, so the adversarial
        # gradient never shapes the feature extractor.
        class DetachedGRL(nn.Module):
            def __init__(self):
                super().__init__()
                self.features = nn.Linear(4, 8)
                self.grl = nn.GradientReversal()
                self.disc = nn.Linear(8, 2)

            def forward(self, x):
                hidden = self.features(x)
                return self.disc(self.grl(Tensor(hidden.data)))

        model = DetachedGRL()
        x = _input((2, 4))
        report = audit_model(model, probe=lambda: model(x).sum())
        assert {f.code for f in report.findings} == {"broken-graph"}
        assert {f.path for f in report.findings} == {
            "features.weight", "features.bias",
        }

    def test_shape_mismatch(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.Linear(16, 2))
        report = audit_model(model)
        mismatches = report.by_code("shape-mismatch")
        assert len(mismatches) == 1
        assert not report.ok
        assert not report.probed  # probe skipped once shapes already failed

    def test_missing_super_init_root(self):
        class NoSuper(nn.Module):
            def __init__(self):
                self.stash = [nn.Linear(4, 2)]  # plain list: no registration

            def forward(self, x):
                return self.stash[0](x)

        report = audit_model(NoSuper())
        assert [f.code for f in report.findings] == ["missing-super-init"]
        assert not report.ok

    def test_missing_super_init_nested(self):
        class Inner(nn.Module):
            def __init__(self):
                self.extra = [nn.Linear(2, 2)]

            def forward(self, x):
                return self.extra[0](x)

        class Outer(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(2, 2)
                self.inner = Inner()

            def forward(self, x):
                return self.inner(self.fc(x))

        report = audit_model(Outer())
        nested = report.by_code("missing-super-init")
        assert len(nested) == 1
        assert nested[0].path == "inner"


class TestStructuralPass:
    def test_unregistered_submodule(self):
        class Hoarder(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc = nn.Linear(4, 2)
                self.hidden = {"extra": nn.Linear(4, 4)}  # dict: not registered

            def forward(self, x):
                return self.fc(x)

        report = audit_model(Hoarder())
        findings = report.by_code("unregistered-submodule")
        assert len(findings) == 1
        assert findings[0].path == "hidden['extra']"
        assert not report.ok

    def test_shared_parameter_warns(self):
        class Tied(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(4, 4)
                self.b = nn.Linear(4, 4)
                self.b.weight = self.a.weight

            def forward(self, x):
                return self.b(self.a(x))

        report = audit_model(Tied())
        assert len(report.by_code("shared-parameter")) == 1
        assert report.ok  # warning, not error: tying can be intentional

    def test_non_finite_parameter(self):
        model = nn.Linear(3, 2)
        model.bias.data[0] = np.nan
        report = audit_model(model)
        assert len(report.by_code("non-finite-parameter")) == 1
        assert not report.ok

    def test_forward_failure_is_reported(self):
        model = nn.Linear(3, 2)

        def exploding_probe():
            raise RuntimeError("boom")

        report = audit_model(model, probe=exploding_probe)
        failures = report.by_code("forward-failed")
        assert len(failures) == 1
        assert "boom" in failures[0].message


class TestProbes:
    def test_linear_probe_inferred(self):
        report = audit_model(nn.Linear(5, 3))
        assert report.probed and report.shape_checked and report.ok

    def test_sequential_with_embedding_probe(self):
        model = nn.Sequential(nn.Embedding(11, 6), nn.Linear(6, 2))
        report = audit_model(model)
        assert report.probed and report.ok

    def test_unknown_module_skips_probe(self):
        class Opaque(nn.Module):
            def __init__(self):
                super().__init__()
                self.scale = nn.Parameter(np.ones(2, dtype=np.float32))

            def forward(self, a, b, c):
                return a * b * c

        assert build_probe(Opaque()) is None
        report = audit_model(Opaque())
        assert not report.probed
        assert report.by_code("probe-skipped")
        assert report.ok  # nothing provably wrong, just unchecked

    def test_gradcheck_mode_passes_on_small_model(self):
        model = nn.Linear(3, 2)
        report = audit_model(model, gradcheck=True)
        assert report.ok
        assert not report.by_code("gradient-mismatch")


class TestShapePropagation:
    def test_clean_chain(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        out, findings = shapes.propagate(model, ("B", 4))
        assert out == ("B", 2)
        assert findings == []

    def test_mismatch_located(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.Linear(16, 2))
        out, findings = shapes.propagate(model, ("B", 4))
        assert out is None
        assert [f.code for f in findings] == ["shape-mismatch"]
        assert "layer1" in findings[0].path

    def test_symbolic_input_inference(self):
        assert shapes.symbolic_input(nn.Linear(7, 3)) == ("B", 7)
        assert shapes.symbolic_input(nn.LSTM(5, 9)) == ("B", "T", 5)


class TestSelfHosting:
    def test_logsynergy_audits_clean(self):
        report = audit_logsynergy()
        assert report.ok, report.format(verbose=True)
        assert report.probed
        assert report.num_parameters > 0

    def test_every_registry_baseline_audits_clean(self, tiny_experiment_data):
        data = (
            tiny_experiment_data["sources"],
            tiny_experiment_data["target"],
            tiny_experiment_data["target_train"],
        )
        reports = audit_spec(["all"], data=data)
        failed = [r.format(verbose=True) for r in reports if not r.ok]
        assert not failed, "\n".join(failed)
        from repro.baselines.registry import BASELINES

        audited = {r.model.split(".", 1)[0] for r in reports}
        assert audited == {"LogSynergyModel", *BASELINES}

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError, match="unknown model spec"):
            audit_spec(["NotAModel"])


class TestObsIntegration:
    def test_audit_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            audit_model(nn.Linear(3, 2))
        assert registry.counter("analysis.audit.models").value == 1
        assert registry.counter("analysis.audit.errors").value == 0

    def test_lint_counters(self, tmp_path):
        from repro.analysis import lint_paths

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        registry = MetricsRegistry()
        with use_registry(registry):
            lint_paths([bad])
        assert registry.counter("analysis.lint.files").value == 1
        assert registry.counter("analysis.lint.violations").value == 1


class TestCli:
    def test_audit_logsynergy_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["audit", "logsynergy"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "clean" in out

    def test_audit_unknown_model_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown model spec"):
            main(["audit", "NotAModel"])
