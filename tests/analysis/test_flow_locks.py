"""flow/lock-discipline tests: mixed guarded/unguarded mutations,
Condition aliasing, guard inference for private helpers, the *_locked
convention, and acquisition-order findings."""

from repro.analysis.flow import run_flow_passes

SELECT = ["flow/lock-discipline"]


def run(flow_tree, files):
    violations, _stats = run_flow_passes(flow_tree(files), select=SELECT)
    return violations


class TestMixedMutation:
    def test_planted_unguarded_write_in_runtime(self, flow_tree):
        # The acceptance-criteria defect: an attribute written outside
        # its inferred lock in repro.runtime.
        violations = run(flow_tree, {
            "src/repro/runtime/state.py": (
                "import threading\n\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.total = 0\n\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.total += 1\n\n"
                "    def reset(self):\n"
                "        self.total = 0\n"
            ),
        })
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "flow/lock-discipline"
        assert "self.total" in v.message and "reset" in v.message
        assert v.path.endswith("state.py") and v.line == 13

    def test_init_writes_exempt(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/state.py": (
                "import threading\n\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.total = 0\n\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self.total += 1\n"
            ),
        })
        assert violations == []

    def test_attr_never_guarded_not_flagged(self, flow_tree):
        # A single-threaded attribute in a lock-owning class: only
        # flagged when it is *also* mutated under the lock somewhere.
        violations = run(flow_tree, {
            "src/repro/runtime/state.py": (
                "import threading\n\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._seq = 0\n"
                "        self._items = []\n\n"
                "    def bump(self):\n"
                "        self._seq += 1\n\n"
                "    def store(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n"
            ),
        })
        assert violations == []

    def test_mutator_method_call_counts_as_write(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/state.py": (
                "import threading\n\n"
                "class Buffer:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n\n"
                "    def add(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n\n"
                "    def sneak(self, item):\n"
                "        self._items.append(item)\n"
            ),
        })
        assert len(violations) == 1 and "sneak" in violations[0].message


class TestConditionAliasing:
    def test_condition_backed_region_counts_as_guarded(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/queue.py": (
                "import threading\n\n"
                "class Q:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._not_empty = threading.Condition(self._lock)\n"
                "        self._items = []\n\n"
                "    def put(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n\n"
                "    def take(self):\n"
                "        with self._not_empty:\n"
                "            return self._items.pop()\n"
            ),
        })
        assert violations == []


class TestGuardInference:
    def test_private_helper_inherits_guard_from_call_sites(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/rate.py": (
                "import threading\n\n"
                "class Limiter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._tokens = 0\n\n"
                "    def _refill(self):\n"
                "        self._tokens += 1\n\n"
                "    def acquire(self):\n"
                "        with self._lock:\n"
                "            self._refill()\n"
                "            self._tokens -= 1\n"
            ),
        })
        assert violations == []

    def test_one_unguarded_site_breaks_the_inference(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/rate.py": (
                "import threading\n\n"
                "class Limiter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._tokens = 0\n\n"
                "    def _refill(self):\n"
                "        self._tokens += 1\n\n"
                "    def acquire(self):\n"
                "        with self._lock:\n"
                "            self._refill()\n"
                "            self._tokens -= 1\n\n"
                "    def leak(self):\n"
                "        self._refill()\n"
            ),
        })
        assert len(violations) == 1
        assert "self._tokens" in violations[0].message


class TestLockedConvention:
    def test_unguarded_locked_call_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/q.py": (
                "import threading\n\n"
                "class Q:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n\n"
                "    def _admit_locked(self, item):\n"
                "        self._items.append(item)\n\n"
                "    def offer(self, item):\n"
                "        with self._lock:\n"
                "            self._admit_locked(item)\n\n"
                "    def sneak(self, item):\n"
                "        self._admit_locked(item)\n"
            ),
        })
        assert len(violations) == 1
        assert "_admit_locked" in violations[0].message
        assert "sneak" in violations[0].message


class TestAcquisitionOrder:
    def test_inconsistent_order_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/two.py": (
                "import threading\n\n"
                "class Two:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n\n"
                "    def ab(self):\n"
                "        with self._a:\n"
                "            with self._b:\n"
                "                pass\n\n"
                "    def ba(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        })
        order = [v for v in violations if "inconsistent lock order" in v.message]
        assert len(order) == 1
        assert "self._a" in order[0].message and "self._b" in order[0].message

    def test_reacquiring_nonreentrant_lock_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/two.py": (
                "import threading\n\n"
                "class Once:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n"
                "    def again(self):\n"
                "        with self._lock:\n"
                "            with self._lock:\n"
                "                pass\n"
            ),
        })
        assert len(violations) == 1 and "deadlock" in violations[0].message

    def test_rlock_reacquisition_allowed(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/two.py": (
                "import threading\n\n"
                "class Re:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n\n"
                "    def again(self):\n"
                "        with self._lock:\n"
                "            with self._lock:\n"
                "                pass\n"
            ),
        })
        assert violations == []

    def test_call_into_reacquiring_method_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/two.py": (
                "import threading\n\n"
                "class Deep:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n\n"
                "    def inner(self):\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
        })
        assert any("deadlock" in v.message for v in violations)


class TestLockReassignment:
    def test_lock_swapped_outside_init_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/swap.py": (
                "import threading\n\n"
                "class Swap:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n"
                "    def rotate(self):\n"
                "        self._lock = threading.Lock()\n"
            ),
        })
        assert len(violations) == 1 and "reassigned" in violations[0].message
