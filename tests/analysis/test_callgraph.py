"""Call graph tests: edge resolution strategies, the ambiguous-receiver
cap, and reachability with deterministic witness chains."""

from repro.analysis.callgraph import AMBIG_LIMIT, CallGraph
from repro.analysis.symbols import SymbolTable, parse_files


def graph(make_tree, files):
    root = make_tree(files)
    table = SymbolTable.build(
        parse_files(sorted(str(p) for p in root.rglob("*.py"))))
    return CallGraph(table)


def callees(cg, qualname):
    return sorted({site.callee for site in cg.callees(qualname)})


class TestEdgeResolution:
    def test_direct_and_imported_calls(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": "def helper():\n    pass\n",
            "src/pkg/b.py": (
                "from pkg.a import helper\n\n"
                "def local():\n    pass\n\n"
                "def caller():\n"
                "    helper()\n"
                "    local()\n"
            ),
        })
        assert callees(cg, "pkg.b.caller") == ["pkg.a.helper", "pkg.b.local"]

    def test_instantiation_links_to_init(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "class Engine:\n"
                "    def __init__(self):\n        pass\n"
            ),
            "src/pkg/b.py": (
                "from pkg.a import Engine\n\n"
                "def boot():\n"
                "    return Engine()\n"
            ),
        })
        assert callees(cg, "pkg.b.boot") == ["pkg.a.Engine.__init__"]

    def test_self_method_call(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "class C:\n"
                "    def one(self):\n"
                "        self.two()\n"
                "    def two(self):\n"
                "        pass\n"
            ),
        })
        assert callees(cg, "pkg.a.C.one") == ["pkg.a.C.two"]

    def test_self_method_through_base(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "class Base:\n"
                "    def shared(self):\n        pass\n\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        self.shared()\n"
            ),
        })
        assert callees(cg, "pkg.a.Child.go") == ["pkg.a.Base.shared"]

    def test_opaque_receiver_fans_out_by_name(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "class X:\n"
                "    def process(self):\n        pass\n\n"
                "class Y:\n"
                "    def process(self):\n        pass\n"
            ),
            "src/pkg/b.py": (
                "def run(obj):\n"
                "    obj.process()\n"
            ),
        })
        assert callees(cg, "pkg.b.run") == ["pkg.a.X.process", "pkg.a.Y.process"]

    def test_generic_names_beyond_cap_are_dropped(self, make_tree):
        classes = "\n\n".join(
            f"class C{i}:\n    def handle(self):\n        pass"
            for i in range(AMBIG_LIMIT + 1)
        )
        cg = graph(make_tree, {
            "src/pkg/a.py": classes + "\n",
            "src/pkg/b.py": "def run(obj):\n    obj.handle()\n",
        })
        assert callees(cg, "pkg.b.run") == []
        assert cg.unresolved.get(".handle") == 1


class TestReachability:
    FILES = {
        "src/pkg/a.py": (
            "def entry():\n"
            "    middle()\n\n"
            "def middle():\n"
            "    leaf()\n\n"
            "def leaf():\n    pass\n\n"
            "def orphan():\n    leaf()\n"
        ),
    }

    def test_witness_chains(self, make_tree):
        cg = graph(make_tree, self.FILES)
        chains = cg.reachable(["pkg.a.entry"])
        assert chains["pkg.a.leaf"] == (
            "pkg.a.entry", "pkg.a.middle", "pkg.a.leaf")
        assert "pkg.a.orphan" not in chains

    def test_shortest_chain_wins(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "def entry():\n"
                "    direct()\n"
                "    hop()\n\n"
                "def hop():\n"
                "    direct()\n\n"
                "def direct():\n    pass\n"
            ),
        })
        chains = cg.reachable(["pkg.a.entry"])
        assert chains["pkg.a.direct"] == ("pkg.a.entry", "pkg.a.direct")

    def test_recursion_terminates(self, make_tree):
        cg = graph(make_tree, {
            "src/pkg/a.py": (
                "def ping():\n    pong()\n\n"
                "def pong():\n    ping()\n"
            ),
        })
        chains = cg.reachable(["pkg.a.ping"])
        assert set(chains) == {"pkg.a.ping", "pkg.a.pong"}

    def test_unknown_entry_ignored(self, make_tree):
        cg = graph(make_tree, self.FILES)
        assert cg.reachable(["pkg.nope.entry"]) == {}
