"""flow/registry-drift tests: FAULT_POINTS vs planted call sites and
emitted metric names vs the documented catalog, in both directions."""

from repro.analysis.flow import run_flow_passes

SELECT = ["flow/registry-drift"]

FAULTPOINTS_HEADER = (
    "def fault_point(name, value=None):\n"
    "    return value\n"
)


def run(flow_tree, files):
    violations, _stats = run_flow_passes(flow_tree(files), select=SELECT)
    return violations


def registry(entries: dict) -> str:
    body = "".join(f'    "{k}": "{v}",\n' for k, v in entries.items())
    return "FAULT_POINTS = {\n" + body + "}\n\n" + FAULTPOINTS_HEADER


class TestFaultPoints:
    def test_planted_entry_with_no_call_site(self, flow_tree):
        # The acceptance-criteria defect: a registered fault point
        # nothing plants.
        violations = run(flow_tree, {
            "src/repro/testing/faultpoints.py": registry({
                "runtime.worker.score": "runtime/worker",
                "runtime.ghost.never": "runtime/ghost",
            }),
            "src/repro/runtime/worker.py": (
                "from repro.testing.faultpoints import fault_point\n\n"
                "def score(x):\n"
                "    return fault_point(\"runtime.worker.score\", x)\n"
            ),
        })
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "flow/registry-drift"
        assert "runtime.ghost.never" in v.message
        assert v.path.endswith("faultpoints.py")

    def test_point_planted_in_wrong_module(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/testing/faultpoints.py": registry({
                "runtime.worker.score": "runtime/worker",
            }),
            "src/repro/llm/cache.py": (
                "from repro.testing.faultpoints import fault_point\n\n"
                "def load(x):\n"
                "    return fault_point(\"runtime.worker.score\", x)\n"
            ),
        })
        assert len(violations) == 1
        assert "planted only in" in violations[0].message

    def test_consistent_registry_clean(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/testing/faultpoints.py": registry({
                "runtime.worker.score": "runtime/worker",
            }),
            "src/repro/runtime/worker.py": (
                "from repro.testing.faultpoints import fault_point\n\n"
                "def score(x):\n"
                "    return fault_point(\"runtime.worker.score\", x)\n"
            ),
        })
        assert violations == []


CATALOG = (
    "METRIC_NAMES = frozenset({\n"
    "    \"runtime.windows\",\n"
    "})\n"
    "METRIC_TEMPLATES = frozenset({\n"
    "    \"*.batches\",\n"
    "})\n"
)

EMITTER = (
    "from repro.obs import get_registry\n\n"
    "def observe(prefix):\n"
    "    registry = get_registry()\n"
    "    registry.counter(\"runtime.windows\").inc()\n"
    "    registry.counter(f\"{prefix}.batches\").inc()\n"
)


class TestMetricCatalog:
    def test_consistent_catalog_clean(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": CATALOG,
            "src/repro/runtime/stats.py": EMITTER,
        })
        assert violations == []

    def test_emitted_but_undocumented(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": CATALOG,
            "src/repro/runtime/stats.py": EMITTER.replace(
                "runtime.windows", "runtime.rogue"),
        })
        messages = [v.message for v in violations]
        assert any("runtime.rogue" in m and "missing from the documented" in m
                   for m in messages)
        assert any("'runtime.windows'" in m and "never emitted" in m
                   for m in messages)

    def test_documented_but_never_emitted(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": CATALOG,
            "src/repro/runtime/stats.py": EMITTER.replace(
                "    registry.counter(\"runtime.windows\").inc()\n", ""),
        })
        assert len(violations) == 1
        v = violations[0]
        assert "never emitted" in v.message and v.path.endswith("catalog.py")

    def test_template_drift_both_directions(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": CATALOG,
            "src/repro/runtime/stats.py": EMITTER.replace(
                "{prefix}.batches", "{prefix}.windows_seen"),
        })
        messages = [v.message for v in violations]
        assert any("*.windows_seen" in m and "missing from the documented" in m
                   for m in messages)
        assert any("'*.batches'" in m and "never emitted" in m
                   for m in messages)

    def test_ghost_detector_metric(self, flow_tree):
        # The acceptance-criteria defect for the detector portfolio: a
        # per-member counter family documented in the catalog that no
        # ensemble code path ever emits must be reported as drift.
        catalog = (
            "METRIC_NAMES = frozenset({\n"
            "    \"detectors.ensemble.windows\",\n"
            "})\n"
            "METRIC_TEMPLATES = frozenset({\n"
            "    \"detectors.*.windows\",\n"
            "    \"detectors.*.ghost\",\n"
            "})\n"
        )
        emitter = (
            "from repro.obs import get_registry\n\n"
            "def consult(name):\n"
            "    registry = get_registry()\n"
            "    registry.counter(\"detectors.ensemble.windows\").inc()\n"
            "    registry.counter(f\"detectors.{name}.windows\").inc()\n"
        )
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": catalog,
            "src/repro/detectors/ensemble.py": emitter,
        })
        assert len(violations) == 1
        v = violations[0]
        assert "detectors.*.ghost" in v.message and "never emitted" in v.message
        assert v.path.endswith("catalog.py")

    def test_non_repro_trees_out_of_scope(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/obs/catalog.py": CATALOG,
            "src/repro/runtime/stats.py": EMITTER,
            "benchmarks/bench_thing.py": (
                "from repro.obs import get_registry\n\n"
                "def main():\n"
                "    get_registry().counter(\"bench.custom\").inc()\n"
            ),
        })
        assert violations == []

    def test_no_catalog_no_findings(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/runtime/stats.py": EMITTER,
        })
        assert violations == []
