"""Linter tests: every rule fires on violating code and stays quiet on
clean code, suppressions work at line and file scope, and the repo's own
tree passes the gate (self-hosting)."""

import pytest

from repro.analysis import (
    RULES,
    available_rules,
    format_violations,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.analysis.lint import LintRule


def codes(text: str, select=None) -> list[str]:
    return [v.rule for v in lint_source(text, select=select)]


class TestGlobalNumpyRandom:
    def test_flags_global_rng(self):
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == [
            "global-numpy-random"
        ]

    def test_flags_seed_and_full_module_name(self):
        text = "import numpy\nnumpy.random.seed(0)\n"
        assert codes(text) == ["global-numpy-random"]

    def test_generator_construction_allowed(self):
        text = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "gen: np.random.Generator = rng\n"
            "x = rng.standard_normal(3)\n"
        )
        assert codes(text) == []


class TestWallClock:
    def test_flags_inline_calls(self):
        text = "import time\nstart = time.perf_counter()\n"
        assert codes(text) == ["wall-clock-call"]

    def test_flags_datetime_now(self):
        text = "import datetime\nstamp = datetime.datetime.now()\n"
        assert codes(text) == ["wall-clock-call"]

    def test_injectable_default_reference_allowed(self):
        # Referencing the function (without calling) is the injection idiom.
        text = (
            "import time\n"
            "def run(clock=None):\n"
            "    clock = clock or time.perf_counter\n"
            "    return clock()\n"
        )
        assert codes(text) == []


class TestMutableDefault:
    def test_flags_literal_and_call_defaults(self):
        text = (
            "def f(a=[]):\n    return a\n"
            "def g(b=dict()):\n    return b\n"
            "def h(*, c={1}):\n    return c\n"
        )
        assert codes(text) == ["mutable-default-arg"] * 3

    def test_immutable_defaults_allowed(self):
        text = "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n"
        assert codes(text) == []


class TestBlanketExcept:
    def test_flags_bare_and_broad(self):
        text = (
            "try:\n    pass\nexcept:\n    pass\n"
            "try:\n    pass\nexcept Exception:\n    pass\n"
        )
        assert codes(text, select=["blanket-except"]) == ["blanket-except"] * 2

    def test_reraise_allowed(self):
        text = (
            "try:\n    pass\n"
            "except Exception:\n    cleanup = 1\n    raise\n"
        )
        assert codes(text) == []

    def test_specific_exception_allowed(self):
        text = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert codes(text, select=["blanket-except"]) == []


class TestModuleSuperInit:
    def test_flags_assignment_before_super(self):
        text = (
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        self.w = 1\n"
            "        super().__init__()\n"
        )
        assert codes(text) == ["module-super-init"]

    def test_flags_missing_super_entirely(self):
        text = (
            "class Net(nn.Module):\n"
            "    def __init__(self):\n"
            "        self.w = 1\n"
        )
        assert codes(text) == ["module-super-init"]

    def test_clean_module_and_non_module_classes(self):
        text = (
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
            "        self.w = 1\n"
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.w = 1\n"
        )
        assert codes(text) == []


class TestForwardConventions:
    def test_flags_static_forward(self):
        text = (
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
            "    @staticmethod\n"
            "    def forward(x):\n"
            "        return x\n"
        )
        assert codes(text) == ["forward-conventions"]

    def test_flags_explicit_forward_call(self):
        assert codes("y = layer.forward(x)\n") == ["forward-conventions"]

    def test_self_forward_and_direct_call_allowed(self):
        text = (
            "class Net(Module):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
            "    def forward(self, x):\n"
            "        return self.inner(x)\n"
            "    def pooled(self, x):\n"
            "        return self.forward(x)\n"
        )
        assert codes(text) == []


class TestDirectThread:
    def test_flags_attribute_form(self):
        text = (
            "import threading\n"
            "t = threading.Thread(target=work)\n"
        )
        assert codes(text) == ["direct-thread"]

    def test_flags_bare_name_form(self):
        text = (
            "from threading import Thread\n"
            "t = Thread(target=work)\n"
        )
        assert codes(text) == ["direct-thread"]

    def test_runtime_package_is_exempt(self):
        text = "import threading\nt = threading.Thread(target=work)\n"
        assert lint_source(text, path="src/repro/runtime/engine.py") == []

    def test_other_threading_primitives_allowed(self):
        text = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "event = threading.Event()\n"
        )
        assert codes(text) == []

    def test_line_suppression_is_the_escape_hatch(self):
        text = (
            "import threading\n"
            "t = threading.Thread(target=work)"
            "  # lint: disable=direct-thread\n"
        )
        assert codes(text) == []


class TestDirectProcess:
    def test_flags_process_attribute_form(self):
        text = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
        )
        assert codes(text) == ["direct-process"]

    def test_flags_mp_alias_and_pool(self):
        text = (
            "import multiprocessing as mp\n"
            "pool = mp.Pool(4)\n"
        )
        assert codes(text) == ["direct-process"]

    def test_flags_shared_memory_construction(self):
        text = (
            "from multiprocessing import shared_memory\n"
            "seg = shared_memory.SharedMemory(create=True, size=64)\n"
        )
        assert codes(text) == ["direct-process"]

    def test_flags_bare_name_form(self):
        text = (
            "from multiprocessing import Process\n"
            "p = Process(target=work)\n"
        )
        assert codes(text) == ["direct-process"]

    def test_flags_get_context(self):
        text = (
            "import multiprocessing\n"
            "ctx = multiprocessing.get_context('fork')\n"
        )
        assert codes(text) == ["direct-process"]

    def test_runtime_package_is_exempt(self):
        text = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
        )
        assert lint_source(text, path="src/repro/runtime/procexec.py") == []

    def test_tests_and_benchmarks_are_exempt(self):
        text = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)\n"
        )
        assert lint_source(text, path="tests/runtime/test_procexec.py") == []
        assert lint_source(text, path="benchmarks/bench_runtime_throughput.py") == []

    def test_bare_queue_is_not_flagged(self):
        # ``Queue`` unqualified is usually ``queue.Queue`` — only the
        # mp-module attribute form is a process-executor bypass.
        text = (
            "from queue import Queue\n"
            "q = Queue()\n"
        )
        assert codes(text) == []

    def test_line_suppression_is_the_escape_hatch(self):
        text = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=work)"
            "  # lint: disable=direct-process\n"
        )
        assert codes(text) == []


class TestSuppression:
    def test_line_suppression(self):
        text = (
            "import time\n"
            "a = time.time()  # lint: disable=wall-clock-call\n"
            "b = time.time()\n"
        )
        violations = lint_source(text)
        assert [v.line for v in violations] == [3]

    def test_line_suppression_all_rules(self):
        text = "import time\na = time.time()  # lint: disable\n"
        assert codes(text) == []

    def test_file_suppression(self):
        text = (
            "# lint: disable-file=wall-clock-call\n"
            "import time\n"
            "a = time.time()\nb = time.time()\n"
        )
        assert codes(text) == []

    def test_file_suppression_leaves_other_rules(self):
        text = (
            "# lint: disable-file=wall-clock-call\n"
            "import time\n"
            "a = time.time()\n"
            "def f(x=[]):\n    return x\n"
        )
        assert codes(text) == ["mutable-default-arg"]


class TestEngine:
    def test_select_restricts_rules(self):
        text = "import time\na = time.time()\ndef f(x=[]):\n    return x\n"
        assert codes(text, select=["mutable-default-arg"]) == ["mutable-default-arg"]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            lint_source("x = 1\n", select=["no-such-rule"])

    def test_syntax_error_is_a_violation(self):
        violations = lint_source("def f(:\n")
        assert [v.rule for v in violations] == ["syntax-error"]

    def test_registry_lists_builtins(self):
        names = {name for name, _ in available_rules()}
        assert {
            "global-numpy-random", "wall-clock-call", "mutable-default-arg",
            "blanket-except", "module-super-init", "forward-conventions",
            "direct-thread", "direct-process",
        } <= names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register_rule
            class Clash(LintRule):
                name = "blanket-except"
                description = "clash"

    def test_custom_rule_roundtrip(self):
        @register_rule
        class NoPrint(LintRule):
            name = "test-no-print"
            description = "forbid print in tests of the rule engine"

            def visit_Call(self, node):
                import ast

                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    self.report(node, "print call")
                self.generic_visit(node)

        try:
            assert codes("print('hi')\n", select=["test-no-print"]) == [
                "test-no-print"
            ]
        finally:
            del RULES["test-no-print"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("def f(x=[]):\n    return x\n")
        (tmp_path / "pkg" / "good.py").write_text("def f(x=None):\n    return x\n")
        violations = lint_paths([tmp_path])
        assert len(violations) == 1
        assert violations[0].path.endswith("bad.py")

    def test_format_violations(self):
        violations = lint_source("def f(x=[]):\n    return x\n", path="m.py")
        rendered = format_violations(violations)
        assert "m.py:1:" in rendered
        assert "[mutable-default-arg]" in rendered
        assert rendered.endswith("1 violation")


class TestSelfHosting:
    def test_src_tree_lints_clean(self):
        violations = lint_paths(["src"])
        assert violations == [], format_violations(violations)


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "src/repro/analysis"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violations_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(bad)]) == 1
        assert "mutable-default-arg" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        assert "blanket-except" in capsys.readouterr().out


class TestPerTimestepLoop:
    def test_flags_loop_over_unpacked_seq_axis(self):
        text = (
            "batch, seq, dim = x.shape\n"
            "for t in range(seq):\n"
            "    step(x[:, t])\n"
        )
        assert codes(text, select=["per-timestep-loop"]) == ["per-timestep-loop"]

    def test_flags_loop_over_shape_subscript_binding(self):
        text = (
            "seq_len = x.shape[1]\n"
            "for t in range(seq_len):\n"
            "    step(x[:, t])\n"
        )
        assert codes(text, select=["per-timestep-loop"]) == ["per-timestep-loop"]

    def test_flags_direct_shape_range(self):
        text = "for t in range(x.shape[1]):\n    step(x[:, t])\n"
        assert codes(text, select=["per-timestep-loop"]) == ["per-timestep-loop"]

    def test_flags_comprehension(self):
        text = (
            "batch, seq = x.shape\n"
            "outputs = [step(x[:, t]) for t in range(seq)]\n"
        )
        assert codes(text, select=["per-timestep-loop"]) == ["per-timestep-loop"]

    def test_batch_axis_loop_allowed(self):
        # Position 0 of the shape unpack is the batch axis, not time.
        text = (
            "batch, seq = x.shape\n"
            "for b in range(batch):\n"
            "    step(x[b])\n"
        )
        assert codes(text, select=["per-timestep-loop"]) == []

    def test_plain_len_loop_allowed(self):
        text = "for i in range(len(items)):\n    use(items[i])\n"
        assert codes(text, select=["per-timestep-loop"]) == []

    def test_kernels_module_exempt(self):
        text = (
            "batch, seq, dim = x.shape\n"
            "for t in range(seq):\n"
            "    step(x[:, t])\n"
        )
        assert lint_source(
            text, path="src/repro/nn/kernels.py", select=["per-timestep-loop"]
        ) == []

    def test_line_suppression(self):
        text = (
            "batch, seq, dim = x.shape\n"
            "for t in range(seq):  # lint: disable=per-timestep-loop\n"
            "    step(x[:, t])\n"
        )
        assert codes(text, select=["per-timestep-loop"]) == []


class TestSilentExcept:
    def test_flags_pass_only_handler(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert codes(text, select=["silent-except"]) == ["silent-except"]

    def test_flags_docstring_only_handler(self):
        # A bare constant expression is still a no-op body.
        text = (
            "try:\n"
            "    risky()\n"
            "except KeyError:\n"
            "    'tolerated'\n"
        )
        assert codes(text, select=["silent-except"]) == ["silent-except"]

    def test_handler_leaving_evidence_allowed(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except ValueError:\n"
            "    failures.inc()\n"
        )
        assert codes(text, select=["silent-except"]) == []

    def test_fallback_assignment_allowed(self):
        text = (
            "try:\n"
            "    value = risky()\n"
            "except KeyError:\n"
            "    value = None\n"
        )
        assert codes(text, select=["silent-except"]) == []

    def test_line_suppression(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except ValueError:  # lint: disable=silent-except\n"
            "    pass\n"
        )
        assert codes(text, select=["silent-except"]) == []


class TestDirectLLMCall:
    SELECT = ["direct-llm-call"]

    def _codes(self, text: str, path: str = "src/repro/core/features.py"):
        return [v.rule for v in lint_source(text, path=path, select=self.SELECT)]

    def test_flags_provider_construction(self):
        assert self._codes("llm = SimulatedLLM(seed=0)\n") == ["direct-llm-call"]
        assert self._codes("llm = repro.llm.FlakyLLM(error_rate=0.1)\n") == [
            "direct-llm-call"
        ]

    def test_flags_complete_calls_on_foreign_objects(self):
        assert self._codes("text = llm.complete(prompt)\n") == ["direct-llm-call"]
        assert self._codes("texts = provider.complete_batch(prompts)\n") == [
            "direct-llm-call"
        ]

    def test_self_complete_is_the_middleware_idiom(self):
        # Middleware/providers forward to themselves and their inners —
        # only the former is allowed outside repro.llm.
        assert self._codes("value = self.complete(prompt)\n") == []
        assert self._codes("value = self.inner.complete(prompt)\n") == [
            "direct-llm-call"
        ]

    def test_sanctioned_construction_sites_exempt(self):
        text = "llm = SimulatedLLM(seed=0)\ntext = llm.complete(prompt)\n"
        for path in ("src/repro/llm/factory.py", "src/repro/testing/invariants.py",
                     "tests/llm/test_simulated.py", "benchmarks/bench_llm_traffic.py"):
            assert self._codes(text, path) == []

    def test_injected_provider_usage_allowed(self):
        # The sanctioned shape: take a provider, hand it to the interpreter.
        text = (
            "def fit(llm):\n"
            "    interpreter = EventInterpreter(llm)\n"
            "    return interpreter.interpret_store(store)\n"
        )
        assert self._codes(text) == []

    def test_rule_is_registered(self):
        names = {name for name, _ in available_rules()}
        assert "direct-llm-call" in names


class TestFaultPointAllowlist:
    SELECT = ["fault-point-outside-allowlist"]

    def _codes(self, text: str, path: str) -> list[str]:
        return [v.rule for v in lint_source(text, path=path, select=self.SELECT)]

    def test_registered_point_in_its_module_allowed(self):
        text = "reports = fault_point('runtime.worker.score', reports)\n"
        assert self._codes(text, "src/repro/runtime/worker.py") == []

    def test_registered_point_in_wrong_module_flagged(self):
        # Planted defect: a worker hook smuggled into the model code.
        text = "x = fault_point('runtime.worker.score', x)\n"
        assert self._codes(text, "src/repro/core/model.py") == [
            "fault-point-outside-allowlist"
        ]

    def test_unregistered_name_flagged(self):
        text = "x = fault_point('core.model.forward', x)\n"
        assert self._codes(text, "src/repro/core/model.py") == [
            "fault-point-outside-allowlist"
        ]

    def test_dynamic_name_flagged(self):
        text = "x = fault_point(point_name, x)\n"
        assert self._codes(text, "src/repro/runtime/worker.py") == [
            "fault-point-outside-allowlist"
        ]

    def test_attribute_call_checked_too(self):
        text = "x = faultpoints.fault_point('nope.nope', x)\n"
        assert self._codes(text, "src/repro/runtime/worker.py") == [
            "fault-point-outside-allowlist"
        ]

    def test_harness_and_tests_exempt(self):
        text = "x = fault_point('anything.goes', x)\n"
        assert self._codes(text, "src/repro/testing/harness.py") == []
        assert self._codes(text, "tests/testing/test_faultpoints.py") == []

    def test_repo_tree_hosts_every_registered_point(self):
        # Self-hosting: the live tree passes, i.e. every planted hook
        # sits in the module its registration names.
        from pathlib import Path

        violations = lint_paths([Path("src")], select=self.SELECT)
        assert violations == []


class TestExceptDedup:
    def test_bare_except_with_noop_body_one_finding(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except:\n"
            "    pass\n"
        )
        assert codes(text, select=["blanket-except", "silent-except"]) == [
            "blanket-except"
        ]

    def test_blanket_exception_with_noop_body_one_finding(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert codes(text, select=["blanket-except", "silent-except"]) == [
            "blanket-except"
        ]

    def test_specific_silent_handler_still_flagged(self):
        text = (
            "try:\n"
            "    risky()\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert codes(text, select=["blanket-except", "silent-except"]) == [
            "silent-except"
        ]


class TestStableOrdering:
    def test_findings_sorted_by_path_line_col_rule(self, tmp_path):
        (tmp_path / "b.py").write_text(
            "import time\n"
            "def f(x=[]):\n"
            "    return time.time()\n",
            encoding="utf-8",
        )
        (tmp_path / "a.py").write_text(
            "def g(y={}):\n    return y\n", encoding="utf-8",
        )
        violations = lint_paths([tmp_path / "b.py", tmp_path / "a.py"])
        keys = [(v.path, v.line, v.col, v.rule) for v in violations]
        assert keys == sorted(keys)
        assert [v.rule for v in violations] == [
            "mutable-default-arg", "mutable-default-arg", "wall-clock-call",
        ]


class TestDirectoryExemptions:
    def test_benchmarks_exempt_from_wall_clock(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_x.py").write_text(
            "import time\n\ndef run():\n    return time.perf_counter()\n",
            encoding="utf-8",
        )
        assert lint_paths([bench]) == []

    def test_exemption_is_per_rule(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_x.py").write_text(
            "def run(x=[]):\n    return x\n", encoding="utf-8",
        )
        assert [v.rule for v in lint_paths([bench])] == ["mutable-default-arg"]

    def test_other_trees_still_checked(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\n\ndef run():\n    return time.perf_counter()\n",
            encoding="utf-8",
        )
        assert [v.rule for v in lint_paths([tmp_path])] == ["wall-clock-call"]


class TestNonexistentPath:
    def test_lint_paths_raises(self):
        import pytest

        with pytest.raises(FileNotFoundError, match="does not exist"):
            lint_paths(["definitely/not/here"])

    def test_cli_exits_nonzero_with_clear_error(self, capsys):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "definitely/not/here"])
        assert "path does not exist: definitely/not/here" in str(excinfo.value)

    def test_cli_mixed_good_and_bad_paths_still_errors(self):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["lint", "src/repro/analysis", "definitely/not/here"])


class TestCliFlowIntegration:
    def test_list_rules_includes_flow_passes(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "flow/determinism" in out
        assert "flow/lock-discipline" in out
        assert "flow/registry-drift" in out

    def test_select_flow_wildcard_runs_clean_on_src(self, capsys):
        from repro.cli import main

        assert main(["lint", "src", "--select", "flow/*"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_flow_selector_errors(self, capsys):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit, match="flow/nope"):
            main(["lint", "src/repro/analysis", "--select", "flow/nope"])

    def test_format_json_parses_and_exits_by_violations(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["violations"] == 1
        assert payload["violations"][0]["rule"] == "mutable-default-arg"

    def test_format_sarif_parses(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        assert main(["lint", str(bad), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "mutable-default-arg"

    def test_baseline_roundtrip_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_write_baseline_requires_baseline_path(self):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit, match="requires --baseline"):
            main(["lint", "src/repro/analysis", "--write-baseline"])


class TestDetectorOutsideRegistry:
    DETECTOR = (
        "class ShadowDetector:\n"
        "    def score_window(self, system, window):\n"
        "        return 0.0\n"
    )

    def test_flags_detector_class_outside_registry(self):
        violations = lint_source(self.DETECTOR, path="src/repro/deploy/custom.py")
        assert [v.rule for v in violations] == ["detector-outside-registry"]
        assert "ShadowDetector" in violations[0].message

    def test_detectors_package_is_exempt(self):
        assert lint_source(self.DETECTOR,
                           path="src/repro/detectors/custom.py") == []

    def test_tests_and_benchmarks_are_exempt(self):
        assert lint_source(self.DETECTOR, path="tests/detectors/test_x.py") == []
        assert lint_source(self.DETECTOR, path="benchmarks/bench_x.py") == []

    def test_plain_function_allowed(self):
        text = "def score_window(system, window):\n    return 0.0\n"
        assert codes(text) == []

    def test_line_suppression_is_the_escape_hatch(self):
        text = (
            "class Adapter:\n"
            "    def score_window(self, system, window):"
            "  # lint: disable=detector-outside-registry\n"
            "        return 0.0\n"
        )
        assert lint_source(text, path="src/repro/deploy/custom.py") == []


class TestUnmanagedCheckpointWrite:
    SAVEZ = (
        "import numpy as np\n"
        "def snapshot(path, arrays):\n"
        "    np.savez(path, **arrays)\n"
    )

    def test_flags_raw_savez_in_production_code(self):
        violations = lint_source(self.SAVEZ, path="src/repro/deploy/dump.py")
        assert [v.rule for v in violations] == ["unmanaged-checkpoint-write"]
        assert "np.savez" in violations[0].message

    def test_flags_savez_compressed_and_full_module_name(self):
        text = ("import numpy\n"
                "def f(p, a):\n"
                "    numpy.savez_compressed(p, **a)\n")
        violations = lint_source(text, path="src/repro/core/extra.py")
        assert [v.rule for v in violations] == ["unmanaged-checkpoint-write"]

    def test_flags_bare_name_import(self):
        text = ("from numpy import savez\n"
                "def f(p, a):\n"
                "    savez(p, **a)\n")
        violations = lint_source(text, path="src/repro/core/extra.py")
        assert [v.rule for v in violations] == ["unmanaged-checkpoint-write"]

    def test_manifest_aware_saver_and_serializers_exempt(self):
        for path in ("src/repro/core/checkpoint.py",
                     "src/repro/nn/module.py",
                     "src/repro/runtime/broadcast.py",
                     "src/repro/core/pipeline.py",
                     "tests/core/test_x.py",
                     "benchmarks/bench_x.py"):
            assert lint_source(self.SAVEZ, path=path) == [], path

    def test_np_load_and_other_attrs_allowed(self):
        text = ("import numpy as np\n"
                "def f(p):\n"
                "    return np.load(p)\n")
        assert lint_source(text, path="src/repro/deploy/dump.py") == []

    def test_line_suppression_is_the_escape_hatch(self):
        text = ("import numpy as np\n"
                "def f(p, a):\n"
                "    np.savez(p, **a)"
                "  # lint: disable=unmanaged-checkpoint-write\n")
        assert lint_source(text, path="src/repro/deploy/dump.py") == []
