"""Output layer tests: deterministic JSON, SARIF structure, and
baseline write/load/apply round-trips."""

import json

import pytest

from repro.analysis.lint import LintViolation
from repro.analysis.output import (
    apply_baseline, baseline_key, load_baseline, render_json, render_sarif,
    write_baseline,
)

V1 = LintViolation(rule="wall-clock-call", path="src/a.py", line=3, col=4,
                   message="inline clock", hint="inject it")
V2 = LintViolation(rule="flow/determinism", path="src/b.py", line=9, col=0,
                   message="unseeded rng")


class TestJson:
    def test_payload_shape(self):
        payload = json.loads(render_json([V1, V2], files=7, stats={"modules": 2}))
        assert payload["summary"] == {
            "files": 7, "violations": 2,
            "by_rule": {"flow/determinism": 1, "wall-clock-call": 1},
        }
        assert payload["flow"] == {"modules": 2}
        assert payload["violations"][0] == {
            "rule": "wall-clock-call", "path": "src/a.py", "line": 3,
            "col": 4, "message": "inline clock", "hint": "inject it",
        }

    def test_byte_deterministic(self):
        first = render_json([V1, V2], files=7, stats={"b": 1, "a": 2})
        second = render_json([V1, V2], files=7, stats={"a": 2, "b": 1})
        assert first == second
        assert first.endswith("\n")


class TestSarif:
    def test_minimal_sarif_document(self):
        document = json.loads(render_sarif([V1]))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"wall-clock-call", "flow/determinism",
                "flow/lock-discipline", "flow/registry-drift"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "wall-clock-call"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"] == {"startLine": 3, "startColumn": 5}


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert write_baseline([V1, V2], path) == 2
        baseline = load_baseline(path)
        assert baseline == {baseline_key(V1), baseline_key(V2)}
        kept, suppressed = apply_baseline([V1, V2], baseline)
        assert kept == [] and suppressed == 2

    def test_new_finding_survives_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([V1], path)
        kept, suppressed = apply_baseline([V1, V2], load_baseline(path))
        assert kept == [V2] and suppressed == 1

    def test_key_ignores_line_numbers(self):
        moved = LintViolation(rule=V1.rule, path=V1.path, line=99, col=0,
                              message=V1.message, hint=V1.hint)
        assert baseline_key(moved) == baseline_key(V1)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"findings\": {}}", encoding="utf-8")
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(path)

    def test_missing_baseline_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_baseline(tmp_path / "absent.json")
