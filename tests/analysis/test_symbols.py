"""Symbol table tests: module naming, import aliases (absolute,
relative, deferred into function bodies), re-export chains through
package ``__init__`` files, and method lookup through project bases."""

from repro.analysis.symbols import SymbolTable, module_name_for, parse_files


def build(make_tree, files):
    root = make_tree(files)
    return SymbolTable.build(parse_files(sorted(str(p) for p in root.rglob("*.py"))))


class TestModuleNaming:
    def test_package_files_get_dotted_names(self, make_tree):
        table = build(make_tree, {
            "src/pkg/sub/mod.py": "def f():\n    pass\n",
        })
        assert "pkg.sub.mod" in table.modules
        assert "pkg.sub.mod.f" in table.functions

    def test_init_names_its_package(self, make_tree):
        root = make_tree({"src/pkg/mod.py": "x = 1\n"})
        assert module_name_for(root / "src/pkg/__init__.py") == "pkg"

    def test_standalone_script_keeps_stem(self, make_tree):
        table = build(make_tree, {"benchmarks/bench_thing.py": "def main():\n    pass\n"})
        assert "bench_thing" in table.modules

    def test_stem_collision_qualifies_by_directory(self, make_tree):
        table = build(make_tree, {
            "benchmarks/run.py": "def a():\n    pass\n",
            "examples/run.py": "def b():\n    pass\n",
        })
        assert "run" in table.modules and "examples.run" in table.modules


class TestImports:
    def test_deferred_function_body_import_is_seen(self, make_tree):
        table = build(make_tree, {
            "src/pkg/a.py": "def helper():\n    return 1\n",
            "src/pkg/b.py": (
                "def use():\n"
                "    from pkg.a import helper\n"
                "    return helper()\n"
            ),
        })
        module = table.modules["pkg.b"]
        assert table.resolve(module, "helper") == "pkg.a.helper"

    def test_relative_import_resolves(self, make_tree):
        table = build(make_tree, {
            "src/pkg/sub/a.py": "def f():\n    pass\n",
            "src/pkg/sub/b.py": "from .a import f\n",
            "src/pkg/c.py": "from .sub.a import f as g\n",
        })
        assert table.resolve(table.modules["pkg.sub.b"], "f") == "pkg.sub.a.f"
        assert table.resolve(table.modules["pkg.c"], "g") == "pkg.sub.a.f"

    def test_reexport_chain_through_package_init(self, make_tree):
        table = build(make_tree, {
            "src/pkg/engine.py": "class Engine:\n    def __init__(self):\n        pass\n",
            "src/pkg/__init__.py": "from .engine import Engine\n",
            "src/other.py": "import pkg\n\ndef use():\n    return pkg.Engine()\n",
        })
        module = table.modules["other"]
        assert table.resolve(module, "pkg.Engine") == "pkg.engine.Engine"

    def test_class_method_via_dotted_name(self, make_tree):
        table = build(make_tree, {
            "src/pkg/engine.py": (
                "class Engine:\n"
                "    def start(self):\n"
                "        pass\n"
            ),
            "src/pkg/__init__.py": "from .engine import Engine\n",
        })
        module = table.modules["pkg"]
        assert table.resolve(module, "Engine.start") == "pkg.engine.Engine.start"

    def test_external_names_resolve_to_none(self, make_tree):
        table = build(make_tree, {
            "src/pkg/a.py": "import numpy as np\n\ndef f():\n    return np.zeros(3)\n",
        })
        assert table.resolve(table.modules["pkg.a"], "np.zeros") is None


class TestClassMethodLookup:
    def test_inherited_method_found_through_project_base(self, make_tree):
        table = build(make_tree, {
            "src/pkg/base.py": "class Base:\n    def shared(self):\n        pass\n",
            "src/pkg/child.py": (
                "from pkg.base import Base\n\n"
                "class Child(Base):\n"
                "    def own(self):\n"
                "        pass\n"
            ),
        })
        found = table.class_method("pkg.child.Child", "shared")
        assert found is not None and found.qualname == "pkg.base.Base.shared"

    def test_missing_method_returns_none(self, make_tree):
        table = build(make_tree, {
            "src/pkg/base.py": "class Base:\n    pass\n",
        })
        assert table.class_method("pkg.base.Base", "nope") is None

    def test_inheritance_cycle_does_not_hang(self, make_tree):
        table = build(make_tree, {
            "src/pkg/a.py": (
                "class A(B):\n    pass\n\n"
                "class B(A):\n    pass\n"
            ),
        })
        assert table.class_method("pkg.a.A", "anything") is None


class TestStats:
    def test_counts_are_deterministic(self, make_tree):
        files = {
            "src/pkg/a.py": "def f():\n    pass\n\nclass C:\n    def m(self):\n        pass\n",
        }
        first = build(make_tree, files).stats()
        assert first == {"modules": 2, "classes": 1, "functions": 2}
