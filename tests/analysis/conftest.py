"""Shared helpers for the whole-program analysis tests.

The flow passes analyze *projects*, not strings, so these fixtures
materialize a dict of ``relative/path.py -> source`` into a repo-shaped
tree on disk and hand back parsed (path, text, tree) triples — package
``__init__.py`` files are created automatically for every directory
under ``src/`` so module names derive exactly as they do in the real
checkout.
"""

import pytest


@pytest.fixture
def make_tree(tmp_path):
    def _make(files: dict):
        for relative, text in files.items():
            target = tmp_path / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            # Mark packages below the tree root (src/ itself carries no
            # __init__.py in the real checkout, so stop one level down).
            parent = target.parent
            while parent != tmp_path and parent.parent != tmp_path \
                    and not (parent / "__init__.py").exists():
                (parent / "__init__.py").write_text("", encoding="utf-8")
                parent = parent.parent
            target.write_text(text, encoding="utf-8")
        return tmp_path
    return _make


@pytest.fixture
def flow_tree(make_tree):
    """Build a tree and return parsed triples ready for run_flow_passes."""
    from repro.analysis.symbols import parse_files

    def _build(files: dict):
        root = make_tree(files)
        paths = sorted(str(p) for p in root.rglob("*.py"))
        return parse_files(paths)
    return _build
