"""flow/determinism tests: every nondeterminism source is caught when
reachable from a replay/serve/fuzz entry point, unreachable code is
left alone, and the allowlist / suppression seams work."""

from repro.analysis.flow import run_flow_passes

SELECT = ["flow/determinism"]


def run(flow_tree, files, **kwargs):
    violations, _stats = run_flow_passes(flow_tree(files), select=SELECT, **kwargs)
    return violations


def entry(body: str) -> str:
    """A repro.cli with a replay entry point delegating to the body."""
    return (
        "def _cmd_replay(args):\n"
        f"    {body}\n"
    )


class TestUnseededRandom:
    def test_planted_random_random_reachable_from_replay(self, flow_tree):
        # The acceptance-criteria defect: unseeded random.random() two
        # hops from `repro replay`, behind a deferred import.
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    from repro.runtime.jitter import wobble\n"
                "    return wobble()\n"
            ),
            "src/repro/runtime/jitter.py": (
                "import random\n\n"
                "def wobble():\n"
                "    return random.random()\n"
            ),
        })
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "flow/determinism"
        assert "random.random()" in v.message
        assert "repro.cli._cmd_replay" in v.message   # witness chain
        assert v.path.endswith("jitter.py") and v.line == 4

    def test_unreachable_random_not_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": entry("return 0"),
            "src/repro/stray.py": (
                "import random\n\n"
                "def unused():\n"
                "    return random.random()\n"
            ),
        })
        assert violations == []

    def test_seeded_generator_construction_allowed(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    import random\n"
                "    rng = random.Random(7)\n"
                "    return rng.random()\n"
            ),
        })
        assert violations == []


class TestOtherSources:
    def test_wall_clock_reachable(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "import time\n\n"
                "def _cmd_serve(args):\n"
                "    return time.monotonic()\n"
            ),
        })
        assert [v.rule for v in violations] == ["flow/determinism"]
        assert "time.monotonic" in violations[0].message

    def test_numpy_global_rng_reachable(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "import numpy as np\n\n"
                "def _cmd_fuzz(args):\n"
                "    return np.random.rand(3)\n"
            ),
        })
        assert len(violations) == 1 and "np.random.rand" in violations[0].message

    def test_entropy_source_reachable(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "import uuid\n\n"
                "def _cmd_replay(args):\n"
                "    return uuid.uuid4()\n"
            ),
        })
        assert len(violations) == 1 and "uuid.uuid4" in violations[0].message


class TestUnorderedIteration:
    def test_for_over_set_literal(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    for item in {1, 2, 3}:\n"
                "        print(item)\n"
            ),
        })
        assert len(violations) == 1
        assert "unordered set" in violations[0].message

    def test_for_over_set_bound_name(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    pending = set(args.items)\n"
                "    for item in pending:\n"
                "        print(item)\n"
            ),
        })
        assert len(violations) == 1

    def test_sorted_iteration_allowed(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    pending = set(args.items)\n"
                "    for item in sorted(pending):\n"
                "        print(item)\n"
            ),
        })
        assert violations == []

    def test_list_materializing_set_flagged(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "def _cmd_replay(args):\n"
                "    return list({1, 2, 3})\n"
            ),
        })
        assert len(violations) == 1 and "list()" in violations[0].message


class TestSeams:
    FILES = {
        "src/repro/cli.py": (
            "def _cmd_replay(args):\n"
            "    from repro.clock import now\n"
            "    return now()\n"
        ),
        "src/repro/clock.py": (
            "import time\n\n"
            "def now():\n"
            "    return time.monotonic()\n"
        ),
    }

    def test_allowlist_exempts_injection_seam(self, flow_tree):
        flagged = run(flow_tree, self.FILES)
        assert len(flagged) == 1
        clean, _ = run_flow_passes(
            flow_tree(self.FILES), select=SELECT,
            allowlist=frozenset({"repro.clock.now"}))
        assert clean == []

    def test_prefix_allowlist(self, flow_tree):
        clean, _ = run_flow_passes(
            flow_tree(self.FILES), select=SELECT,
            allowlist=frozenset({"repro.clock.*"}))
        assert clean == []

    def test_suppression_comment_respected(self, flow_tree):
        violations = run(flow_tree, {
            "src/repro/cli.py": (
                "import time\n\n"
                "def _cmd_replay(args):\n"
                "    return time.monotonic()  # lint: disable=flow/determinism\n"
            ),
        })
        assert violations == []
