"""Shape propagation edge cases: broadcast compatibility (symbolic and
zero-size dims), rank-0 inputs, and symbolic batch dims flowing through
the fused recurrent kernels."""

from repro.analysis.shapes import broadcast_shapes, propagate, symbolic_input
from repro.nn import GRU, LSTM, BiLSTM, Linear, ReLU, Sequential


def errors(findings):
    return [f for f in findings if f.severity.name == "ERROR"]


class TestBroadcast:
    def test_equal_shapes_pass_through(self):
        shape, findings = broadcast_shapes((4, 8), (4, 8))
        assert shape == (4, 8) and findings == []

    def test_one_broadcasts(self):
        shape, findings = broadcast_shapes(("B", 1, 8), (1, 5, 8))
        assert shape == ("B", 5, 8) and findings == []

    def test_rank_difference_right_aligns(self):
        shape, findings = broadcast_shapes((8,), (3, 5, 8))
        assert shape == (3, 5, 8) and findings == []

    def test_rank0_broadcasts_against_anything(self):
        shape, findings = broadcast_shapes((), ("B", 8))
        assert shape == ("B", 8) and findings == []

    def test_incompatible_concrete_dims(self):
        shape, findings = broadcast_shapes((3, 8), (4, 8))
        assert shape is None
        assert len(findings) == 1
        assert "not broadcast-compatible" in findings[0].message
        assert "3 vs 4" in findings[0].message

    def test_zero_dim_is_incompatible_with_nonone(self):
        shape, findings = broadcast_shapes((0, 8), (5, 8))
        assert shape is None and len(findings) == 1

    def test_zero_dim_broadcasts_with_one(self):
        shape, findings = broadcast_shapes((0, 8), (1, 8))
        assert shape == (0, 8) and findings == []

    def test_symbol_pairs_with_concrete_dim(self):
        shape, findings = broadcast_shapes(("B", 8), (16, 8))
        assert shape == (16, 8) and findings == []

    def test_equal_symbols_kept(self):
        shape, findings = broadcast_shapes(("B", 8), ("B", 1))
        assert shape == ("B", 8) and findings == []


class TestDegenerateInputs:
    def test_rank0_into_linear_is_mismatch(self):
        shape, findings = propagate(Linear(8, 4), ())
        assert shape is None and len(errors(findings)) == 1

    def test_zero_batch_flows_through_linear(self):
        shape, findings = propagate(Linear(8, 4), (0, 8))
        assert shape == (0, 4) and findings == []

    def test_rank2_into_lstm_is_mismatch(self):
        lstm = LSTM(input_size=8, hidden_size=6)
        shape, findings = propagate(lstm, ("B", 8))
        assert shape is None and len(errors(findings)) == 1


class TestSymbolicBatchThroughFusedKernels:
    def test_lstm_keeps_symbolic_batch_and_seq(self):
        lstm = LSTM(input_size=8, hidden_size=6)
        shape, findings = propagate(lstm, ("B", "T", 8))
        assert shape == ("B", "T", 6) and findings == []

    def test_gru_keeps_symbolic_batch(self):
        gru = GRU(input_size=8, hidden_size=5)
        shape, findings = propagate(gru, ("B", 12, 8))
        assert shape == ("B", 12, 5) and findings == []

    def test_bilstm_doubles_hidden(self):
        bilstm = BiLSTM(input_size=8, hidden_size=6)
        shape, findings = propagate(bilstm, ("B", "T", 8))
        assert shape == ("B", "T", 12) and findings == []

    def test_symbolic_batch_through_recurrent_stack(self):
        stack = Sequential(
            LSTM(input_size=8, hidden_size=6),
            ReLU(),
            Linear(6, 2),
        )
        shape, findings = propagate(stack, symbolic_input(stack))
        assert shape == ("B", "T", 2) and findings == []

    def test_mismatched_stack_reports_and_stops(self):
        stack = Sequential(
            LSTM(input_size=8, hidden_size=6),
            Linear(7, 2),       # wrong: LSTM emits 6 features
        )
        shape, findings = propagate(stack, ("B", "T", 8))
        assert shape is None
        assert len(errors(findings)) == 1
        assert "in_features=7" in findings[0].message
