"""Ensemble behind the serving stack: ungated runtime, shard
invariance, the online service's day-0 mode and the experiment adapter."""

import numpy as np
import pytest

from repro.deploy.online import OnlineService
from repro.detectors import ensemble_from_spec
from repro.obs import MetricsRegistry
from repro.runtime import InferenceRuntime
from repro.runtime.replay import render_reports
from repro.testing.fuzzer import LogStreamFuzzer


def day0_stream(seed=7):
    fuzzer = LogStreamFuzzer(
        systems=("day0",), dialects={"day0": "bgl"},
        lines_per_system=120, anomaly_bursts=3, burst_length=(3, 6),
        parameter_noise=0.1,
    )
    return fuzzer.generate(seed)


def run_replay(stream, *, shards, spec="ewma,lof,rules,model:max"):
    registry = MetricsRegistry()
    ensemble = ensemble_from_spec(spec, registry=registry)
    runtime = InferenceRuntime.from_ensemble(
        ensemble, shards=shards, window=10, step=5, max_batch=8,
        max_latency=None, backpressure="block", registry=registry,
    )
    for record in stream.records:
        runtime.submit(record)
    reports = runtime.drain()
    return reports, runtime, ensemble


class TestFromEnsemble:
    def test_replay_is_shard_invariant(self):
        stream = day0_stream()
        rendered = [render_reports(run_replay(stream, shards=shards)[0])
                    for shards in (1, 2, 3)]
        assert rendered[0] == rendered[1] == rendered[2]
        assert rendered[0]  # anomalies were actually raised

    def test_gate_is_off_every_window_reaches_the_ensemble(self):
        stream = day0_stream()
        _, runtime, ensemble = run_replay(stream, shards=2)
        windows_seen = runtime.stats.windows_seen
        assert windows_seen > 0
        # No pattern-gate memoization: the ensemble was consulted for
        # every window the runtime assembled, and nothing was remembered
        # in the runtime's own libraries.
        assert ensemble.member_scored_count("rules") == windows_seen
        assert runtime.stats.library_hits == 0
        remembered = sum(len(library) for shard in runtime.shards
                         for library in shard.libraries.values())
        assert remembered == 0

    def test_day0_reports_carry_no_model(self):
        stream = day0_stream()
        reports, _, ensemble = run_replay(stream, shards=1)
        assert ensemble.member_error_count("model") > 0
        assert all(report.is_anomalous for report in reports)

    def test_threaded_mode_serves_the_ensemble(self):
        stream = day0_stream()
        registry = MetricsRegistry()
        ensemble = ensemble_from_spec("ewma,rules:max", registry=registry)
        runtime = InferenceRuntime.from_ensemble(
            ensemble, shards=2, window=10, step=5, max_batch=8,
            threaded=True, registry=registry,
        )
        runtime.start()
        for record in stream.records:
            runtime.submit(record)
        reports = runtime.stop()
        assert runtime.stats.windows_seen > 0
        assert all(report.is_anomalous for report in reports)


class TestOnlineServiceEnsemble:
    def test_day0_service_without_model(self):
        stream = day0_stream()
        registry = MetricsRegistry()
        service = OnlineService(
            model=None, registry=registry,
            ensemble=ensemble_from_spec("ewma,lof,rules,model:max",
                                        registry=registry),
        )
        reports = service.process(stream.records)
        assert reports
        assert all(report.is_anomalous for report in reports)
        assert service.stats.windows_seen > 0

    def test_no_model_and_no_ensemble_is_rejected(self):
        with pytest.raises(ValueError, match="fitted LogSynergy model"):
            OnlineService(model=None)


class TestExperimentAdapter:
    def test_run_ensemble_on_shared_splits(self):
        from repro.evaluation.experiment import CrossSystemExperiment

        experiment = CrossSystemExperiment(
            "bgl", ["spirit"], scale=0.002, n_source=50, n_target=40,
            max_test=60, seed=3,
        )
        result = experiment.run(["detectors:ewma,lof,rules:max"])
        method = result.results[0]
        assert method.method == "Ensemble[ewma+lof+rules:max]"
        assert method.target == "bgl"
        assert 0.0 <= method.metrics.f1 <= 1.0
        assert method.metrics.f1 > 0.5  # planted anomalies are recoverable

    def test_run_ensemble_accepts_instance(self):
        from repro.evaluation.experiment import CrossSystemExperiment

        experiment = CrossSystemExperiment(
            "bgl", ["spirit"], scale=0.002, n_source=50, n_target=40,
            max_test=60, seed=3,
        )
        ensemble = ensemble_from_spec("rules", registry=MetricsRegistry())
        method = experiment.run_ensemble(ensemble, method_name="rules-only")
        assert method.method == "rules-only"
        labels = experiment.test_labels
        assert labels.shape[0] == len(experiment.target_test)
        assert isinstance(method.metrics.f1, float)
