"""Combiner math: vote tie-break determinism, max monotonicity,
stacker refit determinism, warmup exclusion and error degradation."""

import numpy as np
import pytest

from repro.detectors import (
    Detector,
    DetectorError,
    Ensemble,
    LogisticStacker,
)
from repro.obs import MetricsRegistry

from .test_members import make_window


class FixedDetector(Detector):
    """Scripted member: returns queued scores (or raises on None)."""

    warmup_windows = 0

    def __init__(self, name, scores):
        self.name = name
        self._scores = list(scores)
        self.calls = 0

    def score_window(self, system, window):
        self.calls += 1
        score = self._scores.pop(0) if self._scores else 0.0
        if score is None:
            raise DetectorError(f"{self.name} scripted failure")
        return score


class WarmupDetector(FixedDetector):
    warmup_windows = 2


def ensemble_of(scripts, mode, **kwargs):
    members = [FixedDetector(name, scores) for name, scores in scripts]
    return Ensemble(members, mode=mode, registry=MetricsRegistry(), **kwargs)


WINDOW = make_window(["msg one", "msg two"])


class TestConstruction:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="at least one"):
            Ensemble([], registry=MetricsRegistry())
        with pytest.raises(ValueError, match="duplicate"):
            Ensemble([FixedDetector("a", []), FixedDetector("a", [])],
                     registry=MetricsRegistry())

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown ensemble mode"):
            Ensemble([FixedDetector("a", [])], mode="median",
                     registry=MetricsRegistry())


class TestVote:
    def test_fraction_of_live_members(self):
        ensemble = ensemble_of(
            [("a", [0.9]), ("b", [0.8]), ("c", [0.1])], "vote")
        assert ensemble.score_window("sys", WINDOW) == pytest.approx(2 / 3)

    def test_exact_tie_resolves_by_mean_score(self):
        # Two of four live members vote anomalous: the 0.5 fraction is
        # ambiguous against a 0.5 threshold, so the tie resolves by the
        # mean raw score — deterministically, never by member order.
        high = ensemble_of(
            [("a", [0.9]), ("b", [0.8]), ("c", [0.4]), ("d", [0.4])], "vote")
        low = ensemble_of(
            [("a", [0.6]), ("b", [0.6]), ("c", [0.1]), ("d", [0.1])], "vote")
        assert high.score_window("sys", WINDOW) == pytest.approx(0.625)
        assert low.score_window("sys", WINDOW) == pytest.approx(0.35)

    def test_tie_break_is_order_invariant(self):
        scripts = [("a", [0.9]), ("b", [0.1]), ("c", [0.8]), ("d", [0.2])]
        forward = ensemble_of(scripts, "vote").score_window("sys", WINDOW)
        reversed_ = ensemble_of(scripts[::-1], "vote").score_window("sys", WINDOW)
        assert forward == reversed_


class TestMax:
    def test_any_member_firing_fires_the_portfolio(self):
        ensemble = ensemble_of(
            [("a", [0.05]), ("b", [0.97]), ("c", [0.1])], "max")
        assert ensemble.score_window("sys", WINDOW) == pytest.approx(0.97)

    def test_monotone_in_every_member_score(self):
        base = [0.2, 0.5, 0.3]
        reference = ensemble_of(
            list(zip("abc", ([s] for s in base))), "max"
        ).score_window("sys", WINDOW)
        for index in range(3):
            raised = list(base)
            raised[index] += 0.3
            bumped = ensemble_of(
                list(zip("abc", ([s] for s in raised))), "max"
            ).score_window("sys", WINDOW)
            assert bumped >= reference

    def test_all_members_degraded_scores_zero(self):
        ensemble = ensemble_of([("a", [None]), ("b", [None])], "max")
        assert ensemble.score_window("sys", WINDOW) == 0.0


class TestDegradationAndWarmup:
    def test_degraded_member_is_excluded_and_counted(self):
        ensemble = ensemble_of([("a", [None, None]), ("b", [0.9, 0.8])], "max")
        assert ensemble.score_window("sys", WINDOW) == pytest.approx(0.9)
        assert ensemble.score_window("sys", WINDOW) == pytest.approx(0.8)
        assert ensemble.member_error_count("a") == 2
        assert ensemble.member_error_count("b") == 0
        assert ensemble.member_scored_count("b") == 2

    def test_warming_member_builds_state_but_is_excluded(self):
        members = [WarmupDetector("warm", [0.99, 0.99, 0.99]),
                   FixedDetector("live", [0.1, 0.1, 0.1])]
        ensemble = Ensemble(members, mode="max", registry=MetricsRegistry())
        first = ensemble.score_window("sys", WINDOW)
        second = ensemble.score_window("sys", WINDOW)
        third = ensemble.score_window("sys", WINDOW)
        # Two warmup windows consulted-but-excluded, then it votes.
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(0.1)
        assert third == pytest.approx(0.99)
        assert members[0].calls == 3

    def test_warmup_is_per_system(self):
        members = [WarmupDetector("warm", [0.9] * 6)]
        ensemble = Ensemble(members, mode="max", registry=MetricsRegistry())
        ensemble.score_window("a", WINDOW)
        ensemble.score_window("a", WINDOW)
        assert ensemble.score_window("a", WINDOW) == pytest.approx(0.9)
        # A fresh system starts its own warmup from zero.
        assert ensemble.score_window("b", WINDOW) == 0.0


class TestStacker:
    def _training_data(self, seed=0):
        rng = np.random.default_rng(seed)
        matrix = rng.random((64, 3))
        labels = (matrix.mean(axis=1) > 0.55).astype(np.float64)
        return matrix, labels

    def test_refit_is_byte_identical_under_fixed_seed(self):
        matrix, labels = self._training_data()
        first = LogisticStacker(3, seed=11)
        second = LogisticStacker(3, seed=11)
        first.fit(matrix, labels)
        second.fit(matrix, labels)
        assert first.weights.tobytes() == second.weights.tobytes()
        assert first.bias == second.bias

    def test_different_seed_differs(self):
        matrix, labels = self._training_data()
        a = LogisticStacker(3, seed=1)
        b = LogisticStacker(3, seed=2)
        a.fit(matrix, labels)
        b.fit(matrix, labels)
        assert a.weights.tobytes() != b.weights.tobytes()

    def test_predict_before_fit_raises(self):
        with pytest.raises(DetectorError):
            LogisticStacker(2).predict(np.array([0.5, 0.5]))

    def test_learns_a_separable_rule(self):
        matrix, labels = self._training_data()
        stacker = LogisticStacker(3, seed=0)
        stacker.fit(matrix, labels)
        predictions = [stacker.predict(row) > 0.5 for row in matrix]
        accuracy = np.mean(np.array(predictions) == labels.astype(bool))
        assert accuracy > 0.8

    def test_single_class_fit_is_refused(self):
        ensemble = ensemble_of([("a", [0.1] * 4)], "stacker")
        windows = [WINDOW] * 4
        with pytest.raises(ValueError, match="both classes"):
            ensemble.fit("sys", windows, [0, 0, 0, 0])

    def test_ensemble_fit_then_score(self):
        scripts = [("hot", [0.9, 0.9, 0.1, 0.1, 0.9, 0.1]),
                   ("cold", [0.8, 0.7, 0.2, 0.3, 0.85, 0.25])]
        ensemble = ensemble_of(scripts, "stacker")
        ensemble.fit("sys", [WINDOW] * 4, [1, 1, 0, 0])
        anomalous = ensemble.score_window("sys", WINDOW)
        normal = ensemble.score_window("sys", WINDOW)
        assert anomalous > normal


class TestCounters:
    def test_ensemble_rollups(self):
        registry = MetricsRegistry()
        members = [FixedDetector("a", [0.9, 0.2]), FixedDetector("b", [None, 0.1])]
        ensemble = Ensemble(members, mode="max", registry=registry)
        ensemble.score_window("sys", WINDOW)
        ensemble.score_window("sys", WINDOW)
        assert registry.counter("detectors.ensemble.windows").value == 2
        assert registry.counter("detectors.ensemble.anomalous").value == 1
        assert registry.counter("detectors.ensemble.member_errors").value == 1
        assert registry.counter("detectors.a.windows").value == 2
        assert registry.counter("detectors.a.anomalous").value == 1
        assert registry.counter("detectors.b.errors").value == 1
