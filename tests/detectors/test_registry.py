"""``--detectors`` spec grammar: parsing, defaults, coercion, errors."""

import pytest

from repro.detectors import (
    DEFAULT_DETECTORS_SPEC,
    DETECTOR_BUILDERS,
    EwmaRateDetector,
    ModelDetector,
    build_detector,
    ensemble_from_spec,
    parse_detectors_spec,
)
from repro.obs import MetricsRegistry


class TestParse:
    def test_members_only_defaults_to_max(self):
        members, mode, options = parse_detectors_spec("ewma,lof")
        assert members == ["ewma", "lof"]
        assert mode == "max"
        assert options == {}

    def test_mode_and_options(self):
        members, mode, options = parse_detectors_spec(
            "ewma,lof,rules,model:stacker,threshold=0.6")
        assert members == ["ewma", "lof", "rules", "model"]
        assert mode == "stacker"
        assert options == {"threshold": 0.6}

    def test_options_without_mode(self):
        # The first tail token carries "=", so the mode stays default.
        _, mode, options = parse_detectors_spec("ewma:threshold=0.7")
        assert mode == "max"
        assert options == {"threshold": 0.7}

    def test_case_and_whitespace_insensitive(self):
        members, mode, _ = parse_detectors_spec(" EWMA , Rules : VOTE ")
        assert members == ["ewma", "rules"]
        assert mode == "vote"

    def test_default_spec_parses(self):
        members, mode, _ = parse_detectors_spec(DEFAULT_DETECTORS_SPEC)
        assert set(members) == set(DETECTOR_BUILDERS)
        assert mode == "max"

    @pytest.mark.parametrize("spec, message", [
        ("", "empty"),
        ("bogus", "unknown detectors"),
        ("ewma,ewma", "duplicate"),
        ("ewma:median", "unknown ensemble mode"),
        ("ewma:vote,threshold", "malformed ensemble option"),
        ("ewma:vote,=0.5", "malformed ensemble option"),
    ])
    def test_rejects_malformed_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_detectors_spec(spec)


class TestBuild:
    def test_build_detector_by_name(self):
        assert isinstance(build_detector("ewma"), EwmaRateDetector)
        with pytest.raises(ValueError, match="unknown detector"):
            build_detector("bogus")

    def test_ensemble_from_spec_wires_members_and_options(self):
        ensemble = ensemble_from_spec("ewma,model:vote,threshold=0.8",
                                      registry=MetricsRegistry())
        assert [m.name for m in ensemble.members] == ["ewma", "model"]
        assert ensemble.mode == "vote"
        assert ensemble.threshold == 0.8

    def test_model_member_gets_the_pipeline(self):
        sentinel = object()
        ensemble = ensemble_from_spec("model", pipeline=sentinel,
                                      registry=MetricsRegistry())
        member = ensemble.members[0]
        assert isinstance(member, ModelDetector)
        assert member.pipeline is sentinel

    def test_unknown_option_is_a_value_error(self):
        with pytest.raises(ValueError, match="bad options"):
            ensemble_from_spec("ewma:vote,zoom=3", registry=MetricsRegistry())
