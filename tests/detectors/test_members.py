"""Portfolio member tests: calibration math, EWMA spikes, LOF novelty,
rule matching and the learned-model adapter's degradation contract."""

import math
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.detectors import (
    DetectorError,
    EwmaRateDetector,
    LofLiteDetector,
    ModelDetector,
    RuleDetector,
    calibrate,
    window_span_seconds,
)
from repro.logs.generator import LogRecord


def make_window(messages, *, start=0.0, spacing=1.0, system="sys"):
    base = datetime(2025, 1, 1)
    return [
        LogRecord(
            timestamp=base + timedelta(seconds=start + index * spacing),
            system=system,
            host=f"{system}-host01",
            severity="INFO",
            message=message,
            raw=message,
            is_anomalous=False,
            concept="concept.test",
        )
        for index, message in enumerate(messages)
    ]


class TestCalibrate:
    def test_logistic_shape(self):
        assert calibrate(3.0, center=3.0) == pytest.approx(0.5)
        assert calibrate(100.0) == pytest.approx(1.0, abs=1e-6)
        assert calibrate(-100.0) == pytest.approx(0.0, abs=1e-6)

    def test_monotone(self):
        values = [calibrate(d) for d in (0.0, 1.0, 2.0, 3.0, 4.0, 8.0)]
        assert values == sorted(values)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            calibrate(1.0, scale=0.0)


class TestWindowSpan:
    def test_datetime_timestamps(self):
        window = make_window(["a", "b", "c"], spacing=2.0)
        assert window_span_seconds(window) == pytest.approx(4.0)

    def test_short_window(self):
        assert window_span_seconds(make_window(["a"])) == 0.0
        assert window_span_seconds([]) == 0.0


class TestEwmaRateDetector:
    def _steady_windows(self, count, spacing):
        return [make_window([f"m{i}-{j}" for j in range(10)],
                            start=i * 10 * spacing, spacing=spacing)
                for i in range(count)]

    def test_burst_scores_above_steady(self):
        detector = EwmaRateDetector()
        steady = 0.0
        for window in self._steady_windows(12, spacing=1.0):
            steady = detector.score_window("sys", window)
        burst = detector.score_window(
            "sys", make_window([f"b{j}" for j in range(10)],
                               start=200.0, spacing=0.01))
        assert burst > max(steady, 0.9)

    def test_per_system_state_is_independent(self):
        detector = EwmaRateDetector()
        for window in self._steady_windows(8, spacing=1.0):
            detector.score_window("a", window)
        # A fresh system's first window seeds its own baseline: no score.
        first = detector.score_window(
            "b", make_window(["x"] * 10, spacing=0.01))
        assert first == 0.0

    def test_slower_than_baseline_scores_zero(self):
        detector = EwmaRateDetector()
        for window in self._steady_windows(8, spacing=1.0):
            detector.score_window("sys", window)
        quiet = detector.score_window(
            "sys", make_window(["q"] * 10, start=500.0, spacing=10.0))
        assert quiet == 0.0

    def test_declares_warmup(self):
        assert EwmaRateDetector().warmup_windows > 0


class TestLofLiteDetector:
    def test_novel_content_scores_above_repeats(self):
        detector = LofLiteDetector(k=2)
        repeated = make_window(["connection from 10.0.0.1 established"] * 10)
        for _ in range(10):
            familiar = detector.score_window("sys", repeated)
        novel = detector.score_window(
            "sys", make_window(["kernel panic unrecoverable machine check"] * 10))
        assert novel > familiar

    def test_reference_capacity_is_bounded(self):
        detector = LofLiteDetector(k=2, capacity=8)
        for index in range(30):
            detector.score_window(
                "sys", make_window([f"event number {index}"] * 10))
        assert len(detector._references["sys"].vectors) <= 8


class TestRuleDetector:
    def test_failure_language_fires(self):
        detector = RuleDetector()
        score = detector.score_window(
            "sys", make_window(["data corruption detected on volume 3",
                                "heartbeat ok", "heartbeat ok"]))
        assert score >= 0.8

    def test_clean_window_is_silent(self):
        detector = RuleDetector()
        score = detector.score_window(
            "sys", make_window(["session opened for user alpha",
                                "heartbeat ok"]))
        assert score == 0.0

    def test_score_grows_with_flagged_lines(self):
        detector = RuleDetector()
        one = detector.score_window(
            "sys", make_window(["write failed on disk 1", "ok", "ok"]))
        many = detector.score_window(
            "sys", make_window(["write failed on disk 1",
                                "write failed on disk 2",
                                "fatal error on node 3"]))
        assert many > one
        assert many <= 1.0

    def test_verdicts_are_memoized_per_system(self):
        detector = RuleDetector()
        window = make_window(["timeout exceeded on link 9"] * 4)
        detector.score_window("sys", window)
        library = detector.library_of("sys")
        assert library.known_anomalous_patterns() > 0


class TestModelDetector:
    def test_day0_without_pipeline_degrades(self):
        detector = ModelDetector()
        assert not detector.available
        with pytest.raises(DetectorError):
            detector.score_window("sys", make_window(["boot ok"] * 10))

    def test_pipeline_exceptions_become_detector_errors(self):
        class ExplodingPipeline:
            model = object()

            def detect_stream(self, messages, timestamps=None):
                raise RuntimeError("featurizer corrupted")

        detector = ModelDetector(pipeline=ExplodingPipeline())
        assert detector.available
        with pytest.raises(DetectorError):
            detector.score_window("sys", make_window(["boot ok"] * 10))

    def test_report_score_is_clamped(self):
        class Report:
            score = 7.5

        class Pipeline:
            model = object()

            def detect_stream(self, messages, timestamps=None):
                return Report()

        detector = ModelDetector(pipeline=Pipeline())
        score = detector.score_window("sys", make_window(["x"] * 10))
        assert score == 1.0
