"""Sliding-window sequencer tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logs.generator import generate_logs
from repro.logs.sequences import sliding_windows


class TestSlidingWindows:
    def test_window_and_step(self):
        records = generate_logs("bgl", 100, seed=0)
        sequences = sliding_windows(records, window=10, step=5)
        assert len(sequences) == 19
        assert all(len(s) == 10 for s in sequences)
        assert sequences[1].start_index == 5

    def test_short_stream_yields_nothing(self):
        records = generate_logs("bgl", 5, seed=0)
        assert sliding_windows(records, window=10, step=5) == []

    def test_exact_window(self):
        records = generate_logs("bgl", 10, seed=0)
        assert len(sliding_windows(records, window=10, step=5)) == 1

    def test_label_is_any_anomalous(self):
        records = generate_logs("bgl", 5000, seed=1)
        for sequence in sliding_windows(records):
            expected = int(any(r.is_anomalous for r in sequence.records))
            assert sequence.label == expected

    def test_system_propagated(self):
        records = generate_logs("spirit", 30, seed=0)
        for sequence in sliding_windows(records):
            assert sequence.system == "spirit"

    def test_messages_accessor(self):
        records = generate_logs("bgl", 10, seed=0)
        sequence = sliding_windows(records)[0]
        assert sequence.messages == [r.message for r in records[:10]]
        assert sequence.concepts == [r.concept for r in records[:10]]

    def test_invalid_params(self):
        records = generate_logs("bgl", 20, seed=0)
        with pytest.raises(ValueError):
            sliding_windows(records, window=0)
        with pytest.raises(ValueError):
            sliding_windows(records, step=0)

    @given(st.integers(10, 60), st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_window_count_formula(self, n, window, step):
        records = generate_logs("bgl", n, seed=0)
        sequences = sliding_windows(records, window=window, step=step)
        expected = max(0, (n - window) // step + 1)
        assert len(sequences) == expected
