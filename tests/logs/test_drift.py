"""Drift injection tests (failure-injection substrate)."""

import pytest

from repro.logs import generate_logs
from repro.logs.drift import (
    DRIFT_SYNONYMS, inject_field, inject_label_noise, reword_records,
)


def _records(n=300, seed=0):
    return generate_logs("system_c", n, seed=seed)


class TestReword:
    def test_labels_preserved(self):
        records = _records()
        drifted = reword_records(records, probability=1.0, seed=1)
        assert [r.is_anomalous for r in drifted] == [r.is_anomalous for r in records]
        assert [r.concept for r in drifted] == [r.concept for r in records]

    def test_full_probability_rewrites_eligible_tokens(self):
        records = _records()
        drifted = reword_records(records, probability=1.0, seed=1)
        changed = sum(1 for a, b in zip(records, drifted) if a.message != b.message)
        assert changed > 0
        for record in drifted:
            for token in record.message.lower().split():
                assert token.strip(",.:;()") not in DRIFT_SYNONYMS or token == ""

    def test_zero_probability_is_identity(self):
        records = _records()
        drifted = reword_records(records, probability=0.0, seed=1)
        assert [r.message for r in drifted] == [r.message for r in records]

    def test_raw_updated_with_message(self):
        records = _records()
        for record in reword_records(records, probability=1.0, seed=2):
            assert record.message in record.raw

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            reword_records([], probability=1.5)

    def test_deterministic(self):
        records = _records()
        a = reword_records(records, probability=0.5, seed=3)
        b = reword_records(records, probability=0.5, seed=3)
        assert [r.message for r in a] == [r.message for r in b]


class TestLabelNoise:
    def test_flip_rate_approximate(self):
        records = _records(2000)
        noisy = inject_label_noise(records, flip_rate=0.1, seed=4)
        flips = sum(1 for a, b in zip(records, noisy) if a.is_anomalous != b.is_anomalous)
        assert 120 < flips < 280  # ~200 expected

    def test_zero_rate_identity(self):
        records = _records()
        noisy = inject_label_noise(records, flip_rate=0.0)
        assert [r.is_anomalous for r in noisy] == [r.is_anomalous for r in records]

    def test_text_unchanged(self):
        records = _records()
        noisy = inject_label_noise(records, flip_rate=0.5, seed=5)
        assert [r.message for r in noisy] == [r.message for r in records]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            inject_label_noise([], flip_rate=-0.1)


class TestFieldInjection:
    def test_field_appended(self):
        records = _records(50)
        injected = inject_field(records, field_text="trace=xyz", probability=1.0)
        assert all(r.message.endswith("trace=xyz") for r in injected)

    def test_partial_probability(self):
        records = _records(500)
        injected = inject_field(records, probability=0.5, seed=6)
        touched = sum(1 for r in injected if r.message.endswith("trace_id=<new>"))
        assert 180 < touched < 320

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            inject_field([], probability=2.0)


class TestDriftEndToEnd:
    def test_lei_robust_to_rewording(self):
        """LEI should keep mapping most reworded messages to the right
        concept — the synonym drift stays inside the LLM's semantic reach."""
        from repro.llm import SimulatedLLM, build_interpretation_prompt
        from repro.logs import concept_by_name

        llm = SimulatedLLM()
        records = _records(150, seed=7)
        drifted = reword_records(records, probability=1.0, seed=8)
        correct = 0
        for record in drifted:
            prompt = build_interpretation_prompt("system_c", record.message)
            if llm.complete(prompt) == concept_by_name(record.concept).canonical:
                correct += 1
        assert correct / len(drifted) > 0.6
