"""Log file I/O tests."""

import pytest

from repro.logs.generator import generate_logs
from repro.logs.loader import load_records, read_raw_log_file, save_records


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        records = generate_logs("bgl", 50, seed=0)
        path = tmp_path / "bgl.jsonl"
        assert save_records(records, path) == 50
        loaded = load_records(path)
        assert len(loaded) == 50
        for a, b in zip(records, loaded):
            assert a.message == b.message
            assert a.is_anomalous == b.is_anomalous
            assert a.concept == b.concept
            assert a.timestamp == b.timestamp

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "file.jsonl"
        save_records(generate_logs("bgl", 3, seed=0), path)
        assert path.exists()

    def test_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=":1:"):
            load_records(path)

    def test_missing_keys_raises(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text('{"ok": 1}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_records(path)

    def test_skips_blank_lines(self, tmp_path):
        records = generate_logs("bgl", 2, seed=0)
        path = tmp_path / "blank.jsonl"
        save_records(records, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_records(path)) == 2


class TestRawLogReader:
    def test_loghub_convention(self, tmp_path):
        path = tmp_path / "raw.log"
        path.write_text(
            "- 1117838570 normal line one\n"
            "KERNDTLB 1117838571 anomalous line\n"
            "- 1117838572 normal line two\n"
        )
        records = read_raw_log_file(path, system="bgl")
        assert [r.is_anomalous for r in records] == [True, False, True] or \
               [r.is_anomalous for r in records] == [False, True, False]
        # Normal lines start with "-": exactly one anomaly here.
        assert sum(r.is_anomalous for r in records) == 1
        anomalous = [r for r in records if r.is_anomalous][0]
        assert anomalous.message.startswith("1117838571")

    def test_normal_prefix_stripped(self, tmp_path):
        path = tmp_path / "raw.log"
        path.write_text("- hello world\n")
        record = read_raw_log_file(path, system="bgl")[0]
        assert record.message == "hello world"
        assert not record.is_anomalous
