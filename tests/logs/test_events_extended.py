"""Extended concept-catalog invariants."""

import re

from repro.logs.events import CONCEPTS, SYSTEM_NAMES, EventKind


class TestCanonicalQuality:
    def test_canonicals_unique(self):
        canonicals = [c.canonical for c in CONCEPTS]
        assert len(set(canonicals)) == len(canonicals)

    def test_canonicals_have_no_wildcards_or_params(self):
        for concept in CONCEPTS:
            assert "<*>" not in concept.canonical
            assert not re.search(r"\d", concept.canonical), concept.name

    def test_canonicals_are_single_sentences(self):
        for concept in CONCEPTS:
            assert concept.canonical.count(".") == 1
            assert "\n" not in concept.canonical

    def test_categories_nonempty(self):
        assert all(c.category for c in CONCEPTS)


class TestPhraseQuality:
    def test_phrases_nonempty_strings(self):
        for concept in CONCEPTS:
            for system, phrase in concept.phrases.items():
                assert phrase.strip(), (concept.name, system)

    def test_phrases_unique_within_system(self):
        """Two concepts on the same system must not share a surface phrase,
        or Drain and LEI could not distinguish them."""
        for system in SYSTEM_NAMES:
            phrases = [
                c.phrases[system] for c in CONCEPTS if c.supports(system)
            ]
            assert len(set(phrases)) == len(phrases), system

    def test_every_concept_on_at_least_two_systems_or_anomalous(self):
        """Most concepts exist on multiple systems (that is the transfer
        substrate); single-system concepts are allowed but rare."""
        multi = sum(1 for c in CONCEPTS if len(c.phrases) >= 2)
        assert multi / len(CONCEPTS) > 0.9

    def test_catalog_size(self):
        anomalous = [c for c in CONCEPTS if c.kind is EventKind.ANOMALOUS]
        normal = [c for c in CONCEPTS if c.kind is EventKind.NORMAL]
        assert len(anomalous) >= 20
        assert len(normal) >= 25
