"""Scenario catalog + generator/fuzzer workload-shape tests."""

import numpy as np
import pytest

from repro.logs import (
    SCENARIOS,
    ScenarioProfile,
    VOLUME_STORM_CONCEPT,
    day0_profile,
    generate_logs,
    get_scenario,
)
from repro.testing.fuzzer import LogStreamFuzzer


class TestScenarioProfile:
    def test_catalog_members(self):
        assert set(SCENARIOS) == {
            "steady", "volume-burst", "template-drift", "seasonal", "day0",
        }

    def test_get_scenario_resolution(self):
        assert get_scenario(None) is None
        profile = get_scenario("volume-burst")
        assert profile is SCENARIOS["volume-burst"]
        assert get_scenario(profile) is profile
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("tsunami")

    def test_storm_math(self):
        storm = SCENARIOS["volume-burst"]
        assert not storm.in_storm(0.2)
        assert storm.in_storm(0.5)
        assert storm.rate_multiplier(0.5) == pytest.approx(8.0)
        assert storm.rate_multiplier(0.2) == pytest.approx(1.0)

    def test_seasonal_math(self):
        seasonal = SCENARIOS["seasonal"]
        multipliers = [seasonal.rate_multiplier(t)
                       for t in np.linspace(0.0, 1.0, 101)]
        assert max(multipliers) == pytest.approx(1.6, abs=0.01)
        assert min(multipliers) == pytest.approx(0.4, abs=0.01)

    def test_drift_ramp(self):
        drift = SCENARIOS["template-drift"]
        assert drift.drift_probability(0.0) == 0.0
        assert drift.drift_probability(1.0) == pytest.approx(0.8)
        assert drift.drift_probability(0.5) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError, match="storm_span"):
            ScenarioProfile("x", "bad", storm_span=(0.6, 0.5))
        with pytest.raises(ValueError, match="storm_rate"):
            ScenarioProfile("x", "bad", storm_span=(0.1, 0.2), storm_rate=0.5)
        with pytest.raises(ValueError, match="drift_peak"):
            ScenarioProfile("x", "bad", drift_peak=1.5)
        with pytest.raises(ValueError, match="seasonal_amplitude"):
            ScenarioProfile("x", "bad", seasonal_amplitude=1.0)


class TestGeneratorScenarios:
    def test_steady_is_byte_identical_to_no_scenario(self):
        baseline = generate_logs("bgl", 80, seed=5)
        steady = generate_logs("bgl", 80, seed=5, scenario="steady")
        assert [r.raw for r in baseline] == [r.raw for r in steady]

    def test_volume_burst_plants_normal_looking_storm(self):
        records = generate_logs("bgl", 300, seed=5, scenario="volume-burst")
        storm = [r for r in records if r.concept == VOLUME_STORM_CONCEPT]
        assert storm
        assert all(r.is_anomalous for r in storm)
        # Storm phrasing is normal: severity comes from the normal band.
        severities = {r.severity for r in storm}
        anomalous_severities = {r.severity for r in records
                                if r.is_anomalous and
                                r.concept != VOLUME_STORM_CONCEPT}
        assert severities <= {"INFO"} or not (severities & anomalous_severities)

    def test_volume_burst_compresses_storm_arrivals(self):
        records = generate_logs("bgl", 400, seed=5, scenario="volume-burst")
        storm = [r for r in records if r.concept == VOLUME_STORM_CONCEPT]
        other = [r for r in records if r.concept != VOLUME_STORM_CONCEPT]
        gap = lambda rs: np.mean([
            (b.timestamp - a.timestamp).total_seconds()
            for a, b in zip(rs, rs[1:])
        ])
        assert gap(storm) < gap(other) / 3

    def test_template_drift_rewords_but_keeps_labels(self):
        baseline = generate_logs("bgl", 200, seed=5)
        drifted = generate_logs("bgl", 200, seed=5, scenario="template-drift")
        assert [r.is_anomalous for r in baseline] == \
            [r.is_anomalous for r in drifted]
        changed = sum(1 for a, b in zip(baseline, drifted)
                      if a.message != b.message)
        assert changed > 0
        # Drift ramps: the back half rewords more than the front half.
        half = len(baseline) // 2
        front = sum(1 for a, b in zip(baseline[:half], drifted[:half])
                    if a.message != b.message)
        back = sum(1 for a, b in zip(baseline[half:], drifted[half:])
                   if a.message != b.message)
        assert back > front

    def test_determinism_per_scenario(self):
        for name in SCENARIOS:
            first = generate_logs("bgl", 60, seed=9, scenario=name)
            second = generate_logs("bgl", 60, seed=9, scenario=name)
            assert [r.raw for r in first] == [r.raw for r in second]


class TestDay0Profile:
    def test_fresh_name_existing_dialect(self):
        profile = day0_profile("greenfield", dialect="spirit")
        assert profile.name == "greenfield"
        assert profile.dialect_name == "spirit"
        assert profile.host_prefix == "greenfield-"

    def test_generates_under_the_new_name(self):
        records = generate_logs(day0_profile("greenfield"), 40, seed=1)
        assert {r.system for r in records} == {"greenfield"}
        baseline = generate_logs("bgl", 40, seed=1)
        # Same dialect, same seed: the phrasing matches the base system.
        assert [r.message for r in records] == [r.message for r in baseline]


class TestFuzzerScenarios:
    def test_no_scenario_path_unchanged(self):
        # scenario=None and scenario="steady" must agree byte-for-byte:
        # the scenario hooks may not perturb the RNG draw sequence.
        plain = LogStreamFuzzer(systems=("bgl",)).generate(3)
        steady = LogStreamFuzzer(systems=("bgl",), scenario="steady").generate(3)
        assert [r.raw for r in plain.records] == [r.raw for r in steady.records]

    def test_volume_burst_windows_become_ground_truth(self):
        fuzzer = LogStreamFuzzer(systems=("bgl",), lines_per_system=200,
                                 anomaly_bursts=0, scenario="volume-burst")
        stream = fuzzer.generate(3)
        storm = [r for r in stream.records
                 if r.concept == VOLUME_STORM_CONCEPT]
        assert storm
        assert all(r.is_anomalous for r in storm)
        labels = stream.expected_window_labels(10, 5)["bgl"]
        assert any(labels)

    def test_planted_bursts_take_precedence_over_storm(self):
        fuzzer = LogStreamFuzzer(systems=("bgl",), lines_per_system=200,
                                 anomaly_bursts=3, scenario="volume-burst")
        stream = fuzzer.generate(3)
        planted_concepts = {r.concept for r in stream.records
                            if r.is_anomalous and
                            r.concept != VOLUME_STORM_CONCEPT}
        assert planted_concepts  # planted bursts survive the storm
