"""Event-concept catalog tests."""

import pytest

from repro.logs.events import (
    CONCEPTS, EventKind, SYSTEM_NAMES, anomalous_concepts, concept_by_name,
    concepts_for_system, normal_concepts,
)


class TestCatalogStructure:
    def test_names_unique(self):
        names = [c.name for c in CONCEPTS]
        assert len(names) == len(set(names))

    def test_every_concept_has_canonical(self):
        for concept in CONCEPTS:
            assert concept.canonical.strip()
            assert concept.canonical.endswith(".")

    def test_phrases_reference_known_systems(self):
        for concept in CONCEPTS:
            assert set(concept.phrases) <= set(SYSTEM_NAMES)

    def test_kinds_partition(self):
        assert set(anomalous_concepts()) | set(normal_concepts()) == set(CONCEPTS)
        assert not set(anomalous_concepts()) & set(normal_concepts())

    def test_lookup_by_name(self):
        concept = concept_by_name("network_interruption")
        assert concept.kind is EventKind.ANOMALOUS

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            concept_by_name("nonexistent_event")


class TestSystemCoverage:
    def test_every_system_has_both_kinds(self):
        for system in SYSTEM_NAMES:
            assert concepts_for_system(system, EventKind.NORMAL), system
            assert concepts_for_system(system, EventKind.ANOMALOUS), system

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError):
            concepts_for_system("windows_nt")

    def test_coverage_asymmetry_for_fig6(self):
        """Supercomputers must cover more anomaly types than System B/C —
        this asymmetry drives the paper's §V lesson (Fig 6)."""
        bgl = {c.name for c in concepts_for_system("bgl", EventKind.ANOMALOUS)}
        spirit = {c.name for c in concepts_for_system("spirit", EventKind.ANOMALOUS)}
        system_b = {c.name for c in concepts_for_system("system_b", EventKind.ANOMALOUS)}
        assert len(bgl | spirit) > len(system_b)

    def test_shared_concepts_across_groups_exist(self):
        """Some anomalies must exist in both HPC and CDMS dialects, or
        cross-group transfer (Fig 6) would be impossible."""
        hpc = {c.name for c in concepts_for_system("spirit", EventKind.ANOMALOUS)}
        cdms = {c.name for c in concepts_for_system("system_c", EventKind.ANOMALOUS)}
        assert hpc & cdms


class TestDialectDivergence:
    def test_same_concept_different_surface(self):
        """The Table I phenomenon: shared semantics, divergent syntax."""
        concept = concept_by_name("network_interruption")
        phrases = [p.lower() for p in concept.phrases.values()]
        # No phrase is a duplicate of another.
        assert len(set(phrases)) == len(phrases)

    def test_dialect_vocabularies_differ(self):
        """Token overlap between dialect renderings of the same concept must
        be low — otherwise raw embeddings would transfer and LEI would
        show no benefit."""
        concept = concept_by_name("service_crash")
        token_sets = [
            frozenset(p.lower().replace("<*>", " ").split())
            for p in concept.phrases.values()
        ]
        for i, a in enumerate(token_sets):
            for b in token_sets[i + 1:]:
                jaccard = len(a & b) / len(a | b)
                assert jaccard < 0.5, (a, b)

    def test_supports(self):
        concept = concept_by_name("replication_lag")
        assert concept.supports("system_a")
        assert not concept.supports("bgl")
