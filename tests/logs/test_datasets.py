"""Dataset builder tests: Table III shape at reduced scale."""

import pytest

from repro.logs.datasets import (
    TABLE3_LINE_COUNTS, build_all_datasets, build_dataset, dataset_statistics,
)

# Sequence-level anomaly ratios from Table III.
_TABLE3_RATIOS = {
    "bgl": 0.1072,
    "spirit": 0.0093,
    "thunderbird": 0.0425,
    "system_a": 0.0020,
    "system_b": 0.0017,
    "system_c": 0.0377,
}


class TestBuildDataset:
    def test_scaled_line_count(self):
        ds = build_dataset("bgl", scale=0.01, seed=0)
        assert ds.num_logs == int(TABLE3_LINE_COUNTS["bgl"] * 0.01)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_dataset("bgl", scale=0.0)

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            build_dataset("hadoop")

    def test_display_name(self):
        assert build_dataset("system_a", scale=0.001).display_name == "System A"

    def test_accepts_display_name(self):
        assert build_dataset("System A", scale=0.001).system == "system_a"

    @pytest.mark.parametrize("system", list(_TABLE3_RATIOS))
    def test_anomaly_ratio_near_table3(self, system):
        """Sequence anomaly ratios must land within a factor of ~2.5 of the
        paper's values (sampling noise at reduced scale is expected)."""
        ds = build_dataset(system, scale=0.02, seed=1)
        target = _TABLE3_RATIOS[system]
        assert ds.num_anomalies > 0
        assert target / 2.5 < ds.anomaly_ratio < target * 2.5

    def test_ratio_ordering_matches_table3(self):
        """BGL must be the most anomalous, System A/B the least."""
        ratios = {
            name: build_dataset(name, scale=0.02, seed=2).anomaly_ratio
            for name in _TABLE3_RATIOS
        }
        assert ratios["bgl"] == max(ratios.values())
        assert ratios["system_b"] < ratios["thunderbird"]
        assert ratios["system_a"] < ratios["thunderbird"]

    def test_statistics_row(self):
        ds = build_dataset("spirit", scale=0.002, seed=0)
        row = dataset_statistics(ds)
        assert row["system"] == "Spirit"
        assert row["num_sequences"] == ds.num_sequences
        assert 0 <= row["anomaly_ratio"] <= 1


class TestBuildAll:
    def test_builds_six(self):
        datasets = build_all_datasets(scale=0.001, seed=0)
        assert set(datasets) == set(TABLE3_LINE_COUNTS)

    def test_seeds_differ_across_systems(self):
        datasets = build_all_datasets(scale=0.001, seed=0)
        first = datasets["bgl"].records[0].raw
        assert all(
            ds.records[0].raw != first for name, ds in datasets.items() if name != "bgl"
        ) or True  # messages differ by dialect anyway; assert no crash

    def test_labels_accessor(self):
        ds = build_dataset("bgl", scale=0.002, seed=0)
        labels = ds.labels()
        assert len(labels) == ds.num_sequences
        assert sum(labels) == ds.num_anomalies
