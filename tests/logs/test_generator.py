"""Log stream generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.logs.events import EventKind, concept_by_name
from repro.logs.generator import LogGenerator, generate_logs
from repro.logs.parameters import ParameterSampler
from repro.logs.systems import PROFILES


class TestGeneration:
    def test_count(self):
        assert len(generate_logs("bgl", 100, seed=0)) == 100

    def test_zero(self):
        assert generate_logs("bgl", 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            LogGenerator("bgl").generate(-1)

    def test_deterministic_per_seed(self):
        a = [r.raw for r in generate_logs("spirit", 50, seed=3)]
        b = [r.raw for r in generate_logs("spirit", 50, seed=3)]
        assert a == b

    def test_seed_changes_stream(self):
        a = [r.raw for r in generate_logs("spirit", 50, seed=3)]
        b = [r.raw for r in generate_logs("spirit", 50, seed=4)]
        assert a != b

    def test_timestamps_monotonic(self):
        records = generate_logs("system_a", 200, seed=1)
        stamps = [r.timestamp for r in records]
        assert stamps == sorted(stamps)

    def test_records_carry_profile_fields(self):
        record = generate_logs("system_b", 1, seed=0)[0]
        assert record.system == "system_b"
        assert record.host.startswith("cdms-b-")
        assert record.severity in ("I", "E")
        assert record.message in record.raw

    def test_no_unfilled_wildcards(self):
        for record in generate_logs("thunderbird", 300, seed=2):
            assert "<*>" not in record.message

    def test_labels_match_concept_kind(self):
        for record in generate_logs("bgl", 500, seed=5):
            concept = concept_by_name(record.concept)
            assert record.is_anomalous == (concept.kind is EventKind.ANOMALOUS)

    def test_repeat_probability_validated(self):
        with pytest.raises(ValueError):
            LogGenerator("bgl", repeat_probability=1.0)


class TestAnomalyEpisodes:
    def test_anomalies_cluster_in_bursts(self):
        records = generate_logs("bgl", 20_000, seed=7)
        flags = np.array([r.is_anomalous for r in records])
        anomalous = int(flags.sum())
        assert anomalous > 0
        # Count anomalous lines whose neighbour is also anomalous: with
        # bursts of >= 2 this is the majority; iid placement would make it
        # rare at this rate.
        adjacent = int((flags[1:] & flags[:-1]).sum())
        assert adjacent > anomalous * 0.3

    def test_only_supported_concepts_emitted(self):
        for record in generate_logs("system_b", 2000, seed=8):
            concept = concept_by_name(record.concept)
            assert concept.supports("system_b")

    def test_repetition_increases_redundancy(self):
        low = LogGenerator("spirit", seed=9, repeat_probability=0.0).generate(2000)
        high = LogGenerator("spirit", seed=9, repeat_probability=0.9).generate(2000)

        def distinct_runs(records):
            runs = 1
            for a, b in zip(records, records[1:]):
                if a.concept != b.concept:
                    runs += 1
            return runs

        assert distinct_runs(high) < distinct_runs(low)


class TestParameterSampler:
    def test_fill_replaces_all_wildcards(self):
        sampler = ParameterSampler(np.random.default_rng(0))
        filled = sampler.fill("a <*> b <*> c")
        assert "<*>" not in filled
        assert filled.startswith("a ") and filled.endswith(" c")

    def test_fill_without_wildcards_is_identity(self):
        sampler = ParameterSampler(np.random.default_rng(0))
        assert sampler.fill("plain text") == "plain text"

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_samples_are_nonempty_strings(self, seed):
        sampler = ParameterSampler(np.random.default_rng(seed))
        value = sampler.sample()
        assert isinstance(value, str) and value


class TestProfiles:
    def test_all_profiles_generate(self):
        for name in PROFILES:
            assert len(generate_logs(name, 20, seed=0)) == 20
