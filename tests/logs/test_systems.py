"""System profile tests."""

import pytest

from repro.logs.systems import ISP_SYSTEMS, PROFILES, PUBLIC_SYSTEMS, get_profile


class TestProfiles:
    def test_six_systems(self):
        assert len(PROFILES) == 6
        assert set(PUBLIC_SYSTEMS) | set(ISP_SYSTEMS) == set(PROFILES)

    def test_get_by_key(self):
        assert get_profile("bgl").display_name == "BGL"

    def test_get_by_display_name(self):
        assert get_profile("System A").name == "system_a"

    def test_get_case_insensitive(self):
        assert get_profile("BGL").name == "bgl"
        assert get_profile("system a").name == "system_a"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("hdfs")

    def test_rates_reflect_table3_ordering(self):
        """Line anomaly rates must order like the Table III sequence ratios."""
        rates = {name: p.line_anomaly_rate for name, p in PROFILES.items()}
        assert rates["bgl"] == max(rates.values())
        assert rates["system_b"] == min(rates.values())

    def test_burst_lengths_sane(self):
        for profile in PROFILES.values():
            low, high = profile.burst_length
            assert 1 <= low <= high

    def test_concept_accessors(self):
        profile = get_profile("spirit")
        assert profile.normal_concepts()
        assert profile.anomalous_concepts()
