"""Dataset diagnostics tests."""

import numpy as np

from repro.logs import generate_logs
from repro.logs.stats import burst_stats, inter_arrival_seconds, template_frequency_stats


class TestTemplateFrequency:
    def test_generated_stream_is_skewed(self):
        """The Zipf mix plus repetition must produce real-log-like skew."""
        stats = template_frequency_stats(generate_logs("bgl", 5000, seed=0))
        assert stats.is_skewed
        assert stats.top1_share > 0.1
        assert 0.0 < stats.gini < 1.0
        assert stats.distinct_concepts > 5

    def test_empty(self):
        stats = template_frequency_stats([])
        assert stats.distinct_concepts == 0
        assert stats.gini == 0.0

    def test_uniform_stream_not_skewed(self):
        # Construct an artificial stream with one concept per record.
        records = generate_logs("bgl", 40, seed=1)
        stats = template_frequency_stats(records[:1])
        assert stats.top1_share == 1.0


class TestBurstStats:
    def test_episode_counting(self):
        records = generate_logs("bgl", 30_000, seed=2)
        stats = burst_stats(records)
        assert stats.total_lines == 30_000
        assert stats.episodes > 0
        assert stats.anomalous_lines >= stats.episodes
        # Profile bursts are 2-6 lines; cascades may concatenate episodes.
        assert 1.5 < stats.mean_burst_length < 12
        assert 0.0 < stats.line_anomaly_rate < 0.2

    def test_no_anomalies(self):
        records = [r for r in generate_logs("bgl", 500, seed=3) if not r.is_anomalous]
        stats = burst_stats(records)
        assert stats.episodes == 0
        assert stats.mean_burst_length == 0.0
        assert stats.line_anomaly_rate == 0.0

    def test_trailing_burst_counted(self):
        records = generate_logs("bgl", 2000, seed=4)
        # Trim to end inside an anomalous run if one exists near the end.
        flags = [r.is_anomalous for r in records]
        if any(flags):
            last_anomalous = max(i for i, f in enumerate(flags) if f)
            trimmed = records[: last_anomalous + 1]
            assert burst_stats(trimmed).episodes >= 1


class TestInterArrival:
    def test_nonnegative_and_exponential_ish(self):
        records = generate_logs("spirit", 3000, seed=5)
        gaps = inter_arrival_seconds(records)
        assert len(gaps) == 2999
        assert (gaps >= 0).all()
        # Exponential inter-arrivals: std ~ mean.
        assert 0.5 < gaps.std() / gaps.mean() < 2.0

    def test_short_streams(self):
        assert len(inter_arrival_seconds([])) == 0
        assert len(inter_arrival_seconds(generate_logs("bgl", 1, seed=0))) == 0
