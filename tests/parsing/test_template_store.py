"""Template store tests."""

from repro.parsing.template_store import TemplateStore


class TestTemplateStore:
    def test_representative_is_first_message(self):
        store = TemplateStore()
        store.ingest("login from 10.0.0.1 ok")
        store.ingest("login from 10.0.0.2 ok")
        event_id = store.event_ids[0]
        assert store.representative(event_id) == "login from 10.0.0.1 ok"

    def test_event_ids_sorted(self):
        store = TemplateStore()
        store.ingest_all(["aaa bbb ccc", "ddd eee fff", "ggg hhh iii"])
        assert store.event_ids == sorted(store.event_ids)

    def test_inventory_shape(self):
        store = TemplateStore()
        store.ingest_all(["one event here", "another event there"])
        inventory = store.inventory()
        for event_id, (template, representative) in inventory.items():
            assert isinstance(template, str) and isinstance(representative, str)
            assert store.template_text(event_id) == template

    def test_parsed_log_fields(self):
        store = TemplateStore()
        store.ingest("count 5 of thing")
        parsed = store.ingest("count 9 of thing")
        assert parsed.parameters  # the number position
        assert "<*>" in parsed.template_text

    def test_stable_ids_across_repeats(self):
        store = TemplateStore()
        first = store.ingest("stable message body")
        second = store.ingest("stable message body")
        assert first.event_id == second.event_id
