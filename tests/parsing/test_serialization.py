"""Drain / TemplateStore serialization tests."""

import json

from repro.logs import generate_logs
from repro.parsing import DrainParser, TemplateStore


class TestDrainSerialization:
    def test_roundtrip_preserves_templates(self):
        parser = DrainParser()
        records = generate_logs("bgl", 800, seed=0)
        for record in records:
            parser.parse(record.message)

        clone = DrainParser.from_dict(parser.to_dict())
        assert clone.num_templates() == parser.num_templates()
        for original, restored in zip(parser.templates, clone.templates):
            assert restored.template_id == original.template_id
            assert restored.tokens == original.tokens
            assert restored.count == original.count

    def test_roundtrip_preserves_event_id_assignment(self):
        """After restore, the same messages must map to the same ids —
        the property production persistence exists for."""
        parser = DrainParser()
        train = generate_logs("spirit", 600, seed=1)
        for record in train:
            parser.parse(record.message)
        clone = DrainParser.from_dict(parser.to_dict())

        fresh = generate_logs("spirit", 300, seed=2)
        for record in fresh:
            a = parser.parse(record.message).template.template_id
            b = clone.parse(record.message).template.template_id
            assert a == b

    def test_payload_is_json_safe(self):
        parser = DrainParser()
        parser.parse("hello world message 42")
        payload = json.loads(json.dumps(parser.to_dict()))
        clone = DrainParser.from_dict(payload)
        assert clone.num_templates() == 1

    def test_config_preserved(self):
        parser = DrainParser(depth=5, similarity_threshold=0.7, max_children=10, mask=False)
        clone = DrainParser.from_dict(parser.to_dict())
        assert clone.depth == parser.depth
        assert clone.similarity_threshold == 0.7
        assert clone.max_children == 10
        assert clone.mask is False


class TestTemplateStoreSerialization:
    def test_roundtrip(self):
        store = TemplateStore()
        for record in generate_logs("system_c", 500, seed=3):
            store.ingest(record.message)
        clone = TemplateStore.from_dict(store.to_dict())
        assert clone.event_ids == store.event_ids
        for event_id in store.event_ids:
            assert clone.representative(event_id) == store.representative(event_id)
            assert clone.template_text(event_id) == store.template_text(event_id)

    def test_restored_store_keeps_ingesting(self):
        store = TemplateStore()
        store.ingest("alpha beta gamma 1")
        clone = TemplateStore.from_dict(store.to_dict())
        parsed = clone.ingest("alpha beta gamma 2")
        assert parsed.event_id == store.event_ids[0]
        novel = clone.ingest("completely different structure with many tokens")
        assert novel.event_id not in store.event_ids
