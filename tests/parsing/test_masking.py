"""Variable masking tests."""

from repro.parsing.masking import WILDCARD, mask_message


class TestMasking:
    def test_ip(self):
        assert mask_message("connect to 10.0.0.1 failed") == f"connect to {WILDCARD} failed"

    def test_ip_port(self):
        assert mask_message("peer 172.30.72.31:33404 down") == f"peer {WILDCARD} down"

    def test_hex(self):
        assert mask_message("code 0xDEADBEEF raised") == f"code {WILDCARD} raised"

    def test_numbers(self):
        assert mask_message("retried 17 times in 2.5 s") == (
            f"retried {WILDCARD} times in {WILDCARD} s"
        )

    def test_path(self):
        assert mask_message("open /var/log/app failed") == f"open {WILDCARD} failed"

    def test_uuid(self):
        msg = "req 123e4567-e89b-12d3-a456-426614174000 done"
        assert mask_message(msg) == f"req {WILDCARD} done"

    def test_words_with_digits_inside_identifiers_kept(self):
        # Tokens like sd3 are not pure numbers; the number regex must not
        # split identifiers.
        out = mask_message("device sda1 ok")
        assert "sda1" in out or WILDCARD in out  # either policy, but no crash

    def test_no_variables_identity(self):
        assert mask_message("simple constant message") == "simple constant message"

    def test_idempotent(self):
        once = mask_message("ip 1.2.3.4 count 7")
        assert mask_message(once) == once
