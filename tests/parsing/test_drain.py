"""Drain parser tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logs.generator import generate_logs
from repro.parsing.drain import DrainParser
from repro.parsing.masking import WILDCARD


class TestBasicParsing:
    def test_same_template_same_id(self):
        parser = DrainParser()
        a = parser.parse("connection from 10.0.0.1 refused")
        b = parser.parse("connection from 10.0.0.2 refused")
        assert a.template.template_id == b.template.template_id

    def test_different_structure_different_id(self):
        parser = DrainParser()
        a = parser.parse("user root logged in")
        b = parser.parse("disk sda1 write failure on block 17")
        assert a.template.template_id != b.template.template_id

    def test_template_generalizes_varying_positions(self):
        # Variance must sit beyond the tree-key prefix (first depth-2
        # tokens); varying the prefix creates separate groups — that is
        # Drain's actual behaviour and why masking exists.
        parser = DrainParser()
        parser.parse("job started alpha on node west")
        result = parser.parse("job started beta on node east")
        tokens = result.template.tokens
        assert tokens[2] == WILDCARD
        assert tokens[-1] == WILDCARD
        assert "started" in tokens

    def test_parameters_extracted(self):
        parser = DrainParser()
        parser.parse("job started for user alpha")
        result = parser.parse("job started for user beta")
        assert "beta" in result.parameters

    def test_count_increments(self):
        parser = DrainParser()
        for _ in range(3):
            result = parser.parse("heartbeat from host 10.0.0.1")
        assert result.template.count == 3

    def test_length_partitioning(self):
        parser = DrainParser()
        a = parser.parse("one two three")
        b = parser.parse("one two three four")
        assert a.template.template_id != b.template.template_id

    def test_empty_message(self):
        parser = DrainParser()
        result = parser.parse("")
        assert result.template.tokens == ["<EMPTY>"]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DrainParser(depth=2)
        with pytest.raises(ValueError):
            DrainParser(similarity_threshold=0.0)


class TestTreeBehaviour:
    def test_digit_tokens_routed_to_wildcard(self):
        parser = DrainParser(mask=False)
        a = parser.parse("retry 17 scheduled now ok")
        b = parser.parse("retry 42 scheduled now ok")
        assert a.template.template_id == b.template.template_id

    def test_max_children_overflow(self):
        parser = DrainParser(max_children=2, mask=False)
        # Many distinct first tokens: overflow must route to wildcard, not crash.
        for word in ("alpha", "beta", "gamma", "delta", "epsilon"):
            parser.parse(f"{word} service event occurred")
        assert parser.num_templates() >= 1

    def test_get_template(self):
        parser = DrainParser()
        result = parser.parse("some stable message here")
        assert parser.get_template(result.template.template_id) is result.template

    def test_templates_ordered(self):
        parser = DrainParser()
        parser.parse_all(["aaa bbb ccc", "ddd eee fff", "ggg hhh iii"])
        ids = [t.template_id for t in parser.templates]
        assert ids == sorted(ids)


class TestOnGeneratedLogs:
    def test_template_count_near_concept_count(self):
        """Drain must recover approximately one template per concept."""
        records = generate_logs("bgl", 4000, seed=0)
        parser = DrainParser()
        for record in records:
            parser.parse(record.message)
        distinct_concepts = len({r.concept for r in records})
        assert distinct_concepts <= parser.num_templates() <= distinct_concepts * 3

    def test_concept_purity(self):
        """Messages of one template should overwhelmingly share a concept."""
        records = generate_logs("spirit", 4000, seed=1)
        parser = DrainParser()
        assignments = {}
        for record in records:
            tid = parser.parse(record.message).template.template_id
            assignments.setdefault(tid, []).append(record.concept)
        impure = 0
        for concepts in assignments.values():
            if len(set(concepts)) > 1:
                impure += 1
        assert impure <= max(1, parser.num_templates() // 10)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_parse_never_crashes_on_generated(self, seed):
        parser = DrainParser()
        for record in generate_logs("system_c", 50, seed=seed):
            result = parser.parse(record.message)
            assert result.template.template_id >= 0
