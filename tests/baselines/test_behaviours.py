"""Method-specific behaviour tests for the baselines."""

import numpy as np
import pytest

from repro.baselines import DeepLog, LogTAD, NeuralLog, SpikeLog
from repro.baselines.base import EventIdFeaturizer, RawSequenceFeaturizer
from repro.logs import generate_logs, sliding_windows


def _sequences(system, n_lines, seed=0):
    return sliding_windows(generate_logs(system, n_lines, seed=seed))


class TestFeaturizers:
    def test_event_id_featurizer_stable(self):
        featurizer = EventIdFeaturizer()
        sequences = _sequences("bgl", 100)
        first = featurizer.encode_sequences("bgl", sequences)
        second = featurizer.encode_sequences("bgl", sequences)
        np.testing.assert_array_equal(first, second)

    def test_event_id_featurizer_per_system_stores(self):
        featurizer = EventIdFeaturizer()
        featurizer.encode_sequences("bgl", _sequences("bgl", 60))
        featurizer.encode_sequences("spirit", _sequences("spirit", 60))
        assert featurizer.vocabulary_size("bgl") > 0
        assert featurizer.vocabulary_size("spirit") > 0

    def test_raw_featurizer_template_caching(self):
        featurizer = RawSequenceFeaturizer()
        a = featurizer.embed_message("bgl", "MMCS heartbeat from node 1 acknowledged")
        b = featurizer.embed_message("bgl", "MMCS heartbeat from node 2 acknowledged")
        np.testing.assert_allclose(a, b)  # same template -> same embedding

    def test_raw_featurizer_no_parsing_mode(self):
        featurizer = RawSequenceFeaturizer(use_parsing=False)
        a = featurizer.embed_message("bgl", "MMCS heartbeat from node 1 acknowledged")
        b = featurizer.embed_message("bgl", "MMCS heartbeat from node 2 acknowledged")
        # Raw-message embedding: the parameter token differs, so vectors are
        # close but not identical (unlike the template-cached path).
        assert float(a @ b) > 0.9
        assert not np.allclose(a, b)

    def test_raw_featurizer_shapes(self):
        featurizer = RawSequenceFeaturizer()
        sequences = _sequences("bgl", 60)
        out = featurizer.embed_sequences("bgl", sequences)
        assert out.shape == (len(sequences), 10, featurizer.dim)


class TestDeepLogBehaviour:
    def test_unseen_event_flagged(self):
        """DeepLog's signature failure: patterns absent from the (small)
        normal training slice are predicted anomalous."""
        train = _sequences("bgl", 400, seed=0)
        normal_train = [s for s in train if s.label == 0][:40]
        detector = DeepLog(epochs=2, hidden_size=24, num_layers=1)
        detector.fit({}, "bgl", normal_train)

        # Build a test window whose events never appeared in training.
        exotic = _sequences("system_c", 60, seed=1)
        predictions = detector.predict(exotic[:5])
        assert predictions.sum() >= 4  # essentially everything flagged

    def test_requires_normal_samples(self):
        anomalous_only = [s for s in _sequences("bgl", 3000, seed=2) if s.label == 1][:5]
        with pytest.raises(ValueError):
            DeepLog(epochs=1).fit({}, "bgl", anomalous_only)


class TestLogTADBehaviour:
    def test_center_not_trivial(self):
        sequences = _sequences("bgl", 300, seed=0)
        detector = LogTAD(epochs=1, hidden_size=16, num_layers=1)
        detector.fit({"spirit": _sequences("spirit", 300, seed=1)}, "bgl", sequences)
        assert np.abs(detector._center).max() >= 1e-2

    def test_threshold_calibrated_from_normals(self):
        sequences = _sequences("bgl", 300, seed=0)
        detector = LogTAD(epochs=1, hidden_size=16, num_layers=1,
                          threshold_percentile=50.0)
        detector.fit({"spirit": _sequences("spirit", 300, seed=1)}, "bgl", sequences)
        strict = detector._threshold
        detector2 = LogTAD(epochs=1, hidden_size=16, num_layers=1,
                           threshold_percentile=99.9)
        detector2.fit({"spirit": _sequences("spirit", 300, seed=1)}, "bgl", sequences)
        assert detector2._threshold >= strict


class TestNeuralLogBehaviour:
    def test_direct_application_mode_uses_sources(self):
        """fit_on_sources=True is the §IV-D3 transfer-learning ablation."""
        sources = {"spirit": _sequences("spirit", 400, seed=0)}
        target_train = _sequences("bgl", 100, seed=1)
        detector = NeuralLog(epochs=1, d_model=32, d_ff=64, fit_on_sources=True)
        detector.fit(sources, "bgl", target_train)
        test = _sequences("bgl", 100, seed=2)
        assert detector.predict(test).shape == (len(test),)


class TestSpikeLogBehaviour:
    def test_uses_anomaly_fraction(self):
        sequences = _sequences("bgl", 3000, seed=0)
        detector = SpikeLog(epochs=1, hidden_size=16, anomaly_fraction=0.0)
        # With no anomalies used, training set is all "unlabeled" = normal.
        detector.fit({}, "bgl", sequences[:200])
        assert detector.predict(sequences[:10]).shape == (10,)
