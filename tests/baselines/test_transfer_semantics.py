"""Transfer-phase semantics: what must stay frozen, stays frozen."""

import numpy as np

from repro.baselines import LogTransfer, PreLog
from repro.logs import generate_logs, sliding_windows


def _sequences(system, n_lines, seed=0):
    return sliding_windows(generate_logs(system, n_lines, seed=seed))


class TestLogTransferFreezing:
    def test_shared_lstm_frozen_during_target_tuning(self):
        """Stage 2 fine-tunes only the classifier; the shared LSTM learned
        on the sources must not move."""
        detector = LogTransfer(source_epochs=1, target_epochs=0,
                               hidden_size=16, num_layers=1)
        sources = {"spirit": _sequences("spirit", 300, seed=0)}
        target_train = _sequences("bgl", 200, seed=1)
        detector.fit(sources, "bgl", target_train)
        lstm_after_stage1 = {
            name: p.data.copy() for name, p in detector._lstm.named_parameters()
        }
        classifier_after_stage1 = {
            name: p.data.copy() for name, p in detector._classifier.named_parameters()
        }

        # Re-run stage 2 manually with epochs > 0.
        detector.target_epochs = 2
        embedded = detector.featurizer.embed_sequences("bgl", target_train)
        detector._train_phase(embedded, detector._labels(target_train),
                              detector._classifier.parameters(), 2, seed_offset=9)

        for name, p in detector._lstm.named_parameters():
            np.testing.assert_allclose(p.data, lstm_after_stage1[name],
                                       err_msg=f"LSTM param {name} moved")
        moved = any(
            not np.allclose(p.data, classifier_after_stage1[name])
            for name, p in detector._classifier.named_parameters()
        )
        assert moved, "classifier must actually fine-tune"


class TestPreLogFreezing:
    def test_encoder_frozen_during_prompt_tuning(self):
        """Only the prompt vector and probe tune on the target slice."""
        detector = PreLog(pretrain_epochs=1, tune_epochs=2, d_model=16,
                          num_heads=2, d_ff=32)
        sources = {"spirit": _sequences("spirit", 300, seed=2)}
        target_train = _sequences("bgl", 150, seed=3)

        # Capture encoder weights right after fit (pretraining + tuning):
        # rerunning the tune phase must leave them untouched.
        detector.fit(sources, "bgl", target_train)
        encoder_weights = {
            name: p.data.copy() for name, p in detector._encoder.named_parameters()
        }
        prompt_before = detector._prompt.data.copy()

        embedded = detector.featurizer.embed_sequences("bgl", target_train)
        labels = detector._labels(target_train).astype(np.float32)
        from repro import nn
        tune_params = [detector._prompt] + detector._probe.parameters()
        optimizer = nn.AdamW(tune_params, lr=1e-2)
        for _ in range(3):
            pooled = detector._encode(embedded, with_prompt=True)
            loss = nn.binary_cross_entropy_with_logits(
                detector._probe(pooled).reshape(-1), labels
            )
            for p in tune_params + detector._encoder.parameters():
                p.zero_grad()
            loss.backward()
            optimizer.step()

        for name, p in detector._encoder.named_parameters():
            np.testing.assert_allclose(p.data, encoder_weights[name],
                                       err_msg=f"encoder param {name} moved")
        assert not np.allclose(detector._prompt.data, prompt_before), (
            "prompt vector must tune"
        )
