"""Uniform interface tests across all ten baselines.

Each baseline must fit on the shared experiment data and emit binary
predictions of the right shape on the test set.  Expensive, so the data
comes from the session-scoped fixture and baselines run at tiny scale.
"""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES, DeepLog, LogAnomaly, LogRobust, LogTAD, LogTransfer, MetaLog,
    NeuralLog, PLELog, PreLog, SpikeLog, baseline_names, make_baseline,
)

_FAST_KWARGS = {
    "DeepLog": dict(epochs=2, hidden_size=32, num_layers=1),
    "LogAnomaly": dict(epochs=2, hidden_size=32, num_layers=1),
    "PLELog": dict(epochs=2, hidden_size=24),
    "SpikeLog": dict(epochs=2, hidden_size=32),
    "NeuralLog": dict(epochs=2, d_model=32, num_layers=1, d_ff=64),
    "LogRobust": dict(epochs=2, hidden_size=24, num_layers=1),
    "PreLog": dict(pretrain_epochs=2, tune_epochs=2, d_model=32, d_ff=64),
    "LogTAD": dict(epochs=2, hidden_size=32, num_layers=1),
    "LogTransfer": dict(source_epochs=2, target_epochs=2, hidden_size=32, num_layers=1),
    "MetaLog": dict(meta_episodes=4, adapt_steps=4, hidden_size=24, num_layers=1),
}


class TestRegistry:
    def test_ten_baselines(self):
        assert len(BASELINES) == 10
        assert baseline_names() == list(BASELINES)

    def test_make_by_name(self):
        detector = make_baseline("DeepLog", epochs=1)
        assert isinstance(detector, DeepLog)
        assert detector.epochs == 1

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_baseline("NotAMethod")

    def test_names_and_paradigms_set(self):
        for name in baseline_names():
            detector = make_baseline(name)
            assert detector.name == name
            assert detector.paradigm


@pytest.mark.parametrize("name", list(BASELINES))
def test_fit_predict_contract(name, tiny_experiment_data):
    """Every baseline trains on the shared splits and predicts binary
    labels over the full test set."""
    detector = make_baseline(name, **_FAST_KWARGS[name])
    detector.fit(
        tiny_experiment_data["sources"],
        tiny_experiment_data["target"],
        tiny_experiment_data["target_train"],
    )
    test = tiny_experiment_data["target_test"][:120]
    predictions = detector.predict(test)
    assert predictions.shape == (len(test),)
    assert set(np.unique(predictions)) <= {0, 1}


@pytest.mark.parametrize("name", list(BASELINES))
def test_predict_before_fit_raises(name):
    detector = make_baseline(name, **_FAST_KWARGS[name])
    with pytest.raises(RuntimeError):
        detector.predict([])
