"""End-to-end observability: a fit under a live registry emits the four
pipeline-stage spans plus trainer/Drain/cache metrics."""

import pytest

from repro.core import LogSynergy
from repro.llm import SimulatedLLM
from repro.llm.cache import CachedLLM
from repro.obs import MetricsRegistry, registry_events, use_registry

from ..conftest import TINY_CONFIG


@pytest.fixture(scope="module")
def fit_registry(tiny_experiment_data, tmp_path_factory):
    """Fit a small model under a live registry, with a cached LLM."""
    registry = MetricsRegistry()
    cache_path = tmp_path_factory.mktemp("obs") / "interpretations.json"
    config = TINY_CONFIG.with_overrides(epochs=2)
    sources = {
        name: sequences[:60]
        for name, sequences in tiny_experiment_data["sources"].items()
    }
    with use_registry(registry):
        with CachedLLM(SimulatedLLM(seed=0), cache_path, autosave=False) as llm:
            model = LogSynergy(config, llm=llm)
            model.fit(
                sources,
                tiny_experiment_data["target"],
                tiny_experiment_data["target_train"][:40],
            )
    return registry


def test_fit_emits_four_pipeline_stage_spans(fit_registry):
    (fit_span,) = fit_registry.tracer.find("fit")
    stage_names = [child.name for child in fit_span.children]
    assert stage_names == ["fit.parse", "fit.interpret", "fit.embed", "fit.train"]
    for child in fit_span.children:
        assert child.duration >= 0.0
    (interpret,) = fit_registry.find_spans("fit.interpret")
    assert interpret.attributes["events"] > 0


def test_trainer_metrics_recorded(fit_registry):
    assert fit_registry.counter("trainer.epochs").value == 2.0
    assert fit_registry.counter("trainer.batches").value > 0
    batch_timer = fit_registry.histogram("trainer.batch_seconds")
    assert batch_timer.count == fit_registry.counter("trainer.batches").value
    assert fit_registry.histogram("trainer.main_step_seconds").count == batch_timer.count
    epochs = fit_registry.find_spans("trainer.epoch")
    assert [span.attributes["index"] for span in epochs] == [0, 1]
    assert all("loss_total" in span.attributes for span in epochs)
    # Epoch spans nest under the fit.train stage.
    assert all(span.parent_name == "fit.train" for span in epochs)


def test_llm_cache_counters_recorded(fit_registry):
    misses = fit_registry.counter("llm.cache.misses").value
    assert misses > 0  # every distinct template interpreted once


def test_drain_metrics_recorded(fit_registry):
    assert fit_registry.counter("drain.messages_parsed").value > 0
    assert fit_registry.counter("drain.templates_created").value > 0
    assert fit_registry.histogram("drain.match_depth").count == \
        fit_registry.counter("drain.messages_parsed").value


def test_export_contains_acceptance_metrics(fit_registry):
    events = registry_events(fit_registry)
    names = {e.get("name") for e in events}
    assert {"trainer.epochs", "trainer.loss.total", "llm.cache.misses",
            "drain.messages_parsed"} <= names
    span_names = [e["name"] for e in events if e["kind"] == "span"]
    for stage in ("fit", "fit.parse", "fit.interpret", "fit.embed", "fit.train"):
        assert stage in span_names
