"""Integration tests: whole-system flows crossing every subsystem."""

import numpy as np

from repro.config import LogSynergyConfig
from repro.core import LogSynergy
from repro.evaluation.metrics import binary_metrics


class TestOfflineToOnline:
    def test_full_offline_online_loop(self, fitted_logsynergy, tiny_experiment_data):
        """Offline fit -> online stream detection -> report content."""
        from repro.logs import generate_logs
        records = generate_logs("thunderbird", 10, seed=77)
        report = fitted_logsynergy.detect_stream(
            [r.message for r in records],
            timestamps=[r.timestamp for r in records],
        )
        assert report.system == "thunderbird"
        rendered = report.render()
        for record in records[:3]:
            assert record.message in rendered


class TestLEIBenefit:
    def test_lei_improves_over_raw_templates(self, tiny_experiment_data):
        """The Fig 5 ablation in miniature: with-LEI must beat without-LEI
        on cross-system transfer (dialect vocabularies are disjoint)."""
        config = LogSynergyConfig(
            d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
            embedding_dim=64, epochs=6, batch_size=64, learning_rate=3e-4, seed=1,
        )
        kwargs = dict(
            sources=tiny_experiment_data["sources"],
            target_system=tiny_experiment_data["target"],
            target_sequences=tiny_experiment_data["target_train"],
        )
        test = tiny_experiment_data["target_test"]
        labels = [s.label for s in test]

        with_lei = LogSynergy(config, use_lei=True)
        with_lei.fit(**kwargs)
        f1_with = binary_metrics(labels, with_lei.predict(test)).f1

        without_lei = LogSynergy(config, use_lei=False)
        without_lei.fit(**kwargs)
        f1_without = binary_metrics(labels, without_lei.predict(test)).f1

        assert f1_with >= f1_without


class TestDeterminism:
    def test_same_seed_same_predictions(self, tiny_experiment_data):
        config = LogSynergyConfig(
            d_model=32, num_heads=4, num_layers=1, d_ff=64, feature_dim=16,
            embedding_dim=64, epochs=2, batch_size=64, seed=7,
        )
        test = tiny_experiment_data["target_test"][:100]

        def run():
            model = LogSynergy(config)
            model.fit(
                tiny_experiment_data["sources"],
                tiny_experiment_data["target"],
                tiny_experiment_data["target_train"],
            )
            return model.predict_proba(test)

        np.testing.assert_allclose(run(), run(), atol=1e-5)


class TestModelPersistence:
    def test_save_load_preserves_detector(self, fitted_logsynergy,
                                          tiny_experiment_data, tmp_path):
        test = tiny_experiment_data["target_test"][:60]
        expected = fitted_logsynergy.predict_proba(test)

        path = str(tmp_path / "weights.npz")
        fitted_logsynergy.model.save(path)

        from repro.core.model import LogSynergyModel
        clone = LogSynergyModel(
            fitted_logsynergy.config, num_systems=3,
            rng=np.random.default_rng(999),
        )
        clone.load(path)
        embedded = fitted_logsynergy._featurizer("thunderbird").embed_sequences(test)
        np.testing.assert_allclose(clone.predict_proba(embedded), expected, atol=1e-5)
