"""The README quickstart snippet must stay runnable (doc-drift protection).

Extracts the first python code block from README.md and executes it at a
reduced scale (datasets and epochs shrunk via namespace injection would
change the snippet, so it runs verbatim — this is the one deliberately
slow test in the suite).
"""

import re
from pathlib import Path

import pytest

_README = Path(__file__).resolve().parents[2] / "README.md"


@pytest.mark.slow
def test_readme_quickstart_runs(capsys):
    text = _README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README must contain a python quickstart block"
    snippet = blocks[0]
    # Sanity: the snippet exercises the real public API.
    assert "LogSynergy(" in snippet
    assert "model.fit(" in snippet
    exec(compile(snippet, "README.md", "exec"), {})
    out = capsys.readouterr().out
    assert "F1(%)" in out
    assert "anomaly score" in out
