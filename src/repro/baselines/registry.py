"""Baseline registry: name -> constructor, for the experiment runner."""

from __future__ import annotations

from typing import Callable

from .base import BaselineDetector
from .deeplog import DeepLog
from .loganomaly import LogAnomaly
from .plelog import PLELog
from .spikelog import SpikeLog
from .neurallog import NeuralLog
from .logrobust import LogRobust
from .prelog import PreLog
from .logtad import LogTAD
from .logtransfer import LogTransfer
from .metalog import MetaLog

__all__ = ["BASELINES", "make_baseline", "baseline_names"]

BASELINES: dict[str, Callable[..., BaselineDetector]] = {
    "DeepLog": DeepLog,
    "LogAnomaly": LogAnomaly,
    "PLELog": PLELog,
    "SpikeLog": SpikeLog,
    "NeuralLog": NeuralLog,
    "LogRobust": LogRobust,
    "PreLog": PreLog,
    "LogTAD": LogTAD,
    "LogTransfer": LogTransfer,
    "MetaLog": MetaLog,
}


def baseline_names() -> list[str]:
    """The nine comparison methods plus NeuralLog, in table order."""
    return list(BASELINES)


def make_baseline(name: str, **kwargs) -> BaselineDetector:
    """Instantiate a baseline by table name."""
    try:
        factory = BASELINES[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline {name!r}; available: {', '.join(BASELINES)}"
        ) from None
    return factory(**kwargs)
