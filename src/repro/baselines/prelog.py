"""PreLog (Le & Zhang, SIGMOD 2024): pre-train on mature systems, prompt-tune on target.

Reproduced shape: a Transformer encoder is pre-trained on the *source*
systems (supervised anomaly objective standing in for PreLog's
pre-training suite), then frozen; only a lightweight prompt head (a
learned bias in feature space plus a linear probe) is tuned on the target
slice.  Because the frozen features were learned on raw source syntax,
transfer succeeds only when target semantics align with source semantics
in the raw embedding space — reproducing PreLog's near-zero rows in
Tables IV/V for dissimilar systems.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["PreLog"]


class PreLog(BaselineDetector):
    name = "PreLog"
    paradigm = "Pre-trained"

    def __init__(self, d_model: int = 64, num_heads: int = 4, num_layers: int = 1,
                 d_ff: int = 128, pretrain_epochs: int = 6, tune_epochs: int = 6,
                 lr: float = 3e-4, batch_size: int = 64, seed: int = 0):
        self.d_model = d_model
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.d_ff = d_ff
        self.pretrain_epochs = pretrain_epochs
        self.tune_epochs = tune_epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._projection: nn.Linear | None = None
        self._encoder: nn.TransformerEncoder | None = None
        self._prompt: nn.Parameter | None = None
        self._probe: nn.Linear | None = None

    def _encode(self, embedded: np.ndarray, with_prompt: bool) -> nn.Tensor:
        projected = self._projection(nn.Tensor(embedded))
        pooled = self._encoder.pooled(projected)
        if with_prompt and self._prompt is not None:
            pooled = pooled + self._prompt
        return pooled

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        self._system = target_system
        rng = np.random.default_rng(self.seed)
        self._projection = nn.Linear(self.featurizer.dim, self.d_model, rng=rng)
        self._encoder = nn.TransformerEncoder(
            d_model=self.d_model, num_heads=self.num_heads, num_layers=self.num_layers,
            d_ff=self.d_ff, dropout=0.1, rng=rng,
        )
        pretrain_head = nn.Linear(self.d_model, 1, rng=rng)

        # Phase 1: pre-train encoder on the mature source systems.
        blocks, labels = [], []
        for name, sequences in sources.items():
            blocks.append(self.featurizer.embed_sequences(name, sequences))
            labels.append(self._labels(sequences))
        embedded = np.concatenate(blocks, axis=0)
        label_arr = np.concatenate(labels).astype(np.float32)
        params = (
            self._projection.parameters() + self._encoder.parameters()
            + pretrain_head.parameters()
        )
        optimizer = nn.AdamW(params, lr=self.lr)
        pos_weight = float(np.clip((label_arr == 0).sum() / max(1, (label_arr == 1).sum()), 1, 50))
        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.pretrain_epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                logits = pretrain_head(self._encode(embedded[index], with_prompt=False))
                loss = nn.binary_cross_entropy_with_logits(
                    logits.reshape(-1), label_arr[index], pos_weight=pos_weight
                )
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()

        # Phase 2: freeze encoder; prompt-tune on the target slice.
        self._prompt = nn.Parameter(np.zeros(self.d_model, dtype=np.float32))
        self._probe = nn.Linear(self.d_model, 1, rng=rng)
        tune_params = [self._prompt] + self._probe.parameters()
        tune_optimizer = nn.AdamW(tune_params, lr=self.lr)
        target_embedded = self.featurizer.embed_sequences(target_system, target_train)
        target_labels = self._labels(target_train).astype(np.float32)
        t_pos_weight = float(
            np.clip((target_labels == 0).sum() / max(1, (target_labels == 1).sum()), 1, 50)
        )
        self._encoder.eval()  # frozen: dropout off; grads discarded by optimizer scope
        for _ in range(self.tune_epochs):
            order = order_rng.permutation(len(target_embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                pooled = self._encode(target_embedded[index], with_prompt=True)
                logits = self._probe(pooled).reshape(-1)
                loss = nn.binary_cross_entropy_with_logits(
                    logits, target_labels[index], pos_weight=t_pos_weight
                )
                for p in tune_params:
                    p.zero_grad()
                for p in params:
                    p.zero_grad()
                loss.backward()
                nn.clip_grad_norm(tune_params, 5.0)
                tune_optimizer.step()
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._probe is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                pooled = self._encode(embedded[start : start + 256], with_prompt=True)
                probs = self._probe(pooled).reshape(-1).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
