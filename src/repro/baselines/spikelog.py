"""SpikeLog (Qi et al., TKDE 2023): potential-assisted spiking neural network.

Weakly supervised: uses 98 % of the target training slice's *anomalous*
samples plus the remaining unlabeled data (treated as normal during
training, the standard PU simplification).  A leaky integrate-and-fire
layer processes the embedded window; the classifier reads both the spike
rates and the final membrane potential ("potential-assisted").
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["SpikeLog"]


class SpikeLog(BaselineDetector):
    name = "SpikeLog"
    paradigm = "Weakly-supervised"

    def __init__(self, hidden_size: int = 64, epochs: int = 8, lr: float = 1e-3,
                 batch_size: int = 64, anomaly_fraction: float = 0.98, seed: int = 0):
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.anomaly_fraction = anomaly_fraction
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._lif: nn.LIFLayer | None = None
        self._head: nn.Linear | None = None

    def _forward(self, embedded: np.ndarray) -> nn.Tensor:
        spikes, membrane = self._lif(nn.Tensor(embedded))
        rates = spikes.mean(axis=1)
        readout = nn.concatenate([rates, membrane], axis=1)
        return self._head(readout).reshape(-1)

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        del sources
        self._system = target_system
        anomalous = self._anomalous_only(target_train)
        n_used = max(0, int(len(anomalous) * self.anomaly_fraction))
        used_anomalies = anomalous[:n_used] if n_used else []
        unlabeled = [s for s in target_train if s not in used_anomalies]

        sequences = used_anomalies + unlabeled
        labels = np.array([1.0] * len(used_anomalies) + [0.0] * len(unlabeled), dtype=np.float32)
        embedded = self.featurizer.embed_sequences(target_system, sequences)

        rng = np.random.default_rng(self.seed)
        self._lif = nn.LIFLayer(self.featurizer.dim, self.hidden_size, rng=rng)
        self._head = nn.Linear(2 * self.hidden_size, 1, rng=rng)
        params = self._lif.parameters() + self._head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)
        pos_weight = float(np.clip((labels == 0).sum() / max(1, (labels == 1).sum()), 1, 50))

        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                logits = self._forward(embedded[index])
                loss = nn.binary_cross_entropy_with_logits(
                    logits, labels[index], pos_weight=pos_weight
                )
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._lif is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                probs = self._forward(embedded[start : start + 256]).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
