"""LogTAD (Han & Yuan, CIKM 2021): unsupervised cross-system via domain adaptation.

Trains an LSTM on *normal* sequences from source and target systems with
two objectives: (1) a Deep SVDD-style center loss pulling normal
representations toward a shared hypersphere center, and (2) an adversarial
domain loss (through a gradient reversal layer) so source and target
normals become indistinguishable.  A sequence is anomalous when its
distance from the center exceeds a threshold calibrated on training
normals.  Because the raw embeddings keep each system's syntax, the
alignment cannot fully bridge dialects — the paper's explanation for
LogTAD's high-recall/low-precision rows.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["LogTAD"]


class LogTAD(BaselineDetector):
    name = "LogTAD"
    paradigm = "Unsupervised Cross-System"

    def __init__(self, hidden_size: int = 64, num_layers: int = 2, epochs: int = 6,
                 lr: float = 1e-3, batch_size: int = 64, domain_weight: float = 0.1,
                 threshold_percentile: float = 97.5, seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.domain_weight = domain_weight
        self.threshold_percentile = threshold_percentile
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._lstm: nn.LSTM | None = None
        self._domain_head: nn.Linear | None = None
        self._grl = nn.GradientReversal(alpha=1.0)
        self._center: np.ndarray | None = None
        self._threshold: float = 0.0

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        self._system = target_system
        blocks, domains = [], []
        for name, sequences in sources.items():
            normal = self._normal_only(sequences)
            if normal:
                blocks.append(self.featurizer.embed_sequences(name, normal))
                domains.append(np.zeros(len(normal), dtype=np.float32))
        target_normal = self._normal_only(target_train)
        if not target_normal:
            raise ValueError("LogTAD needs normal target sequences")
        blocks.append(self.featurizer.embed_sequences(target_system, target_normal))
        domains.append(np.ones(len(target_normal), dtype=np.float32))
        embedded = np.concatenate(blocks, axis=0)
        domain_labels = np.concatenate(domains)

        rng = np.random.default_rng(self.seed)
        self._lstm = nn.LSTM(self.featurizer.dim, self.hidden_size,
                             num_layers=self.num_layers, rng=rng)
        self._domain_head = nn.Linear(self.hidden_size, 1, rng=rng)
        params = self._lstm.parameters() + self._domain_head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)

        # Initialize the center from an untrained forward pass (Deep SVDD).
        with nn.no_grad():
            _, hidden = self._lstm(nn.Tensor(embedded[: min(512, len(embedded))]))
        center = hidden.data.mean(axis=0)
        center[np.abs(center) < 1e-2] = 1e-2  # avoid the trivial all-zero solution
        self._center = center.astype(np.float32)

        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                _, hidden = self._lstm(nn.Tensor(embedded[index]))
                diff = hidden - nn.Tensor(self._center)
                center_loss = (diff * diff).sum(axis=1).mean()
                domain_logits = self._domain_head(self._grl(hidden)).reshape(-1)
                domain_loss = nn.binary_cross_entropy_with_logits(
                    domain_logits, domain_labels[index]
                )
                loss = center_loss + domain_loss * self.domain_weight
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()

        distances = self._distances(embedded)
        self._threshold = float(np.percentile(distances, self.threshold_percentile)) + 1e-9
        return self

    def _distances(self, embedded: np.ndarray) -> np.ndarray:
        out = np.zeros(len(embedded), dtype=np.float64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                _, hidden = self._lstm(nn.Tensor(embedded[start : start + 256]))
                diff = hidden.data - self._center
                out[start : start + 256] = (diff**2).sum(axis=1)
        return out

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._lstm is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        return (self._distances(embedded) > self._threshold).astype(np.int64)
