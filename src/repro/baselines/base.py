"""Shared infrastructure for the nine baseline detectors (§IV-A2).

Every baseline implements :class:`BaselineDetector`: ``fit`` receives the
same experiment data LogSynergy does (labeled source-system sequences plus
the small labeled target slice) and uses whatever subset its paradigm
allows — unsupervised methods use only normal target samples, single-system
supervised methods ignore the sources, and so on.  ``predict`` scores
target-system test sequences.

Baselines represent log text *without* LEI: raw messages or Drain
templates embedded with the same sentence encoder LogSynergy uses.  This
keeps the comparison about the method rather than the encoder, and
reproduces the paper's point that raw cross-system syntax does not
transfer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..embedding.encoder import SentenceEncoder
from ..embedding.pretrained import load_pretrained_encoder
from ..logs.sequences import LogSequence
from ..nn.module import Module
from ..parsing.template_store import TemplateStore

__all__ = ["BaselineDetector", "RawSequenceFeaturizer", "EventIdFeaturizer"]


class RawSequenceFeaturizer:
    """Embeds sequences from raw template text (no LLM interpretation)."""

    def __init__(self, encoder: SentenceEncoder | None = None, use_parsing: bool = True):
        self.encoder = encoder or load_pretrained_encoder()
        self.use_parsing = use_parsing
        self._stores: dict[str, TemplateStore] = {}
        self._cache: dict[tuple[str, int], np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self.encoder.dim

    def _store(self, system: str) -> TemplateStore:
        store = self._stores.get(system)
        if store is None:
            store = TemplateStore()
            self._stores[system] = store
        return store

    def embed_message(self, system: str, message: str) -> np.ndarray:
        if not self.use_parsing:
            # NeuralLog-style: embed the raw message without parsing.
            return self.encoder.encode(message)
        parsed = self._store(system).ingest(message)
        key = (system, parsed.event_id)
        vec = self._cache.get(key)
        if vec is None:
            vec = self.encoder.encode(parsed.template_text)
            self._cache[key] = vec
        return vec

    def embed_sequences(self, system: str, sequences: list[LogSequence]) -> np.ndarray:
        if not sequences:
            return np.zeros((0, 0, self.dim), dtype=np.float32)
        window = len(sequences[0])
        out = np.zeros((len(sequences), window, self.dim), dtype=np.float32)
        record_cache: dict[int, np.ndarray] = {}
        for row, sequence in enumerate(sequences):
            for col, record in enumerate(sequence.records):
                vec = record_cache.get(id(record))
                if vec is None:
                    vec = self.embed_message(system, record.message)
                    record_cache[id(record)] = vec
                out[row, col] = vec
        return out


class EventIdFeaturizer:
    """Maps sequences to integer event-id arrays (DeepLog-family input)."""

    def __init__(self):
        self._stores: dict[str, TemplateStore] = {}

    def _store(self, system: str) -> TemplateStore:
        store = self._stores.get(system)
        if store is None:
            store = TemplateStore()
            self._stores[system] = store
        return store

    def vocabulary_size(self, system: str) -> int:
        return self._store(system).parser.num_templates()

    def encode_sequences(self, system: str, sequences: list[LogSequence]) -> np.ndarray:
        store = self._store(system)
        out = np.zeros((len(sequences), len(sequences[0]) if sequences else 0), dtype=np.int64)
        cache: dict[int, int] = {}
        for row, sequence in enumerate(sequences):
            for col, record in enumerate(sequence.records):
                event = cache.get(id(record))
                if event is None:
                    event = store.ingest(record.message).event_id
                    cache[id(record)] = event
                out[row, col] = event
        return out


class BaselineDetector(ABC):
    """Interface every comparison method implements."""

    #: Human-readable method name as it appears in Tables IV/V.
    name: str = "baseline"
    #: Paradigm row from Table IV ("Unsupervised", "Supervised Cross-System", ...).
    paradigm: str = ""

    @abstractmethod
    def fit(self, sources: dict[str, list[LogSequence]], target_system: str,
            target_train: list[LogSequence]) -> "BaselineDetector":
        """Train using whatever subset of the data the paradigm allows."""

    @abstractmethod
    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Binary anomaly predictions for target-system test sequences."""

    def modules(self) -> dict[str, Module]:
        """All ``nn.Module`` objects this detector owns (post-``fit``).

        Scans instance attributes, including one level of list/tuple/dict
        containers; used by the model auditor (``repro audit``) to find
        the networks behind each detector.
        """
        found: dict[str, Module] = {}
        for name, value in vars(self).items():
            if isinstance(value, Module):
                found[name] = value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        found[f"{name}[{index}]"] = item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        found[f"{name}[{key!r}]"] = item
        return found

    # Convenience shared by most subclasses -----------------------------
    @staticmethod
    def _labels(sequences: list[LogSequence]) -> np.ndarray:
        return np.array([s.label for s in sequences], dtype=np.int64)

    @staticmethod
    def _normal_only(sequences: list[LogSequence]) -> list[LogSequence]:
        return [s for s in sequences if s.label == 0]

    @staticmethod
    def _anomalous_only(sequences: list[LogSequence]) -> list[LogSequence]:
        return [s for s in sequences if s.label == 1]
