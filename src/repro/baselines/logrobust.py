"""LogRobust (Zhang et al., ESEC/FSE 2019): attention Bi-LSTM classifier.

Supervised, single-system: embeds Drain templates with TF-IDF-weighted
word vectors (our sentence encoder provides the equivalent SIF weighting),
runs a bidirectional LSTM, applies soft attention over timesteps, and
classifies.  Known in the paper's evaluation for robustness to unstable
log data — it degrades more gracefully than NeuralLog when the target
diverges from training.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["LogRobust"]


class LogRobust(BaselineDetector):
    name = "LogRobust"
    paradigm = "Supervised"

    def __init__(self, hidden_size: int = 64, num_layers: int = 2, epochs: int = 8,
                 lr: float = 1e-3, batch_size: int = 64, seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._bilstm: nn.BiLSTM | None = None
        self._attention: nn.Linear | None = None
        self._head: nn.Linear | None = None

    def _forward(self, embedded: np.ndarray) -> nn.Tensor:
        outputs = self._bilstm(nn.Tensor(embedded))  # (batch, seq, 2*hidden)
        scores = self._attention(outputs.tanh())      # (batch, seq, 1)
        weights = scores.softmax(axis=1)
        context = (outputs * weights).sum(axis=1)
        return self._head(context).reshape(-1)

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        del sources  # single-system method
        self._system = target_system
        embedded = self.featurizer.embed_sequences(target_system, target_train)
        labels = self._labels(target_train).astype(np.float32)

        rng = np.random.default_rng(self.seed)
        self._bilstm = nn.BiLSTM(self.featurizer.dim, self.hidden_size,
                                 num_layers=self.num_layers, rng=rng)
        self._attention = nn.Linear(2 * self.hidden_size, 1, rng=rng)
        self._head = nn.Linear(2 * self.hidden_size, 1, rng=rng)
        params = (
            self._bilstm.parameters() + self._attention.parameters() + self._head.parameters()
        )
        optimizer = nn.Adam(params, lr=self.lr)
        pos_weight = float(np.clip((labels == 0).sum() / max(1, (labels == 1).sum()), 1, 50))

        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                logits = self._forward(embedded[index])
                loss = nn.binary_cross_entropy_with_logits(
                    logits, labels[index], pos_weight=pos_weight
                )
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._bilstm is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 128):
                probs = self._forward(embedded[start : start + 128]).sigmoid().data
                out[start : start + 128] = (probs > 0.5).astype(np.int64)
        return out
