"""MetaLog (Zhang et al., ICSE 2024): cross-system meta-learning with GRUs.

First-order MAML over the source systems: each meta-episode samples a
support/query split from one source, adapts a copy of the GRU classifier
on the support set, and accumulates the query gradient into the
meta-parameters.  After meta-training, the model takes a few adaptation
steps on the labeled target slice.  The paper observes MetaLog is unstable
when target samples are scarce — the few-step adaptation inherits whatever
anomaly structure the meta-initialization happens to encode.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["MetaLog"]


class MetaLog(BaselineDetector):
    name = "MetaLog"
    paradigm = "Supervised Cross-System"

    def __init__(self, hidden_size: int = 50, num_layers: int = 2, meta_episodes: int = 30,
                 inner_steps: int = 3, inner_lr: float = 1e-2, meta_lr: float = 1e-3,
                 adapt_steps: int = 20, support_size: int = 64, seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.meta_episodes = meta_episodes
        self.inner_steps = inner_steps
        self.inner_lr = inner_lr
        self.meta_lr = meta_lr
        self.adapt_steps = adapt_steps
        self.support_size = support_size
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._gru: nn.GRU | None = None
        self._head: nn.Linear | None = None

    def _params(self) -> list[nn.Parameter]:
        return self._gru.parameters() + self._head.parameters()

    def _forward(self, embedded: np.ndarray) -> nn.Tensor:
        _, hidden = self._gru(nn.Tensor(embedded))
        return self._head(hidden).reshape(-1)

    def _loss(self, embedded: np.ndarray, labels: np.ndarray) -> nn.Tensor:
        pos_weight = float(np.clip((labels == 0).sum() / max(1, (labels == 1).sum()), 1, 50))
        return nn.binary_cross_entropy_with_logits(
            self._forward(embedded), labels.astype(np.float32), pos_weight=pos_weight
        )

    def _sgd_steps(self, embedded: np.ndarray, labels: np.ndarray, steps: int,
                   lr: float) -> None:
        params = self._params()
        for _ in range(steps):
            loss = self._loss(embedded, labels)
            for p in params:
                p.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, 5.0)
            for p in params:
                if p.grad is not None:
                    p.data = p.data - lr * p.grad

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        self._system = target_system
        rng = np.random.default_rng(self.seed)
        self._gru = nn.GRU(self.featurizer.dim, self.hidden_size,
                           num_layers=self.num_layers, rng=rng)
        self._head = nn.Linear(self.hidden_size, 1, rng=rng)

        tasks = []
        for name, sequences in sources.items():
            embedded = self.featurizer.embed_sequences(name, sequences)
            tasks.append((embedded, self._labels(sequences)))
        if not tasks:
            raise ValueError("MetaLog needs at least one source system")

        episode_rng = np.random.default_rng(self.seed + 1)
        params = self._params()
        for _ in range(self.meta_episodes):
            embedded, labels = tasks[int(episode_rng.integers(len(tasks)))]
            index = episode_rng.permutation(len(labels))
            support = index[: self.support_size]
            query = index[self.support_size : 2 * self.support_size]
            if len(query) == 0:
                query = support
            # First-order MAML: adapt in place, take the query gradient at the
            # adapted point, then restore and apply it to the meta-parameters.
            snapshot = [p.data.copy() for p in params]
            self._sgd_steps(embedded[support], labels[support], self.inner_steps, self.inner_lr)
            loss = self._loss(embedded[query], labels[query])
            for p in params:
                p.zero_grad()
            loss.backward()
            query_grads = [None if p.grad is None else p.grad.copy() for p in params]
            for p, saved in zip(params, snapshot):
                p.data = saved
            for p, grad in zip(params, query_grads):
                if grad is not None:
                    p.data = p.data - self.meta_lr * grad

        # Few-step adaptation on the target slice.
        target_embedded = self.featurizer.embed_sequences(target_system, target_train)
        self._sgd_steps(
            target_embedded, self._labels(target_train), self.adapt_steps, self.inner_lr
        )
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._gru is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                probs = self._forward(embedded[start : start + 256]).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
