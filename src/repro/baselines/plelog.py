"""PLELog (Yang et al., ICSE 2021): semi-supervised probabilistic label estimation.

Uses 50 % of the *normal* target training samples as labeled and treats
the rest of the training slice as unlabeled.  Unlabeled windows get
probabilistic labels from their distance to normal prototypes (the paper
clusters with HDBSCAN; we use the normal centroid distance, the same
signal at this scale), then a GRU classifier with attention trains on the
soft labels.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["PLELog"]


class PLELog(BaselineDetector):
    name = "PLELog"
    paradigm = "Semi-supervised"

    def __init__(self, hidden_size: int = 50, epochs: int = 8, lr: float = 1e-3,
                 batch_size: int = 64, labeled_fraction: float = 0.5, seed: int = 0):
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.labeled_fraction = labeled_fraction
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._gru: nn.GRU | None = None
        self._head: nn.Linear | None = None

    def _pooled(self, embedded: np.ndarray) -> np.ndarray:
        return embedded.mean(axis=1)

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        del sources
        self._system = target_system
        rng = np.random.default_rng(self.seed)

        normal = self._normal_only(target_train)
        if len(normal) < 2:
            raise ValueError("PLELog needs at least two normal training sequences")
        n_labeled = max(1, int(len(normal) * self.labeled_fraction))
        labeled_normal = normal[:n_labeled]
        unlabeled = [s for s in target_train if s not in labeled_normal]

        embedded_labeled = self.featurizer.embed_sequences(target_system, labeled_normal)
        prototype = self._pooled(embedded_labeled).mean(axis=0)
        spread = np.linalg.norm(self._pooled(embedded_labeled) - prototype, axis=1)
        scale = float(np.percentile(spread, 95)) + 1e-6

        # Probabilistic label estimation: soft anomaly score grows with
        # distance from the normal prototype.
        soft_labels = [0.0] * len(labeled_normal)
        train_sequences = list(labeled_normal)
        if unlabeled:
            embedded_unlabeled = self.featurizer.embed_sequences(target_system, unlabeled)
            distances = np.linalg.norm(self._pooled(embedded_unlabeled) - prototype, axis=1)
            soft = np.clip((distances - scale) / (scale + 1e-6), 0.0, 1.0)
            train_sequences += unlabeled
            soft_labels += soft.tolist()
        soft_labels = np.array(soft_labels, dtype=np.float32)

        embedded = self.featurizer.embed_sequences(target_system, train_sequences)
        self._gru = nn.GRU(self.featurizer.dim, self.hidden_size, num_layers=1, rng=rng)
        self._head = nn.Linear(self.hidden_size, 1, rng=rng)
        params = self._gru.parameters() + self._head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)

        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                _, hidden = self._gru(nn.Tensor(embedded[index]))
                logits = self._head(hidden).reshape(-1)
                loss = nn.binary_cross_entropy_with_logits(logits, soft_labels[index])
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._gru is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                batch = embedded[start : start + 256]
                _, hidden = self._gru(nn.Tensor(batch))
                probs = self._head(hidden).reshape(-1).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
