"""The nine baseline log anomaly detectors from Tables IV/V.

Each is implemented from its original paper's architecture at reduced
scale, sharing the repository's NN substrate and sentence encoder but
consuming *raw* log text (no LLM interpretation) — the comparison the
paper draws.
"""

from .base import BaselineDetector, EventIdFeaturizer, RawSequenceFeaturizer
from .deeplog import DeepLog
from .loganomaly import LogAnomaly
from .plelog import PLELog
from .spikelog import SpikeLog
from .neurallog import NeuralLog
from .logrobust import LogRobust
from .prelog import PreLog
from .logtad import LogTAD
from .logtransfer import LogTransfer
from .metalog import MetaLog
from .registry import BASELINES, baseline_names, make_baseline

__all__ = [
    "BaselineDetector", "RawSequenceFeaturizer", "EventIdFeaturizer",
    "DeepLog", "LogAnomaly", "PLELog", "SpikeLog", "NeuralLog", "LogRobust",
    "PreLog", "LogTAD", "LogTransfer", "MetaLog",
    "BASELINES", "make_baseline", "baseline_names",
]
