"""NeuralLog (Le & Zhang, ASE 2021): parsing-free transformer classifier.

Supervised, single-system: embeds *raw messages* (no log parsing) with the
pre-trained encoder and classifies the window with a Transformer encoder.
Trains on all labeled target training samples; with only a few thousand
target samples its performance depends heavily on how much of the test
distribution those samples cover.

``fit_on_sources=True`` trains on the source systems instead — that is the
"direct application of NeuralLog" used by the paper's transfer-learning
ablation (§IV-D3).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["NeuralLog"]


class NeuralLog(BaselineDetector):
    name = "NeuralLog"
    paradigm = "Supervised"

    def __init__(self, d_model: int = 64, num_heads: int = 4, num_layers: int = 1,
                 d_ff: int = 128, epochs: int = 8, lr: float = 3e-4, batch_size: int = 64,
                 fit_on_sources: bool = False, seed: int = 0):
        self.d_model = d_model
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.d_ff = d_ff
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.fit_on_sources = fit_on_sources
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer(use_parsing=False)
        self._system = ""
        self._projection: nn.Linear | None = None
        self._encoder: nn.TransformerEncoder | None = None
        self._head: nn.Linear | None = None

    def _forward(self, embedded: np.ndarray) -> nn.Tensor:
        projected = self._projection(nn.Tensor(embedded))
        pooled = self._encoder.pooled(projected)
        return self._head(pooled).reshape(-1)

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        self._system = target_system
        if self.fit_on_sources:
            blocks, labels = [], []
            for name, sequences in sources.items():
                blocks.append(self.featurizer.embed_sequences(name, sequences))
                labels.append(self._labels(sequences))
            embedded = np.concatenate(blocks, axis=0)
            labels = np.concatenate(labels).astype(np.float32)
        else:
            embedded = self.featurizer.embed_sequences(target_system, target_train)
            labels = self._labels(target_train).astype(np.float32)

        rng = np.random.default_rng(self.seed)
        self._projection = nn.Linear(self.featurizer.dim, self.d_model, rng=rng)
        self._encoder = nn.TransformerEncoder(
            d_model=self.d_model, num_heads=self.num_heads, num_layers=self.num_layers,
            d_ff=self.d_ff, dropout=0.1, rng=rng,
        )
        self._head = nn.Linear(self.d_model, 1, rng=rng)
        params = (
            self._projection.parameters() + self._encoder.parameters() + self._head.parameters()
        )
        optimizer = nn.AdamW(params, lr=self.lr)
        pos_weight = float(np.clip((labels == 0).sum() / max(1, (labels == 1).sum()), 1, 50))

        order_rng = np.random.default_rng(self.seed + 1)
        self._encoder.train()
        for _ in range(self.epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                logits = self._forward(embedded[index])
                loss = nn.binary_cross_entropy_with_logits(
                    logits, labels[index], pos_weight=pos_weight
                )
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        self._encoder.eval()
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._encoder is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                probs = self._forward(embedded[start : start + 256]).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
