"""LogTransfer (Chen et al., ISSRE 2020): supervised transfer via shared layers.

Two-stage training: (1) an LSTM encoder plus classifier learns anomaly
detection on the labeled *source* systems; (2) the encoder's lower layers
are frozen ("shared network") and the fully-connected classifier is
fine-tuned on the labeled target slice.  Word-level representations come
from raw log text (the original uses Word2Vec/GloVe), so effectiveness
hinges on surface similarity between source and target — the failure mode
the paper's case study (§VI-D) dissects.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, RawSequenceFeaturizer

__all__ = ["LogTransfer"]


class LogTransfer(BaselineDetector):
    name = "LogTransfer"
    paradigm = "Supervised Cross-System"

    def __init__(self, hidden_size: int = 64, num_layers: int = 2, source_epochs: int = 6,
                 target_epochs: int = 6, lr: float = 1e-3, batch_size: int = 64, seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.source_epochs = source_epochs
        self.target_epochs = target_epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.featurizer = RawSequenceFeaturizer()
        self._system = ""
        self._lstm: nn.LSTM | None = None
        self._classifier: nn.Sequential | None = None

    def _forward(self, embedded: np.ndarray) -> nn.Tensor:
        _, hidden = self._lstm(nn.Tensor(embedded))
        return self._classifier(hidden).reshape(-1)

    def _train_phase(self, embedded: np.ndarray, labels: np.ndarray,
                     params: list, epochs: int, seed_offset: int) -> None:
        optimizer = nn.Adam(params, lr=self.lr)
        pos_weight = float(np.clip((labels == 0).sum() / max(1, (labels == 1).sum()), 1, 50))
        order_rng = np.random.default_rng(self.seed + seed_offset)
        for _ in range(epochs):
            order = order_rng.permutation(len(embedded))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                logits = self._forward(embedded[index])
                loss = nn.binary_cross_entropy_with_logits(
                    logits, labels[index].astype(np.float32), pos_weight=pos_weight
                )
                for p in self._lstm.parameters() + self._classifier.parameters():
                    p.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        self._system = target_system
        rng = np.random.default_rng(self.seed)
        self._lstm = nn.LSTM(self.featurizer.dim, self.hidden_size,
                             num_layers=self.num_layers, rng=rng)
        self._classifier = nn.Sequential(
            nn.Linear(self.hidden_size, self.hidden_size, rng=rng),
            nn.ReLU(),
            nn.Linear(self.hidden_size, 1, rng=rng),
        )

        # Stage 1: source systems, full network.
        blocks, labels = [], []
        for name, sequences in sources.items():
            blocks.append(self.featurizer.embed_sequences(name, sequences))
            labels.append(self._labels(sequences))
        self._train_phase(
            np.concatenate(blocks, axis=0), np.concatenate(labels),
            self._lstm.parameters() + self._classifier.parameters(),
            self.source_epochs, seed_offset=1,
        )

        # Stage 2: target slice, shared LSTM frozen, classifier fine-tuned.
        target_embedded = self.featurizer.embed_sequences(target_system, target_train)
        self._train_phase(
            target_embedded, self._labels(target_train),
            self._classifier.parameters(), self.target_epochs, seed_offset=2,
        )
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._lstm is None:
            raise RuntimeError("fit must be called before predict")
        embedded = self.featurizer.embed_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)
        with nn.no_grad():
            for start in range(0, len(embedded), 256):
                probs = self._forward(embedded[start : start + 256]).sigmoid().data
                out[start : start + 256] = (probs > 0.5).astype(np.int64)
        return out
