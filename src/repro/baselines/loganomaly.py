"""LogAnomaly (Meng et al., IJCAI 2019): sequential + quantitative LSTM.

Unsupervised, normal-only training like DeepLog, but with two pattern
views: a *sequential* LSTM predicting the next event's semantic embedding
(template2vec in the paper; our shared sentence encoder here), and a
*quantitative* LSTM over event-count vectors.  A window is anomalous if
either view flags it.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, EventIdFeaturizer, RawSequenceFeaturizer

__all__ = ["LogAnomaly"]


class LogAnomaly(BaselineDetector):
    name = "LogAnomaly"
    paradigm = "Unsupervised"

    def __init__(self, hidden_size: int = 64, num_layers: int = 2, history: int = 5,
                 top_k: int = 9, epochs: int = 5, lr: float = 1e-3, batch_size: int = 128,
                 seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.history = history
        self.top_k = top_k
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.ids = EventIdFeaturizer()
        self.semantic = RawSequenceFeaturizer()
        self._system = ""
        self._vocab_size = 0
        self._template_matrix: np.ndarray | None = None
        self._sequential: tuple | None = None
        self._count_threshold: float = 0.0
        self._count_profile: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _template_vectors(self, max_id: int) -> np.ndarray:
        store = self.ids._store(self._system)
        matrix = np.zeros((max_id + 1, self.semantic.dim), dtype=np.float32)
        for event_id in range(max_id + 1):
            try:
                text = store.template_text(event_id)
            except KeyError:
                continue
            matrix[event_id] = self.semantic.encoder.encode(text)
        return matrix

    def _count_vector(self, row: np.ndarray) -> np.ndarray:
        counts = np.zeros(self._vocab_size, dtype=np.float32)
        for event in row:
            if event < self._vocab_size:
                counts[event] += 1
        return counts

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        del sources
        self._system = target_system
        normal = self._normal_only(target_train)
        if not normal:
            raise ValueError("LogAnomaly needs normal training sequences")
        id_rows = self.ids.encode_sequences(target_system, normal)
        max_id = int(id_rows.max())
        self._vocab_size = max_id + 1 + 512
        self._template_matrix = self._template_vectors(max_id)

        rng = np.random.default_rng(self.seed)
        lstm = nn.LSTM(self.semantic.dim, self.hidden_size, num_layers=self.num_layers, rng=rng)
        head = nn.Linear(self.hidden_size, max_id + 1, rng=rng)
        params = lstm.parameters() + head.parameters()
        optimizer = nn.Adam(params, lr=self.lr)

        inputs, targets = [], []
        for row in id_rows:
            for start in range(len(row) - self.history):
                inputs.append(self._template_matrix[row[start : start + self.history]])
                targets.append(row[start + self.history])
        inputs = np.array(inputs, dtype=np.float32)
        targets = np.array(targets, dtype=np.int64)

        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(inputs))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                _, hidden = lstm(nn.Tensor(inputs[index]))
                loss = nn.cross_entropy(head(hidden), targets[index])
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        self._sequential = (lstm, head, max_id)

        # Quantitative view: profile of per-window event-count vectors.
        counts = np.stack([self._count_vector(row) for row in id_rows])
        self._count_profile = counts.mean(axis=0)
        deviations = np.linalg.norm(counts - self._count_profile, axis=1)
        self._count_threshold = float(np.percentile(deviations, 99.5)) + 1e-6
        return self

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._sequential is None:
            raise RuntimeError("fit must be called before predict")
        lstm, head, max_id = self._sequential
        id_rows = self.ids.encode_sequences(self._system, sequences)
        out = np.zeros(len(sequences), dtype=np.int64)

        inputs, targets, owners = [], [], []
        for row_index, row in enumerate(id_rows):
            if row.max() > max_id:
                out[row_index] = 1  # unseen template: sequential view flags it
                continue
            for start in range(len(row) - self.history):
                inputs.append(self._template_matrix[row[start : start + self.history]])
                targets.append(row[start + self.history])
                owners.append(row_index)
        if inputs:
            with nn.no_grad():
                _, hidden = lstm(nn.Tensor(np.array(inputs, dtype=np.float32)))
                logits = head(hidden).data
            ranked = np.argsort(-logits, axis=1)[:, : self.top_k]
            hits = (ranked == np.array(targets)[:, None]).any(axis=1)
            for owner, hit in zip(owners, hits):
                if not hit:
                    out[owner] = 1

        for row_index, row in enumerate(id_rows):
            deviation = np.linalg.norm(self._count_vector(row) - self._count_profile)
            if deviation > self._count_threshold:
                out[row_index] = 1
        return out
