"""DeepLog (Du et al., CCS 2017): LSTM next-event prediction.

Unsupervised: trains only on *normal* target-system sequences.  An LSTM
learns to predict the next event id from the preceding window; at
detection time a sequence is anomalous if any actual next event is not in
the model's top-k predictions.  With few target samples DeepLog cannot
cover the normal pattern space, so new-but-normal patterns are flagged —
the high-recall/low-precision failure mode in Tables IV/V.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..logs.sequences import LogSequence
from .base import BaselineDetector, EventIdFeaturizer

__all__ = ["DeepLog"]


class DeepLog(BaselineDetector):
    name = "DeepLog"
    paradigm = "Unsupervised"

    def __init__(self, hidden_size: int = 64, num_layers: int = 2, history: int = 5,
                 top_k: int = 9, epochs: int = 5, lr: float = 1e-3, batch_size: int = 128,
                 seed: int = 0):
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.history = history
        self.top_k = top_k
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.featurizer = EventIdFeaturizer()
        self._model: nn.Module | None = None
        self._head: nn.Linear | None = None
        self._embedding: nn.Embedding | None = None
        self._vocab_size = 0
        self._system = ""

    def _windows(self, id_sequences: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(history, next) training pairs from event-id sequences."""
        inputs, targets = [], []
        for row in id_sequences:
            for start in range(len(row) - self.history):
                inputs.append(row[start : start + self.history])
                targets.append(row[start + self.history])
        return np.array(inputs, dtype=np.int64), np.array(targets, dtype=np.int64)

    def fit(self, sources, target_system, target_train):
        """Train the detector on the provided experiment data."""
        del sources  # single-system method
        self._system = target_system
        normal = self._normal_only(target_train)
        if not normal:
            raise ValueError("DeepLog needs at least one normal training sequence")
        ids = self.featurizer.encode_sequences(target_system, normal)
        # Vocabulary must leave headroom for events first seen at test time.
        self._vocab_size = int(ids.max()) + 1 + 512
        rng = np.random.default_rng(self.seed)
        self._embedding = nn.Embedding(self._vocab_size, 32, rng=rng)
        self._model = nn.LSTM(32, self.hidden_size, num_layers=self.num_layers, rng=rng)
        self._head = nn.Linear(self.hidden_size, self._vocab_size, rng=rng)
        params = (
            self._embedding.parameters() + self._model.parameters() + self._head.parameters()
        )
        optimizer = nn.Adam(params, lr=self.lr)

        inputs, targets = self._windows(ids)
        order_rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.epochs):
            order = order_rng.permutation(len(inputs))
            for start in range(0, len(order), self.batch_size):
                index = order[start : start + self.batch_size]
                embedded = self._embedding(inputs[index])
                _, hidden = self._model(embedded)
                logits = self._head(hidden)
                loss = nn.cross_entropy(logits, targets[index])
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
        return self

    def _top_k_hits(self, inputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            embedded = self._embedding(inputs)
            _, hidden = self._model(embedded)
            logits = self._head(hidden).data
        ranked = np.argsort(-logits, axis=1)[:, : self.top_k]
        return (ranked == targets[:, None]).any(axis=1)

    def predict(self, sequences: list[LogSequence]) -> np.ndarray:
        """Return binary anomaly predictions for the given sequences."""
        if self._model is None:
            raise RuntimeError("fit must be called before predict")
        ids = self.featurizer.encode_sequences(self._system, sequences)
        # Unseen event ids beyond the embedding table are anomalies outright.
        out = np.zeros(len(sequences), dtype=np.int64)
        inputs, targets, owners = [], [], []
        for row_index, row in enumerate(ids):
            if row.max() >= self._vocab_size:
                out[row_index] = 1
                continue
            for start in range(len(row) - self.history):
                inputs.append(row[start : start + self.history])
                targets.append(row[start + self.history])
                owners.append(row_index)
        if inputs:
            hits = self._top_k_hits(np.array(inputs), np.array(targets))
            for owner, hit in zip(owners, hits):
                if not hit:
                    out[owner] = 1
        return out
