"""Vocabulary construction shared by the embedding models."""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

__all__ = ["tokenize", "Vocabulary"]

_TOKEN_SPLIT = re.compile(r"[^a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokenization (numbers kept as tokens)."""
    return [t for t in _TOKEN_SPLIT.split(text.lower()) if t]


class Vocabulary:
    """Token <-> id mapping with frequency counts and min-count filtering."""

    UNK = "<unk>"

    def __init__(self, min_count: int = 1, max_size: int | None = None):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.min_count = min_count
        self.max_size = max_size
        self.counts: Counter[str] = Counter()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frozen = False

    def add_sentence(self, tokens: Iterable[str]) -> None:
        """Accumulate token counts from one sentence."""
        if self._frozen:
            raise RuntimeError("vocabulary is frozen; cannot add more sentences")
        self.counts.update(tokens)

    def build(self) -> "Vocabulary":
        """Freeze the vocabulary: assign ids by descending frequency."""
        ranked = [t for t, c in self.counts.most_common() if c >= self.min_count]
        if self.max_size is not None:
            ranked = ranked[: self.max_size]
        self._id_to_token = [self.UNK] + ranked
        self._token_to_id = {t: i for i, t in enumerate(self._id_to_token)}
        self._frozen = True
        return self

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Token id, 0 (UNK) if unknown."""
        return self._token_to_id.get(token, 0)

    def token_of(self, token_id: int) -> str:
        """Token string for a token id."""
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map tokens to ids (0 for unknown)."""
        return [self.id_of(t) for t in tokens]

    @property
    def tokens(self) -> list[str]:
        """All tokens in id order."""
        return list(self._id_to_token)
