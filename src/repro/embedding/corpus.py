"""Built-in ops-domain training corpus for the "pre-trained" encoder.

The paper embeds LLM interpretations with an off-the-shelf pre-trained
model (DistilBERT) and explicitly notes the model choice is not a
contribution.  Our substitute trains PPMI-SVD word vectors on a corpus of
operations/infrastructure English assembled here: the concept catalog's
canonical sentences and dialect phrases plus paraphrase templates that
place domain words in shared contexts (so e.g. "connection", "session",
"link" end up with similar vectors).
"""

from __future__ import annotations

import numpy as np

from ..logs.events import CONCEPTS

__all__ = ["build_corpus"]

# Paraphrase frames: each group of sentences uses near-synonym slots so the
# co-occurrence model learns domain synonymy the way a web-scale model would.
_PARAPHRASE_FRAMES = [
    "the {noun} to the remote {peer} was {failverb} unexpectedly",
    "operators observed that the {noun} with the {peer} {failverb} during the incident",
    "after the fault the {noun} between nodes was {failverb} and traffic stopped",
]

_NOUNS = ["connection", "session", "link", "channel", "stream", "circuit"]
_PEERS = ["endpoint", "server", "peer", "host", "node", "replica"]
_FAILVERBS = ["interrupted", "dropped", "refused", "reset", "broken", "lost"]

_HEALTH_FRAMES = [
    "the periodic {check} confirmed the {unit} is {state}",
    "a scheduled {check} reported the {unit} as {state}",
]
_CHECKS = ["heartbeat", "probe", "health check", "liveness check", "diagnostic"]
_UNITS = ["component", "service", "daemon", "process", "node", "broker"]
_STATES = ["alive", "healthy", "responsive", "nominal", "operational"]

_FAILURE_FRAMES = [
    "the {device} reported an unrecoverable {error} and was taken offline",
    "engineers replaced the {device} after repeated {error} events",
]
_DEVICES = ["disk", "memory module", "cache unit", "fan", "storage device", "dimm"]
_ERRORS = ["parity error", "read error", "write error", "hardware fault", "io error", "media error"]

_DB_FRAMES = [
    "the {op} exceeded its {limit} and was {action}",
    "monitoring flagged that the {op} went over the {limit} so it was {action}",
]
_OPS = ["query", "transaction", "statement", "replication stream", "checkpoint", "batch job"]
_LIMITS = ["deadline", "timeout", "latency budget", "lag threshold", "quota", "rate limit"]
_ACTIONS = ["aborted", "cancelled", "terminated", "rejected", "killed"]


def _fill(frames: list[str], rng: np.random.Generator, repetitions: int,
          **slots: list[str]) -> list[str]:
    sentences = []
    for _ in range(repetitions):
        frame = frames[int(rng.integers(len(frames)))]
        chosen = {key: values[int(rng.integers(len(values)))] for key, values in slots.items()}
        sentences.append(frame.format(**chosen))
    return sentences


def build_corpus(seed: int = 0, paraphrases_per_family: int = 120) -> list[str]:
    """Assemble the full training corpus (deterministic for a given seed)."""
    rng = np.random.default_rng(seed)
    corpus: list[str] = []
    for concept in CONCEPTS:
        corpus.append(concept.canonical)
        for phrase in concept.phrases.values():
            corpus.append(phrase.replace("<*>", " "))
    corpus += _fill(_PARAPHRASE_FRAMES, rng, paraphrases_per_family,
                    noun=_NOUNS, peer=_PEERS, failverb=_FAILVERBS)
    corpus += _fill(_HEALTH_FRAMES, rng, paraphrases_per_family,
                    check=_CHECKS, unit=_UNITS, state=_STATES)
    corpus += _fill(_FAILURE_FRAMES, rng, paraphrases_per_family,
                    device=_DEVICES, error=_ERRORS)
    corpus += _fill(_DB_FRAMES, rng, paraphrases_per_family,
                    op=_OPS, limit=_LIMITS, action=_ACTIONS)
    return corpus
