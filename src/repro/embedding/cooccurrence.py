"""PPMI + truncated-SVD word vectors (GloVe-lite).

Builds a symmetric windowed co-occurrence matrix over a corpus, applies
positive pointwise mutual information, and factorizes with a truncated
SVD.  Levy & Goldberg (2014) showed this classical pipeline approximates
skip-gram embeddings; it is fast, deterministic and dependency-free, which
makes it the right "pre-trained model" substitute here.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from ..obs import get_registry
from .vocab import Vocabulary, tokenize

__all__ = ["WordVectors", "train_word_vectors", "clear_word_vector_cache"]

# Benchmark sweeps and CrossSystemExperiment call train_word_vectors with
# identical corpora many times; the SVD dominates, so completed results are
# memoized by content hash.  Bounded FIFO — a sweep rarely revisits more
# than a handful of (corpus, dim, window, min_count) combinations.
_CACHE_CAPACITY = 32
_WORDVEC_CACHE: OrderedDict[str, WordVectors] = OrderedDict()


def _cache_key(corpus: list[str], dim: int, window: int, min_count: int) -> str:
    hasher = hashlib.sha256()
    hasher.update(f"{dim}|{window}|{min_count}".encode("utf-8"))
    for sentence in corpus:
        hasher.update(b"\x00")
        hasher.update(sentence.encode("utf-8"))
    return hasher.hexdigest()


def clear_word_vector_cache() -> None:
    """Drop all memoized :func:`train_word_vectors` results."""
    _WORDVEC_CACHE.clear()


class WordVectors:
    """Dense word vectors with cosine-similarity helpers."""

    def __init__(self, vocabulary: Vocabulary, matrix: np.ndarray):
        if matrix.shape[0] != len(vocabulary):
            raise ValueError(
                f"matrix rows {matrix.shape[0]} != vocabulary size {len(vocabulary)}"
            )
        self.vocabulary = vocabulary
        self.matrix = matrix.astype(np.float32)
        self.dim = matrix.shape[1]

    def vector(self, token: str) -> np.ndarray:
        """Dense vector for a token (UNK row if unknown)."""
        return self.matrix[self.vocabulary.id_of(token)]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens."""
        va, vb = self.vector(a), self.vector(b)
        denom = float(np.linalg.norm(va) * np.linalg.norm(vb))
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """k nearest tokens by cosine similarity."""
        target = self.vector(token)
        norms = np.linalg.norm(self.matrix, axis=1) * (np.linalg.norm(target) + 1e-12)
        scores = self.matrix @ target / np.maximum(norms, 1e-12)
        order = np.argsort(-scores)
        results = []
        for idx in order:
            candidate = self.vocabulary.token_of(int(idx))
            if candidate == token or candidate == Vocabulary.UNK:
                continue
            results.append((candidate, float(scores[idx])))
            if len(results) == k:
                break
        return results


def _cooccurrence_matrix(sentences: list[list[str]], vocabulary: Vocabulary,
                         window: int) -> np.ndarray:
    size = len(vocabulary)
    counts = np.zeros((size, size), dtype=np.float64)
    for tokens in sentences:
        ids = vocabulary.encode(tokens)
        for i, center in enumerate(ids):
            lo = max(0, i - window)
            hi = min(len(ids), i + window + 1)
            for j in range(lo, hi):
                if j == i:
                    continue
                counts[center, ids[j]] += 1.0 / abs(j - i)  # distance-weighted, as in GloVe
    return counts


def _ppmi(counts: np.ndarray) -> np.ndarray:
    total = counts.sum()
    if total == 0:
        return counts
    row = counts.sum(axis=1, keepdims=True)
    col = counts.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log((counts * total) / (row * col))
    pmi[~np.isfinite(pmi)] = 0.0
    return np.maximum(pmi, 0.0)


def train_word_vectors(corpus: list[str], dim: int = 64, window: int = 4,
                       min_count: int = 2, use_cache: bool = True) -> WordVectors:
    """Train PPMI-SVD vectors on raw sentences.

    The returned dimensionality is ``min(dim, rank)``; callers should read
    :attr:`WordVectors.dim` rather than assume the request was honored
    exactly (tiny corpora can have lower rank).

    Results are memoized by a hash of (corpus, dim, window, min_count);
    repeated fits in benchmark sweeps get the same :class:`WordVectors`
    object back, so treat it as read-only.  ``use_cache=False`` bypasses
    both lookup and insertion.  Hits and misses are counted on
    ``embedding.wordvectors.cache_{hits,misses}``.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if use_cache:
        key = _cache_key(corpus, dim, window, min_count)
        registry = get_registry()
        cached = _WORDVEC_CACHE.get(key)
        if cached is not None:
            _WORDVEC_CACHE.move_to_end(key)
            registry.counter("embedding.wordvectors.cache_hits").inc()
            return cached
        registry.counter("embedding.wordvectors.cache_misses").inc()
    sentences = [tokenize(s) for s in corpus]
    vocabulary = Vocabulary(min_count=min_count)
    for tokens in sentences:
        vocabulary.add_sentence(tokens)
    vocabulary.build()
    counts = _cooccurrence_matrix(sentences, vocabulary, window)
    ppmi = _ppmi(counts)
    # Dense SVD is fine at these vocabulary sizes (hundreds to low thousands).
    u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
    k = min(dim, len(s))
    vectors = u[:, :k] * np.sqrt(s[:k])[None, :]
    if k < dim:
        vectors = np.pad(vectors, ((0, 0), (0, dim - k)))
    result = WordVectors(vocabulary, vectors.astype(np.float32))
    if use_cache:
        _WORDVEC_CACHE[key] = result
        while len(_WORDVEC_CACHE) > _CACHE_CAPACITY:
            _WORDVEC_CACHE.popitem(last=False)
    return result
