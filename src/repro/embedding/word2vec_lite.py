"""Skip-gram with negative sampling (word2vec) in numpy.

LogTransfer and LogTAD build their log representations from word2vec/GloVe
vectors trained on raw log text; this is the trainer those baselines use.
It is a standard SGNS implementation: for each (center, context) pair draw
``negatives`` noise words from the unigram^0.75 distribution and take a
gradient step on the logistic loss.
"""

from __future__ import annotations

import numpy as np

from .cooccurrence import WordVectors
from .vocab import Vocabulary, tokenize

__all__ = ["train_skipgram"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def train_skipgram(corpus: list[str], dim: int = 64, window: int = 3,
                   negatives: int = 5, epochs: int = 3, lr: float = 0.05,
                   min_count: int = 2, seed: int = 0) -> WordVectors:
    """Train SGNS vectors over raw sentences; returns :class:`WordVectors`."""
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    rng = np.random.default_rng(seed)
    sentences = [tokenize(s) for s in corpus]
    vocabulary = Vocabulary(min_count=min_count)
    for tokens in sentences:
        vocabulary.add_sentence(tokens)
    vocabulary.build()
    size = len(vocabulary)

    # Noise distribution: unigram^0.75 over the frozen vocabulary.
    freqs = np.array(
        [vocabulary.counts.get(vocabulary.token_of(i), 1) for i in range(size)],
        dtype=np.float64,
    )
    noise = freqs**0.75
    noise /= noise.sum()

    center_vecs = (rng.standard_normal((size, dim)) * 0.1).astype(np.float64)
    context_vecs = np.zeros((size, dim), dtype=np.float64)

    encoded = [vocabulary.encode(tokens) for tokens in sentences if tokens]
    for epoch in range(epochs):
        step_lr = lr * (1.0 - epoch / epochs) + 1e-4
        for ids in encoded:
            for i, center in enumerate(ids):
                lo = max(0, i - window)
                hi = min(len(ids), i + window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    context = ids[j]
                    sampled = rng.choice(size, size=negatives, p=noise)
                    targets = np.concatenate(([context], sampled))
                    labels = np.zeros(len(targets))
                    labels[0] = 1.0
                    vecs = context_vecs[targets]  # (1+neg, dim)
                    scores = _sigmoid(vecs @ center_vecs[center])
                    gradient = (scores - labels)[:, None]
                    grad_center = (gradient * vecs).sum(axis=0)
                    context_vecs[targets] -= step_lr * gradient * center_vecs[center]
                    center_vecs[center] -= step_lr * grad_center
    return WordVectors(vocabulary, center_vecs.astype(np.float32))
