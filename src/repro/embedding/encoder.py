"""Sentence encoder: SIF-weighted mean of word vectors.

Maps a sentence (an LLM interpretation, or a raw template for the
"w/o LEI" ablation) to a fixed-dimension vector.  Uses smooth inverse
frequency weighting (Arora et al., 2017) over the word-vector vocabulary;
out-of-vocabulary tokens get deterministic hash vectors so unseen system
jargon still contributes a stable (if uninformed) signal.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..obs import get_registry
from .cooccurrence import WordVectors
from .vocab import tokenize

__all__ = ["SentenceEncoder"]


def _hash_vector(token: str, dim: int) -> np.ndarray:
    """Deterministic pseudo-random unit vector for an OOV token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(dim).astype(np.float32)
    return vec / (np.linalg.norm(vec) + 1e-12)


class SentenceEncoder:
    """Fixed-dimension sentence embeddings from word vectors.

    Parameters
    ----------
    word_vectors:
        Trained :class:`WordVectors`.
    sif_a:
        SIF smoothing constant; weight of token t is ``a / (a + p(t))``.
    oov_scale:
        Magnitude of hash vectors for out-of-vocabulary tokens.
    oov_cache_size:
        Capacity of the OOV hash-vector cache.  A stream of novel tokens
        under ``repro serve`` previously grew it without bound; now the
        oldest entry is evicted (FIFO — hash vectors are cheap to rebuild,
        so recency tracking isn't worth the bookkeeping) and counted on
        ``embedding.encoder.oov_evictions``.
    """

    def __init__(self, word_vectors: WordVectors, sif_a: float = 1e-3, oov_scale: float = 0.3,
                 oov_cache_size: int = 4096):
        if oov_cache_size < 1:
            raise ValueError(f"oov_cache_size must be >= 1, got {oov_cache_size}")
        self.word_vectors = word_vectors
        self.dim = word_vectors.dim
        self.sif_a = sif_a
        self.oov_scale = oov_scale
        self.oov_cache_size = oov_cache_size
        total = sum(word_vectors.vocabulary.counts.values()) or 1
        self._probabilities = {
            token: count / total for token, count in word_vectors.vocabulary.counts.items()
        }
        self._oov_cache: dict[str, np.ndarray] = {}
        registry = get_registry()
        self._oov_evictions = registry.counter("embedding.encoder.oov_evictions")
        self._dedup_hits = registry.counter("embedding.encoder.batch_dedup_hits")

    def _token_vector(self, token: str) -> np.ndarray:
        if token in self.word_vectors.vocabulary:
            return self.word_vectors.vector(token)
        cached = self._oov_cache.get(token)
        if cached is None:
            cached = _hash_vector(token, self.dim) * self.oov_scale
            while len(self._oov_cache) >= self.oov_cache_size:
                self._oov_cache.pop(next(iter(self._oov_cache)))
                self._oov_evictions.inc()
            self._oov_cache[token] = cached
        return cached

    def encode(self, sentence: str) -> np.ndarray:
        """Encode one sentence to a ``dim``-vector (zero vector if empty)."""
        tokens = tokenize(sentence)
        if not tokens:
            return np.zeros(self.dim, dtype=np.float32)
        accum = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            probability = self._probabilities.get(token, 0.0)
            weight = self.sif_a / (self.sif_a + probability)
            accum += weight * self._token_vector(token)
        vec = (accum / len(tokens)).astype(np.float32)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        return vec

    def encode_batch(self, sentences: list[str]) -> np.ndarray:
        """Encode many sentences into an ``(n, dim)`` matrix.

        Log windows repeat a small template set, so each distinct sentence
        is encoded once and scattered to every position it occupies; the
        saved encodes are counted on ``embedding.encoder.batch_dedup_hits``.
        """
        if not sentences:
            return np.zeros((0, self.dim), dtype=np.float32)
        positions: dict[str, list[int]] = {}
        for i, sentence in enumerate(sentences):
            positions.setdefault(sentence, []).append(i)
        duplicates = len(sentences) - len(positions)
        if duplicates:
            self._dedup_hits.inc(duplicates)
        out = np.empty((len(sentences), self.dim), dtype=np.float32)
        for sentence, indices in positions.items():
            out[indices] = self.encode(sentence)
        return out
