"""Sentence encoder: SIF-weighted mean of word vectors.

Maps a sentence (an LLM interpretation, or a raw template for the
"w/o LEI" ablation) to a fixed-dimension vector.  Uses smooth inverse
frequency weighting (Arora et al., 2017) over the word-vector vocabulary;
out-of-vocabulary tokens get deterministic hash vectors so unseen system
jargon still contributes a stable (if uninformed) signal.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .cooccurrence import WordVectors
from .vocab import tokenize

__all__ = ["SentenceEncoder"]


def _hash_vector(token: str, dim: int) -> np.ndarray:
    """Deterministic pseudo-random unit vector for an OOV token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(dim).astype(np.float32)
    return vec / (np.linalg.norm(vec) + 1e-12)


class SentenceEncoder:
    """Fixed-dimension sentence embeddings from word vectors.

    Parameters
    ----------
    word_vectors:
        Trained :class:`WordVectors`.
    sif_a:
        SIF smoothing constant; weight of token t is ``a / (a + p(t))``.
    oov_scale:
        Magnitude of hash vectors for out-of-vocabulary tokens.
    """

    def __init__(self, word_vectors: WordVectors, sif_a: float = 1e-3, oov_scale: float = 0.3):
        self.word_vectors = word_vectors
        self.dim = word_vectors.dim
        self.sif_a = sif_a
        self.oov_scale = oov_scale
        total = sum(word_vectors.vocabulary.counts.values()) or 1
        self._probabilities = {
            token: count / total for token, count in word_vectors.vocabulary.counts.items()
        }
        self._oov_cache: dict[str, np.ndarray] = {}

    def _token_vector(self, token: str) -> np.ndarray:
        if token in self.word_vectors.vocabulary:
            return self.word_vectors.vector(token)
        cached = self._oov_cache.get(token)
        if cached is None:
            cached = _hash_vector(token, self.dim) * self.oov_scale
            self._oov_cache[token] = cached
        return cached

    def encode(self, sentence: str) -> np.ndarray:
        """Encode one sentence to a ``dim``-vector (zero vector if empty)."""
        tokens = tokenize(sentence)
        if not tokens:
            return np.zeros(self.dim, dtype=np.float32)
        accum = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            probability = self._probabilities.get(token, 0.0)
            weight = self.sif_a / (self.sif_a + probability)
            accum += weight * self._token_vector(token)
        vec = (accum / len(tokens)).astype(np.float32)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        return vec

    def encode_batch(self, sentences: list[str]) -> np.ndarray:
        """Encode many sentences into an ``(n, dim)`` matrix."""
        if not sentences:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack([self.encode(s) for s in sentences])
