"""TF-IDF vectorizer (used by simpler baselines and as an encoder fallback)."""

from __future__ import annotations

import numpy as np

from .vocab import Vocabulary, tokenize

__all__ = ["TfidfVectorizer"]


class TfidfVectorizer:
    """Fit/transform TF-IDF with smooth idf and L2 normalization."""

    def __init__(self, min_count: int = 1, max_size: int | None = None):
        self._vocabulary = Vocabulary(min_count=min_count, max_size=max_size)
        self._idf: np.ndarray | None = None

    @property
    def vocabulary(self) -> Vocabulary:
        """The fitted vocabulary."""
        return self._vocabulary

    def fit(self, documents: list[str]) -> "TfidfVectorizer":
        """Train the detector on the provided experiment data."""
        tokenized = [tokenize(d) for d in documents]
        for tokens in tokenized:
            self._vocabulary.add_sentence(tokens)
        self._vocabulary.build()
        size = len(self._vocabulary)
        doc_freq = np.zeros(size, dtype=np.float64)
        for tokens in tokenized:
            for token_id in set(self._vocabulary.encode(tokens)):
                doc_freq[token_id] += 1
        n_docs = max(1, len(documents))
        self._idf = np.log((1 + n_docs) / (1 + doc_freq)) + 1.0
        return self

    def transform(self, documents: list[str]) -> np.ndarray:
        if self._idf is None:
            raise RuntimeError("TfidfVectorizer must be fit before transform")
        size = len(self._vocabulary)
        out = np.zeros((len(documents), size), dtype=np.float32)
        for row, document in enumerate(documents):
            ids = self._vocabulary.encode(tokenize(document))
            if not ids:
                continue
            for token_id in ids:
                out[row, token_id] += 1.0
            out[row] /= len(ids)
            out[row] *= self._idf
            norm = np.linalg.norm(out[row])
            if norm > 0:
                out[row] /= norm
        return out

    def fit_transform(self, documents: list[str]) -> np.ndarray:
        return self.fit(documents).transform(documents)
