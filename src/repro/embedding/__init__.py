"""Event embedding substrate.

Stands in for the off-the-shelf pre-trained embedding model: PPMI-SVD and
skip-gram word vectors, SIF sentence encoding, TF-IDF, and a cached
"pre-trained" domain encoder.
"""

from .vocab import Vocabulary, tokenize
from .corpus import build_corpus
from .cooccurrence import WordVectors, clear_word_vector_cache, train_word_vectors
from .word2vec_lite import train_skipgram
from .tfidf import TfidfVectorizer
from .encoder import SentenceEncoder
from .analysis import ClusterPurity, alignment_gap, concept_cluster_purity, isotropy_score
from .pretrained import DEFAULT_EMBEDDING_DIM, load_pretrained_encoder

__all__ = [
    "Vocabulary", "tokenize",
    "build_corpus",
    "WordVectors", "train_word_vectors", "clear_word_vector_cache", "train_skipgram",
    "TfidfVectorizer",
    "SentenceEncoder",
    "load_pretrained_encoder", "DEFAULT_EMBEDDING_DIM",
    "ClusterPurity", "concept_cluster_purity", "isotropy_score", "alignment_gap",
]
