"""The "pre-trained model" used for event embedding (§III-C).

The paper embeds interpretations with DistilBERT; here the equivalent is a
PPMI-SVD :class:`SentenceEncoder` trained once on the built-in ops-domain
corpus and cached per (dim, seed).  The paper notes the choice of
pre-trained model is not a contribution — what matters is that
semantically similar interpretations land nearby, which this encoder
provides (validated in the test suite).
"""

from __future__ import annotations

from functools import lru_cache

from .cooccurrence import train_word_vectors
from .corpus import build_corpus
from .encoder import SentenceEncoder

__all__ = ["load_pretrained_encoder", "DEFAULT_EMBEDDING_DIM"]

DEFAULT_EMBEDDING_DIM = 64


@lru_cache(maxsize=4)
def load_pretrained_encoder(dim: int = DEFAULT_EMBEDDING_DIM, seed: int = 0) -> SentenceEncoder:
    """Train (or return the cached) domain sentence encoder."""
    corpus = build_corpus(seed=seed)
    vectors = train_word_vectors(corpus, dim=dim, window=4, min_count=2)
    return SentenceEncoder(vectors)
