"""Embedding-space diagnostics.

Tools for verifying the properties LEI depends on: that interpretations of
the same event concept cluster tightly across systems, that distinct
concepts stay apart, and that the embedding space is not degenerate
(anisotropic collapse would make cosine similarities meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .encoder import SentenceEncoder

__all__ = ["ClusterPurity", "concept_cluster_purity", "isotropy_score",
           "alignment_gap"]


@dataclass(frozen=True)
class ClusterPurity:
    """Nearest-neighbour purity of labelled embeddings."""

    purity: float          # fraction of points whose nearest neighbour shares the label
    n_points: int
    n_labels: int


def concept_cluster_purity(embeddings: np.ndarray, labels: list) -> ClusterPurity:
    """1-NN label purity: do same-concept texts embed adjacently?

    ``embeddings`` is (n, d); ``labels`` any hashable per row.
    """
    n = len(embeddings)
    if n != len(labels):
        raise ValueError(f"embeddings ({n}) and labels ({len(labels)}) must align")
    if n < 2:
        return ClusterPurity(purity=1.0, n_points=n, n_labels=len(set(labels)))
    normalized = embeddings / np.maximum(
        np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12
    )
    similarities = normalized @ normalized.T
    np.fill_diagonal(similarities, -np.inf)
    nearest = np.argmax(similarities, axis=1)
    matches = sum(1 for i, j in enumerate(nearest) if labels[i] == labels[int(j)])
    return ClusterPurity(
        purity=matches / n, n_points=n, n_labels=len(set(labels))
    )


def isotropy_score(embeddings: np.ndarray) -> float:
    """Spectral isotropy in (0, 1]: ratio of mean to max eigenvalue
    of the embedding covariance.  Near 0 means the space collapsed onto
    one direction; near 1 means variance spreads over all directions."""
    if len(embeddings) < 2:
        return 1.0
    centered = embeddings - embeddings.mean(axis=0, keepdims=True)
    covariance = centered.T @ centered / max(1, len(embeddings) - 1)
    eigenvalues = np.linalg.eigvalsh(covariance)
    top = float(eigenvalues[-1])
    if top <= 0:
        return 1.0
    return float(eigenvalues.mean() / top)


def alignment_gap(encoder: SentenceEncoder, grouped_texts: dict[str, list[str]]) -> float:
    """Mean within-group cosine minus mean across-group cosine.

    ``grouped_texts`` maps a concept label to its renderings (e.g. each
    system's LEI interpretation).  A large positive gap is the quantitative
    statement of the paper's Table I claim after LEI; raw dialect text
    should score near zero.
    """
    labels, vectors = [], []
    for label, texts in grouped_texts.items():
        for text in texts:
            labels.append(label)
            vectors.append(encoder.encode(text))
    if len(vectors) < 2:
        return 0.0
    matrix = np.stack(vectors)
    within, across = [], []
    for i in range(len(matrix)):
        for j in range(i + 1, len(matrix)):
            similarity = float(matrix[i] @ matrix[j])
            (within if labels[i] == labels[j] else across).append(similarity)
    mean_within = float(np.mean(within)) if within else 0.0
    mean_across = float(np.mean(across)) if across else 0.0
    return mean_within - mean_across
