"""Log drift injection for robustness/failure testing.

Real systems evolve: templates get reworded, fields are added, components
renamed (the instability LogRobust was built for, and the external threat
of §IV-E1).  These transforms perturb generated log records so tests and
ablations can measure how each method degrades under drift.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .generator import LogRecord

__all__ = ["reword_records", "inject_label_noise", "inject_field", "DRIFT_SYNONYMS"]

# Conservative operational-English rewordings used by :func:`reword_records`.
DRIFT_SYNONYMS: dict[str, str] = {
    "failed": "unsuccessful",
    "error": "fault",
    "errors": "faults",
    "down": "offline",
    "connection": "link",
    "session": "channel",
    "node": "host",
    "exceeded": "surpassed",
    "expired": "lapsed",
    "completed": "finished",
    "started": "launched",
}


def _reword_message(message: str, rng: np.random.Generator, probability: float) -> str:
    tokens = message.split(" ")
    changed = []
    for token in tokens:
        key = token.lower().strip(",.:;()")
        if key in DRIFT_SYNONYMS and rng.random() < probability:
            replacement = DRIFT_SYNONYMS[key]
            if token[:1].isupper():
                replacement = replacement.capitalize()
            changed.append(token.replace(token.strip(",.:;()"), replacement))
        else:
            changed.append(token)
    return " ".join(changed)


def reword_records(records: list[LogRecord], probability: float = 0.5,
                   seed: int = 0) -> list[LogRecord]:
    """Synonym-reword a fraction of drift-eligible tokens in each message.

    Labels and concepts are preserved — only the surface syntax drifts,
    which is exactly the §IV-E1 instability scenario.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    rng = np.random.default_rng(seed)
    drifted = []
    for record in records:
        message = _reword_message(record.message, rng, probability)
        drifted.append(replace(record, message=message,
                               raw=record.raw.replace(record.message, message)))
    return drifted


def inject_label_noise(records: list[LogRecord], flip_rate: float = 0.01,
                       seed: int = 0) -> list[LogRecord]:
    """Flip a fraction of line labels (the low-quality-labels threat, §IV-E1).

    Flipped records keep their text; only ``is_anomalous`` changes, so the
    noise is purely in supervision, as with misclassified production logs.
    """
    if not 0.0 <= flip_rate <= 1.0:
        raise ValueError(f"flip_rate must be in [0, 1], got {flip_rate}")
    rng = np.random.default_rng(seed)
    noisy = []
    for record in records:
        if rng.random() < flip_rate:
            noisy.append(replace(record, is_anomalous=not record.is_anomalous))
        else:
            noisy.append(record)
    return noisy


def inject_field(records: list[LogRecord], field_text: str = "trace_id=<new>",
                 probability: float = 1.0, seed: int = 0) -> list[LogRecord]:
    """Append a new structured field to messages (schema-evolution drift)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    rng = np.random.default_rng(seed)
    out = []
    for record in records:
        if rng.random() < probability:
            message = f"{record.message} {field_text}"
            out.append(replace(record, message=message,
                               raw=f"{record.raw} {field_text}"))
        else:
            out.append(record)
    return out
