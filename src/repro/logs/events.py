"""Event-concept catalog shared by all synthetic system profiles.

The paper's central observation (Table I) is that *the same anomalous event*
surfaces with radically different syntax in different systems: a network
interruption is ``Connection refused (111) in open_demux`` on Spirit but
``Lustre mount FAILED ... on control stream (CioStream)`` on BGL.  This
module encodes that structure explicitly: a catalog of event *concepts*
(the shared semantics) each carrying one surface *phrase* per system
dialect (the divergent syntax) plus the canonical natural-language
interpretation an ideal LLM would produce.

Dialects are keyed by system name: ``bgl``, ``spirit``, ``thunderbird``
(supercomputer logs, after Oliner & Stearley 2007) and ``system_a``,
``system_b``, ``system_c`` (CDMS production logs).  A concept missing a
dialect entry simply never occurs on that system — this is what creates
the asymmetric anomaly coverage the paper analyzes in §V (Fig 6).

``<*>`` marks a parameter slot; the generator fills these with values
drawn from the slot vocabulary in :mod:`repro.logs.parameters`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "EventConcept", "CONCEPTS", "concept_by_name", "concepts_for_system",
           "anomalous_concepts", "normal_concepts", "SYSTEM_NAMES"]

SYSTEM_NAMES = ("bgl", "spirit", "thunderbird", "system_a", "system_b", "system_c")


class EventKind(enum.Enum):
    """Whether a concept represents normal operation or an anomaly."""

    NORMAL = "normal"
    ANOMALOUS = "anomalous"


@dataclass(frozen=True)
class EventConcept:
    """One semantic event with per-system surface phrases.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"network_interruption"``.
    kind:
        Normal vs anomalous semantics.
    category:
        Operational category (network, hardware, storage, ...).
    canonical:
        The standardized interpretation an ideal LEI run produces; this is
        what the simulated LLM's knowledge base returns for any dialect.
    phrases:
        Mapping system name -> surface phrase with ``<*>`` parameter slots.
    """

    name: str
    kind: EventKind
    category: str
    canonical: str
    # compare=False keeps the (frozen) dataclass hashable by its scalar
    # fields even though phrases is a mutable mapping.
    phrases: dict[str, str] = field(default_factory=dict, compare=False)

    def supports(self, system: str) -> bool:
        """Whether this concept can occur on the given system."""
        return system in self.phrases


def _concept(name: str, kind: EventKind, category: str, canonical: str,
             **phrases: str) -> EventConcept:
    unknown = set(phrases) - set(SYSTEM_NAMES)
    if unknown:
        raise ValueError(f"unknown systems in phrases for {name}: {sorted(unknown)}")
    return EventConcept(name=name, kind=kind, category=category, canonical=canonical,
                        phrases=dict(phrases))


_A = EventKind.ANOMALOUS
_N = EventKind.NORMAL

# ----------------------------------------------------------------------
# Anomalous concepts
# ----------------------------------------------------------------------
_ANOMALOUS = [
    _concept(
        "network_interruption", _A, "network",
        "Network connection to a remote endpoint was interrupted.",
        bgl="Lustre mount FAILED: <*> failed on control stream (CioStream socket to <*>)",
        spirit="Connection refused (111) in open_demux, open_demux: connect <*>:<*>",
        thunderbird="kernel: nfs: server <*> not responding, still trying",
        system_a="rpc_client: broken pipe while calling shard=<*> endpoint=<*>, retry scheduled",
        system_b="[NETIO] tcp session to peer <*> dropped unexpectedly (errno=<*>)",
        system_c="Port down reason Interface <*> is down, due to Los",
    ),
    _concept(
        "parity_error", _A, "hardware",
        "A hardware parity error was detected in a memory or cache unit.",
        bgl="machine check interrupt (bit=<*>): L2 dcache unit read return parity error",
        spirit="GM: LANAI[<*>]: PANIC: mcp/gm_parity.c:<*> : parityInt(): firmware",
        thunderbird="kernel: EDAC MC<*>: CE page <*>, offset <*>, grain 8, syndrome parity",
    ),
    _concept(
        "kernel_panic", _A, "os",
        "The operating system kernel crashed and halted the node.",
        bgl="rts panic! - stopping execution, reason code <*>",
        spirit="kernel panic: Aiee, killing interrupt handler! In interrupt handler - not syncing",
        thunderbird="kernel: Kernel panic - not syncing: Fatal exception in interrupt cpu <*>",
    ),
    _concept(
        "disk_failure", _A, "storage",
        "A disk device reported unrecoverable input/output errors.",
        bgl="ciod: Error reading message prefix on CioStream; disk ioc error <*>",
        spirit="scsi(<*>): Unrecovered read error on dev sd<*>, sector <*>",
        thunderbird="kernel: EXT3-fs error (device sd<*>): ext3_get_inode_loc: unable to read inode block <*>",
        system_a="blockstore: volume vol-<*> write failed: device io error, marking segment dirty",
        system_c="DISK_ALARM slot=<*> medium error count exceeded threshold, smart status FAILED",
    ),
    _concept(
        "memory_exhaustion", _A, "memory",
        "A process exhausted available memory and allocation failed.",
        bgl="total of <*> ddr error(s) detected and corrected over <*> seconds; allocation failure follows",
        spirit="oom-killer: gfp_mask=<*> order=<*>, killed process <*> (mpirun)",
        thunderbird="kernel: Out of Memory: Killed process <*> (<*>)",
        system_a="tablet_server: memstore flush stalled, rss <*>MB over limit, rejecting writes",
        system_b="[MEM] allocation of <*> bytes failed in arena <*>, pool exhausted",
    ),
    _concept(
        "filesystem_corruption", _A, "storage",
        "Filesystem metadata corruption was detected during an operation.",
        bgl="ciod: LOGIN chdir <*> failed: Input/output error, metadata invalid",
        spirit="ext2_check_page: bad entry in directory #<*>: unaligned directory entry",
        thunderbird="kernel: journal_bmap: journal block not found at offset <*> on sd<*>",
        system_c="FS_CHECK inode table mismatch on segment <*>, expected crc <*> got <*>",
    ),
    _concept(
        "service_crash", _A, "service",
        "A server process terminated unexpectedly with a fatal signal.",
        bgl="ciod: cpu <*> at treeaddr <*> sent unexpected KILL signal, job terminated",
        spirit="pbs_mom: task_check, cannot tm_reply to <*> task <*>, daemon aborted",
        thunderbird="crond[<*>]: CRON service terminated by signal 11 (segfault)",
        system_a="worker[<*>]: fatal: unhandled exception in request loop, process exiting",
        system_b="[SUPERVISOR] child proc <*> exited abnormally rc=<*>, respawning",
        system_c="Process manager daemon <*> crashed unexpectedly, core dumped at <*>",
    ),
    _concept(
        "auth_failure_burst", _A, "security",
        "Repeated authentication failures indicate a possible intrusion attempt.",
        spirit="sshd[<*>]: Failed password for illegal user <*> from <*> port <*> ssh2 (repeated)",
        thunderbird="sshd(pam_unix)[<*>]: authentication failure; rhost=<*> burst count <*>",
        system_a="authsvc: token validation failed <*> consecutive times for principal <*>, locking",
        system_b="[AUTH] credential check rejected for uid <*> (<*> attempts within window)",
    ),
    _concept(
        "replication_lag", _A, "database",
        "Data replication between replicas fell behind beyond the allowed lag.",
        system_a="replicator: shard=<*> lag=<*>ms exceeds SLA, follower falling behind leader",
        system_b="[REPL] apply queue depth <*> on group <*> above high watermark",
        system_c="Replication channel <*> stalled, relay position behind master by <*> events",
    ),
    _concept(
        "query_timeout", _A, "database",
        "A database query exceeded its execution deadline and was aborted.",
        system_a="query_engine: stmt id=<*> cancelled after <*>ms, deadline exceeded",
        system_b="[SQL] execution of plan <*> aborted: timer expired",
        system_c="Slow query killer terminated connection <*>, runtime <*>s over limit",
    ),
    _concept(
        "lease_expired", _A, "coordination",
        "A coordination lease expired and leadership was lost.",
        system_a="raft: node <*> lost leadership for range <*>, lease expired without renewal",
        system_b="[COORD] session <*> with quorum service timed out, ephemeral state dropped",
        system_c="Cluster membership lease for broker <*> expired, initiating re-election",
    ),
    _concept(
        "node_unreachable", _A, "network",
        "A cluster node stopped responding to health probes.",
        bgl="Node card VPD check: missing <*> node(s), node map invalid",
        spirit="Ping: node sn<*> not responding to admin heartbeat after <*> attempts",
        thunderbird="heartbeat: node tbird-admin<*> declared dead, no response in <*>s",
        system_a="membership: peer <*> missed <*> gossip rounds, marking SUSPECT",
        system_b="[CLUSTER] node <*> removed from ring after failed probes",
    ),
    _concept(
        "ecc_error", _A, "hardware",
        "Correctable memory errors exceeded the alarm threshold.",
        bgl="ddr: excessive soft failures, consider replacing the card at <*>",
        spirit="EDAC: MC<*> CE count <*> on DIMM_<*> exceeded threshold",
        thunderbird="kernel: EDAC k8 MC<*>: extended error code: ECC chipkill x4 error",
    ),
    _concept(
        "fan_failure", _A, "hardware",
        "A cooling fan failed and node temperature is rising.",
        bgl="MMCS: fan module <*> RPM below minimum, temperature ascending",
        spirit="envmon: chassis fan <*> failure detected, temp zone <*> at <*>C",
        thunderbird="hald: fan <*> speed 0 rpm, thermal warning raised",
    ),
    _concept(
        "scheduler_deadlock", _A, "scheduler",
        "The job scheduler deadlocked and stopped dispatching work.",
        bgl="ciod: duplicate canonical-rank <*> to <*> mapping; scheduler wedged",
        spirit="pbs_server: dependency cycle detected among jobs <*>,<*>, queue frozen",
        thunderbird="slurmctld: agent deadlock detected, retry queue length <*>",
        system_b="[TASKQ] dispatcher stuck: worker pool <*> idle while queue depth <*>",
    ),
    _concept(
        "cache_thrash", _A, "performance",
        "Severe cache thrashing degraded request latency.",
        system_a="cache_mgr: hit ratio fell to <*>% on pool <*>, eviction storm in progress",
        system_b="[CACHE] thrash alarm: <*> evictions/s sustained on segment <*>",
        system_c="Buffer pool churn excessive, pages recycled <*> times within interval",
    ),
    _concept(
        "checkpoint_failure", _A, "storage",
        "A periodic state checkpoint could not be written.",
        bgl="ciod: failed to write checkpoint core file <*>: No space left on device",
        spirit="ckpt: checkpoint of job <*> failed, cr_core write error <*>",
        system_a="snapshotter: checkpoint seq=<*> aborted, staging upload failed",
        system_c="Checkpoint writer could not persist state file <*>, aborting cycle",
    ),
    _concept(
        "torus_link_error", _A, "network",
        "An interconnect torus link reported receive errors.",
        bgl="torus receiver <*> input pipe error(s) (dcr <*>) detected and corrected",
        spirit="myrinet: lanai link <*> CRC error burst, remapping route",
    ),
    _concept(
        "quota_exceeded", _A, "storage",
        "A tenant exceeded its storage quota and writes were rejected.",
        system_a="quota_enforcer: tenant <*> over hard limit by <*>MB, writes rejected",
        system_b="[QUOTA] namespace <*> usage <*>% of allocation, enforcement active",
        system_c="Tenant storage budget breached for account <*>, rejecting ingest",
    ),
    _concept(
        "clock_skew", _A, "coordination",
        "Severe clock skew was detected between cluster nodes.",
        spirit="ntpd[<*>]: time reset <*> s, clock unsynchronized against stratum <*>",
        thunderbird="ntpd[<*>]: synchronisation lost, drift file out of tolerance",
        system_b="[TIME] offset to reference <*>ms beyond skew budget, fencing writes",
    ),
    _concept(
        "watchdog_timeout", _A, "os",
        "A hardware or software watchdog timer expired and reset the component.",
        bgl="MMCS: watchdog expiration for node card <*>, forcing reset",
        spirit="kernel: NMI Watchdog detected LOCKUP on CPU<*>, registers dumped",
        system_b="[WDT] supervisor watchdog fired for worker <*>, restarting",
    ),
    _concept(
        "pcie_link_degraded", _A, "hardware",
        "A peripheral interconnect link degraded to reduced speed or width.",
        bgl="ido: link chip <*> retrained at reduced width, lanes <*> of <*>",
        thunderbird="kernel: PCI-X bus <*> downshifted, parity watch enabled",
    ),
    _concept(
        "raid_rebuild_stalled", _A, "storage",
        "A RAID array rebuild stalled and redundancy is not restored.",
        spirit="md: resync of array md<*> stuck at <*>%, speed 0K/sec",
        thunderbird="kernel: md<*>: raid array not clean, rebuild halted",
        system_c="Storage pool resilvering for group <*> made no progress in <*>m",
    ),
    _concept(
        "wal_corruption", _A, "database",
        "The write-ahead log was found corrupted during recovery.",
        system_a="txn_mgr: wal segment <*> checksum mismatch at offset <*>, recovery aborted",
        system_b="[TXN] journal replay error: torn record in segment <*>",
    ),
    _concept(
        "connection_pool_exhausted", _A, "service",
        "The connection pool was exhausted and new requests are being refused.",
        system_a="gateway: pool <*> at capacity, <*> waiters, shedding new sessions",
        system_b="[NETIO] no free slots in acceptor pool <*>, refusing",
        system_c="Connection broker saturated for listener <*>, clients queued",
    ),
    _concept(
        "hot_partition", _A, "performance",
        "A single partition is absorbing disproportionate load and throttling.",
        system_a="balancer: range <*> qps <*>x median, split scheduled, throttling",
        system_c="Partition <*> load factor critical, rebalancing triggered",
    ),
]

# ----------------------------------------------------------------------
# Normal concepts
# ----------------------------------------------------------------------
_NORMAL = [
    _concept(
        "heartbeat", _N, "monitoring",
        "A periodic heartbeat confirmed the component is alive.",
        bgl="MMCS heartbeat from node <*> acknowledged",
        spirit="mond: heartbeat ok node sn<*> load <*>",
        thunderbird="heartbeat: tbird-<*> alive, seq <*>",
        system_a="healthd: liveness probe ok instance=<*> rtt=<*>ms",
        system_b="[HB] keepalive round <*> complete, all members responsive",
        system_c="Heartbeat OK from broker <*> epoch <*>",
    ),
    _concept(
        "job_start", _N, "scheduler",
        "A batch job began execution.",
        bgl="ciod: Message code <*> initiating job <*> on block <*>",
        spirit="pbs_mom: Started job <*> for user <*>",
        thunderbird="slurmd: launching task <*> of job <*>",
        system_a="jobsvc: task <*> admitted to pool <*>, executor assigned",
        system_b="[JOB] run <*> started on worker <*>",
        system_c="Batch task <*> dispatched to executor <*>",
    ),
    _concept(
        "job_complete", _N, "scheduler",
        "A batch job finished successfully.",
        bgl="ciod: Message code <*> job <*> exited normally rc=0",
        spirit="pbs_mom: job <*> finished, Exit_status=0",
        thunderbird="slurmd: job <*> completed, elapsed <*>s",
        system_a="jobsvc: task <*> finished state=SUCCEEDED duration=<*>s",
        system_b="[JOB] run <*> completed rc=0",
        system_c="Batch task <*> completed successfully in <*>s",
    ),
    _concept(
        "connection_open", _N, "network",
        "A client connection was established.",
        bgl="ciod: opened stream connection to <*> port <*>",
        spirit="xinetd: START: session from=<*>",
        thunderbird="sshd[<*>]: Accepted publickey for <*> from <*>",
        system_a="gateway: session <*> established client=<*> tls=1.3",
        system_b="[NETIO] inbound channel <*> accepted from <*>",
        system_c="Client connection <*> opened on listener <*>",
    ),
    _concept(
        "connection_close", _N, "network",
        "A client connection was closed normally.",
        bgl="ciod: closed stream connection to <*> cleanly",
        spirit="xinetd: EXIT: session from=<*> duration=<*>s",
        thunderbird="sshd[<*>]: Connection closed by <*>",
        system_a="gateway: session <*> closed gracefully bytes=<*>",
        system_b="[NETIO] channel <*> shut down by peer",
        system_c="Client connection <*> closed, reason normal",
    ),
    _concept(
        "config_reload", _N, "service",
        "Service configuration was reloaded.",
        spirit="syslogd: configuration reloaded, <*> rules active",
        thunderbird="crond[<*>]: (CRON) RELOAD (tabs/<*>)",
        system_a="configd: applied revision <*>, <*> keys changed",
        system_b="[CONF] hot reload of profile <*> complete",
        system_c="Configuration snapshot <*> activated",
    ),
    _concept(
        "cache_refresh", _N, "performance",
        "A cache segment was refreshed from the backing store.",
        system_a="cache_mgr: pool <*> warmed, <*> entries loaded",
        system_b="[CACHE] segment <*> repopulated in <*>ms",
        system_c="Buffer pool region <*> refreshed from storage tier",
    ),
    _concept(
        "gc_cycle", _N, "memory",
        "A garbage-collection cycle completed.",
        system_a="runtime: gc cycle <*> done, reclaimed <*>MB pause=<*>ms",
        system_b="[GC] generation <*> sweep finished, freed <*> objects",
        system_c="Memory compaction pass <*> finished, heap usage <*>%",
    ),
    _concept(
        "login_success", _N, "security",
        "A user authenticated successfully.",
        spirit="sshd[<*>]: Accepted password for <*> from <*> port <*> ssh2",
        thunderbird="login: LOGIN ON tty<*> BY <*>",
        system_a="authsvc: principal <*> authenticated via mTLS",
        system_b="[AUTH] uid <*> granted session token scope=<*>",
        system_c="User <*> signed in from console <*>",
    ),
    _concept(
        "packet_stats", _N, "network",
        "Periodic interface packet statistics were recorded.",
        bgl="torus: <*> packets sent, <*> received on plane <*>",
        spirit="netstat: eth<*> rx=<*> tx=<*> drop=0",
        thunderbird="kernel: eth<*>: stats rx_packets <*> tx_packets <*>",
        system_b="[NETIO] iface <*> counters rx=<*> tx=<*>",
    ),
    _concept(
        "disk_scrub", _N, "storage",
        "A background disk scrub pass completed without errors.",
        bgl="ido: chip scrub cycle <*> complete, 0 uncorrectable",
        spirit="smartd: device sd<*> scrub pass ok, realloc sectors <*>",
        thunderbird="kernel: md: data-check of RAID array md<*> done",
        system_c="DISK_SCRUB slot=<*> pass complete, zero media errors",
    ),
    _concept(
        "snapshot_created", _N, "storage",
        "A storage snapshot was created.",
        system_a="snapshotter: snapshot seq=<*> persisted, size <*>MB",
        system_b="[SNAP] point-in-time image <*> committed",
        system_c="Snapshot <*> created for volume group <*>",
    ),
    _concept(
        "index_rebuilt", _N, "database",
        "A secondary index finished rebuilding.",
        system_a="indexer: rebuilt index <*> rows=<*> in <*>s",
        system_b="[IDX] structure <*> rebuild complete, depth <*>",
        system_c="Secondary index <*> rebuild finished, <*> entries",
    ),
    _concept(
        "query_served", _N, "database",
        "A query completed within its latency budget.",
        system_a="query_engine: stmt id=<*> ok rows=<*> latency=<*>ms",
        system_b="[SQL] plan <*> executed, fetched <*> tuples",
        system_c="Query <*> served from node <*>, duration <*>ms",
    ),
    _concept(
        "lease_renewed", _N, "coordination",
        "A coordination lease was renewed on schedule.",
        system_a="raft: range <*> lease renewed by node <*>",
        system_b="[COORD] session <*> lease extended ttl=<*>s",
        system_c="Broker <*> renewed cluster membership lease",
    ),
    _concept(
        "replica_sync", _N, "database",
        "A replica caught up with its leader.",
        system_a="replicator: shard=<*> follower in sync, lag=<*>ms",
        system_b="[REPL] group <*> apply queue drained",
        system_c="Replication channel <*> synchronized with master",
    ),
    _concept(
        "health_check", _N, "monitoring",
        "A scheduled health check passed.",
        bgl="MMCS: node card <*> VPD check passed",
        spirit="mond: sensors nominal on sn<*>",
        thunderbird="hald: periodic device poll ok, <*> devices",
        system_a="healthd: deep check ok, <*> subsystems green",
        system_b="[HB] diagnostic sweep <*> passed",
        system_c="Health probe on service <*> returned OK",
    ),
    _concept(
        "throttle_adjust", _N, "performance",
        "Request throttling limits were auto-adjusted.",
        system_a="admission: rate limit for tenant <*> adjusted to <*> rps",
        system_b="[FLOW] credit pool for class <*> resized to <*>",
        system_c="Ingest throttle for account <*> tuned to <*> ops",
    ),
    _concept(
        "metrics_flush", _N, "monitoring",
        "Buffered metrics were flushed to the time-series store.",
        spirit="mond: flushed <*> samples to collector",
        thunderbird="collectd: wrote <*> metrics batch <*>",
        system_a="telemetry: flushed <*> datapoints shard=<*>",
        system_b="[METRIC] emitted batch <*> (<*> series)",
        system_c="Metrics buffer <*> flushed downstream",
    ),
    _concept(
        "cron_run", _N, "scheduler",
        "A scheduled maintenance task ran.",
        spirit="crond[<*>]: (root) CMD (run-parts /etc/cron.hourly)",
        thunderbird="crond[<*>]: (<*>) CMD (<*>)",
        system_c="Scheduled maintenance routine <*> executed",
    ),
    _concept(
        "fs_mount", _N, "storage",
        "A filesystem was mounted.",
        bgl="Lustre mount complete for block <*>",
        spirit="kernel: kjournald starting on sd<*>, commit interval <*> seconds",
        thunderbird="kernel: EXT3 FS mounted on sd<*> with ordered data mode",
    ),
    _concept(
        "tx_commit", _N, "database",
        "A transaction committed durably.",
        system_a="txn_mgr: txn <*> committed at ts=<*>",
        system_b="[TXN] commit record <*> flushed to wal",
        system_c="Transaction <*> committed on partition <*>",
    ),
    _concept(
        "backup_completed", _N, "storage",
        "A scheduled backup completed successfully.",
        spirit="amanda: backup of /dev/sd<*> done, <*> MB in <*> min",
        system_a="backupd: incremental run <*> finished, <*> objects uploaded",
        system_b="[BKUP] archive <*> sealed ok",
        system_c="Nightly backup cycle <*> completed without warnings",
    ),
    _concept(
        "cert_renewed", _N, "security",
        "A service certificate was renewed before expiry.",
        system_a="authsvc: rotated certificate for principal <*>, valid <*> days",
        system_b="[AUTH] tls cert serial <*> reissued",
        system_c="Security certificate for endpoint <*> renewed",
    ),
    _concept(
        "load_report", _N, "monitoring",
        "A periodic load report was recorded.",
        bgl="MMCS: midplane <*> utilization <*> percent nominal",
        spirit="mond: load average <*> <*> <*> on sn<*>",
        thunderbird="kernel: cpu<*> utilisation sample <*>%",
        system_b="[HB] load snapshot: cpu <*>% mem <*>%",
    ),
    _concept(
        "kernel_module_loaded", _N, "os",
        "A kernel module was loaded.",
        spirit="kernel: ip_tables: (C) Netfilter core team, module loaded rev <*>",
        thunderbird="kernel: module <*> loaded, taint flags clear",
    ),
    _concept(
        "queue_depth_report", _N, "performance",
        "A work-queue depth sample was recorded.",
        system_a="admission: queue depth <*> within budget for pool <*>",
        system_b="[TASKQ] depth gauge <*> for class <*>",
        system_c="Work queue <*> backlog at <*> entries, nominal",
    ),
    _concept(
        "audit_event", _N, "security",
        "An administrative action was recorded in the audit trail.",
        spirit="sudo: <*> : TTY=pts/<*> ; COMMAND=/usr/sbin/<*>",
        thunderbird="audit(<*>): user <*> acquired role <*>",
        system_a="auditd: principal <*> changed setting <*>, recorded",
        system_c="Audit trail entry <*> appended for operator <*>",
    ),
    _concept(
        "compaction_completed", _N, "database",
        "A background storage compaction finished.",
        system_a="compactor: level <*> compaction done, reclaimed <*>MB",
        system_b="[LSM] merge pass <*> complete, <*> tables in",
        system_c="Segment compaction finished on partition <*>",
    ),
    _concept(
        "dns_lookup", _N, "network",
        "A name-service lookup completed.",
        spirit="named[<*>]: lame server resolving <*> (in <*>?)",
        thunderbird="nscd: <*> cache hit ratio <*>",
    ),
]

CONCEPTS: tuple[EventConcept, ...] = tuple(_ANOMALOUS + _NORMAL)

_BY_NAME = {c.name: c for c in CONCEPTS}
if len(_BY_NAME) != len(CONCEPTS):
    raise RuntimeError("duplicate concept names in catalog")


def concept_by_name(name: str) -> EventConcept:
    """Look up a concept by its stable identifier."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown event concept: {name!r}") from None


def concepts_for_system(system: str, kind: EventKind | None = None) -> list[EventConcept]:
    """All concepts that can occur on ``system``, optionally filtered by kind."""
    if system not in SYSTEM_NAMES:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEM_NAMES}")
    found = [c for c in CONCEPTS if c.supports(system)]
    if kind is not None:
        found = [c for c in found if c.kind is kind]
    return found


def anomalous_concepts() -> list[EventConcept]:
    """Concepts of kind ANOMALOUS available on this system."""
    return [c for c in CONCEPTS if c.kind is _A]


def normal_concepts() -> list[EventConcept]:
    """Concepts of kind NORMAL available on this system."""
    return [c for c in CONCEPTS if c.kind is _N]
