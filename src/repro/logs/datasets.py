"""Dataset construction matching Table III (scaled).

``build_dataset`` generates one system's labeled log stream and windows it
into sequences.  The full-size datasets of Table III (0.7M–4.8M lines) are
impractical on a single CPU, so a ``scale`` factor shrinks line counts
while preserving each dataset's anomaly *ratio*, which is what the
experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .generator import LogGenerator, LogRecord
from .sequences import DEFAULT_STEP, DEFAULT_WINDOW, LogSequence, sliding_windows
from .systems import PROFILES, get_profile

__all__ = ["LogDataset", "build_dataset", "build_all_datasets", "TABLE3_LINE_COUNTS",
           "dataset_statistics"]

# Raw line counts from Table III of the paper.
TABLE3_LINE_COUNTS: dict[str, int] = {
    "bgl": 1_356_817,
    "spirit": 4_783_733,
    "thunderbird": 700_005,
    "system_a": 2_166_422,
    "system_b": 877_444,
    "system_c": 691_433,
}


@dataclass
class LogDataset:
    """A generated dataset: raw records plus windowed, labeled sequences."""

    system: str
    display_name: str
    records: list[LogRecord]
    sequences: list[LogSequence]

    @property
    def num_logs(self) -> int:
        return len(self.records)

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)

    @property
    def num_anomalies(self) -> int:
        return sum(s.label for s in self.sequences)

    @property
    def anomaly_ratio(self) -> float:
        return self.num_anomalies / max(1, self.num_sequences)

    def labels(self) -> list[int]:
        """Sequence-level labels of the dataset."""
        return [s.label for s in self.sequences]


def build_dataset(system: str, scale: float = 0.01, seed: int = 0,
                  window: int = DEFAULT_WINDOW, step: int = DEFAULT_STEP) -> LogDataset:
    """Generate one dataset at ``scale`` times its Table III line count.

    ``scale=1.0`` reproduces the paper's dataset sizes; the default 0.01
    (tens of thousands of lines) keeps CPU experiments tractable while
    preserving anomaly ratios.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    profile = get_profile(system)
    n_lines = max(window, int(TABLE3_LINE_COUNTS[profile.name] * scale))
    generator = LogGenerator(profile, seed=seed)
    records = generator.generate(n_lines)
    sequences = sliding_windows(records, window=window, step=step)
    return LogDataset(
        system=profile.name,
        display_name=profile.display_name,
        records=records,
        sequences=sequences,
    )


def build_all_datasets(scale: float = 0.01, seed: int = 0) -> dict[str, LogDataset]:
    """Generate all six datasets with per-system derived seeds."""
    return {
        name: build_dataset(name, scale=scale, seed=seed + index)
        for index, name in enumerate(PROFILES)
    }


def dataset_statistics(dataset: LogDataset) -> dict[str, float]:
    """Table III-style summary row for one dataset."""
    return {
        "system": dataset.display_name,
        "num_logs": dataset.num_logs,
        "num_sequences": dataset.num_sequences,
        "num_anomalies": dataset.num_anomalies,
        "anomaly_ratio": dataset.anomaly_ratio,
    }
