"""Log stream generator.

Produces a labeled stream of :class:`LogRecord` for one system profile.
Normal traffic is drawn from the profile's normal-concept mix; anomalies
arrive as short bursts (episodes) as observed in the real datasets, where
one fault produces several adjacent anomalous lines interleaved with
normal traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime, timedelta

import numpy as np

from .events import EventConcept
from .parameters import ParameterSampler
from .scenarios import ScenarioProfile, get_scenario
from .systems import SystemProfile, get_profile

__all__ = ["LogRecord", "LogGenerator", "generate_logs", "VOLUME_STORM_CONCEPT"]

# Pseudo-concept name carried by volume-storm lines: normal phrasing,
# anomalous label, no entry in the event catalog (nothing to train on).
VOLUME_STORM_CONCEPT = "volume_storm"


@dataclass(frozen=True)
class LogRecord:
    """One generated log line with ground-truth metadata.

    ``message`` is the free-text body (what a parser sees after header
    stripping); ``raw`` is the full line with timestamp/host/severity
    header; ``concept`` is the generating concept's name (ground truth the
    models never see).
    """

    timestamp: datetime
    system: str
    host: str
    severity: str
    message: str
    raw: str
    is_anomalous: bool
    concept: str


class LogGenerator:
    """Generates a reproducible log stream for one system profile."""

    def __init__(self, profile: SystemProfile | str, seed: int = 0,
                 start_time: datetime | None = None,
                 mean_interval_seconds: float = 0.8,
                 repeat_probability: float = 0.55,
                 scenario: ScenarioProfile | str | None = None):
        if not 0.0 <= repeat_probability < 1.0:
            raise ValueError(f"repeat_probability must be in [0, 1), got {repeat_probability}")
        self.profile = profile if isinstance(profile, SystemProfile) else get_profile(profile)
        self.scenario = get_scenario(scenario)
        self._rng = np.random.default_rng(seed)
        # Drift rewording draws from its own stream so a template-drift
        # scenario perturbs *phrasing only*: concept choice, labels and
        # arrival times stay byte-identical to the undrifted run.
        self._drift_rng = np.random.default_rng((seed, 0xD81F7))
        self._params = ParameterSampler(self._rng)
        self._clock = start_time or datetime(2023, 3, 1, 0, 0, 0)
        self._mean_interval = mean_interval_seconds
        # Real log streams are heavily repetitive: periodic tasks emit runs
        # of the same template.  With this probability the next normal line
        # repeats the previous normal concept.
        self._repeat_probability = repeat_probability
        self._last_normal: EventConcept | None = None
        self._normal = self.profile.normal_concepts()
        self._anomalous = self.profile.anomalous_concepts()
        if not self._normal:
            raise ValueError(f"profile {self.profile.name} has no normal concepts")
        if not self._anomalous:
            raise ValueError(f"profile {self.profile.name} has no anomalous concepts")
        # Zipf-ish popularity over normal concepts: a few event types dominate,
        # as in real logs.
        ranks = np.arange(1, len(self._normal) + 1, dtype=np.float64)
        weights = 1.0 / ranks
        self._normal_weights = weights / weights.sum()
        self._pending_burst: list[EventConcept] = []

    def _advance_clock(self, rate_multiplier: float = 1.0) -> datetime:
        delta = float(self._rng.exponential(self._mean_interval / rate_multiplier))
        self._clock = self._clock + timedelta(seconds=delta)
        return self._clock

    def _render(self, concept: EventConcept, anomalous: bool, *,
                rate_multiplier: float = 1.0,
                label_override: bool | None = None,
                concept_override: str | None = None) -> LogRecord:
        timestamp = self._advance_clock(rate_multiplier)
        template = concept.phrases[self.profile.dialect_name]
        message = self._params.fill(template)
        host = f"{self.profile.host_prefix}{int(self._rng.integers(0, 512)):03d}"
        # Severity tracks the *phrasing* (a storm of INFO lines stays
        # INFO); the ground-truth label may still be overridden.
        severity = self.profile.severity_labels[1 if anomalous else 0]
        stamp = timestamp.strftime(self.profile.timestamp_format)
        raw = f"{stamp} {host} {severity} {message}"
        return LogRecord(
            timestamp=timestamp,
            system=self.profile.name,
            host=host,
            severity=severity,
            message=message,
            raw=raw,
            is_anomalous=anomalous if label_override is None else label_override,
            concept=concept.name if concept_override is None else concept_override,
        )

    def _next_concept(self) -> tuple[EventConcept, bool]:
        if self._pending_burst:
            return self._pending_burst.pop(), True
        if self._rng.random() < self.profile.line_anomaly_rate:
            low, high = self.profile.burst_length
            burst = int(self._rng.integers(low, high + 1))
            concept = self._anomalous[int(self._rng.integers(len(self._anomalous)))]
            # The whole episode uses one fault concept, occasionally mixing in
            # a second correlated anomaly (cascading failures).
            episode = [concept] * burst
            if len(self._anomalous) > 1 and self._rng.random() < 0.3:
                other = self._anomalous[int(self._rng.integers(len(self._anomalous)))]
                episode[-1] = other
            self._pending_burst = episode[1:]
            return episode[0], True
        if self._last_normal is not None and self._rng.random() < self._repeat_probability:
            return self._last_normal, False
        return self._pick_normal(), False

    def _pick_normal(self) -> EventConcept:
        index = int(self._rng.choice(len(self._normal), p=self._normal_weights))
        self._last_normal = self._normal[index]
        return self._last_normal

    def generate(self, n: int) -> list[LogRecord]:
        """Generate ``n`` consecutive log records.

        With a scenario configured, the stream-position fraction drives
        the scenario's rate/storm/drift modulation (see
        :mod:`repro.logs.scenarios`); without one, this is the plain
        steady stream and the draw sequence is unchanged.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if self.scenario is None:
            return [self._render(*self._next_concept()) for _ in range(n)]
        # Deferred: drift.py imports LogRecord from this module.
        from .drift import _reword_message

        scenario = self.scenario
        records = []
        for i in range(n):
            t = i / max(n - 1, 1)
            rate = scenario.rate_multiplier(t)
            if scenario.in_storm(t):
                # Storm lines are ordinary traffic arriving too fast:
                # normal concept, normal severity, anomalous label.
                record = self._render(
                    self._pick_normal(), False, rate_multiplier=rate,
                    label_override=True, concept_override=VOLUME_STORM_CONCEPT,
                )
            else:
                concept, anomalous = self._next_concept()
                record = self._render(concept, anomalous, rate_multiplier=rate)
            probability = scenario.drift_probability(t)
            if probability > 0.0:
                message = _reword_message(record.message, self._drift_rng,
                                          probability)
                if message != record.message:
                    record = replace(record, message=message,
                                     raw=record.raw.replace(record.message, message))
            records.append(record)
        return records


def generate_logs(system: str, n: int, seed: int = 0,
                  scenario: ScenarioProfile | str | None = None) -> list[LogRecord]:
    """Convenience wrapper: generate ``n`` records for ``system``."""
    return LogGenerator(system, seed=seed, scenario=scenario).generate(n)
