"""Log stream generator.

Produces a labeled stream of :class:`LogRecord` for one system profile.
Normal traffic is drawn from the profile's normal-concept mix; anomalies
arrive as short bursts (episodes) as observed in the real datasets, where
one fault produces several adjacent anomalous lines interleaved with
normal traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

import numpy as np

from .events import EventConcept
from .parameters import ParameterSampler
from .systems import SystemProfile, get_profile

__all__ = ["LogRecord", "LogGenerator", "generate_logs"]


@dataclass(frozen=True)
class LogRecord:
    """One generated log line with ground-truth metadata.

    ``message`` is the free-text body (what a parser sees after header
    stripping); ``raw`` is the full line with timestamp/host/severity
    header; ``concept`` is the generating concept's name (ground truth the
    models never see).
    """

    timestamp: datetime
    system: str
    host: str
    severity: str
    message: str
    raw: str
    is_anomalous: bool
    concept: str


class LogGenerator:
    """Generates a reproducible log stream for one system profile."""

    def __init__(self, profile: SystemProfile | str, seed: int = 0,
                 start_time: datetime | None = None,
                 mean_interval_seconds: float = 0.8,
                 repeat_probability: float = 0.55):
        if not 0.0 <= repeat_probability < 1.0:
            raise ValueError(f"repeat_probability must be in [0, 1), got {repeat_probability}")
        self.profile = profile if isinstance(profile, SystemProfile) else get_profile(profile)
        self._rng = np.random.default_rng(seed)
        self._params = ParameterSampler(self._rng)
        self._clock = start_time or datetime(2023, 3, 1, 0, 0, 0)
        self._mean_interval = mean_interval_seconds
        # Real log streams are heavily repetitive: periodic tasks emit runs
        # of the same template.  With this probability the next normal line
        # repeats the previous normal concept.
        self._repeat_probability = repeat_probability
        self._last_normal: EventConcept | None = None
        self._normal = self.profile.normal_concepts()
        self._anomalous = self.profile.anomalous_concepts()
        if not self._normal:
            raise ValueError(f"profile {self.profile.name} has no normal concepts")
        if not self._anomalous:
            raise ValueError(f"profile {self.profile.name} has no anomalous concepts")
        # Zipf-ish popularity over normal concepts: a few event types dominate,
        # as in real logs.
        ranks = np.arange(1, len(self._normal) + 1, dtype=np.float64)
        weights = 1.0 / ranks
        self._normal_weights = weights / weights.sum()
        self._pending_burst: list[EventConcept] = []

    def _advance_clock(self) -> datetime:
        delta = float(self._rng.exponential(self._mean_interval))
        self._clock = self._clock + timedelta(seconds=delta)
        return self._clock

    def _render(self, concept: EventConcept, anomalous: bool) -> LogRecord:
        timestamp = self._advance_clock()
        template = concept.phrases[self.profile.name]
        message = self._params.fill(template)
        host = f"{self.profile.host_prefix}{int(self._rng.integers(0, 512)):03d}"
        severity = self.profile.severity_labels[1 if anomalous else 0]
        stamp = timestamp.strftime(self.profile.timestamp_format)
        raw = f"{stamp} {host} {severity} {message}"
        return LogRecord(
            timestamp=timestamp,
            system=self.profile.name,
            host=host,
            severity=severity,
            message=message,
            raw=raw,
            is_anomalous=anomalous,
            concept=concept.name,
        )

    def _next_concept(self) -> tuple[EventConcept, bool]:
        if self._pending_burst:
            return self._pending_burst.pop(), True
        if self._rng.random() < self.profile.line_anomaly_rate:
            low, high = self.profile.burst_length
            burst = int(self._rng.integers(low, high + 1))
            concept = self._anomalous[int(self._rng.integers(len(self._anomalous)))]
            # The whole episode uses one fault concept, occasionally mixing in
            # a second correlated anomaly (cascading failures).
            episode = [concept] * burst
            if len(self._anomalous) > 1 and self._rng.random() < 0.3:
                other = self._anomalous[int(self._rng.integers(len(self._anomalous)))]
                episode[-1] = other
            self._pending_burst = episode[1:]
            return episode[0], True
        if self._last_normal is not None and self._rng.random() < self._repeat_probability:
            return self._last_normal, False
        index = int(self._rng.choice(len(self._normal), p=self._normal_weights))
        self._last_normal = self._normal[index]
        return self._last_normal, False

    def generate(self, n: int) -> list[LogRecord]:
        """Generate ``n`` consecutive log records."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self._render(*self._next_concept()) for _ in range(n)]


def generate_logs(system: str, n: int, seed: int = 0) -> list[LogRecord]:
    """Convenience wrapper: generate ``n`` records for ``system``."""
    return LogGenerator(system, seed=seed).generate(n)
