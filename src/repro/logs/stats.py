"""Dataset diagnostics: distributional statistics of generated log streams.

Operators profiling a new system's logs (and reviewers sanity-checking the
synthetic substrate against real-log phenomenology) need the standard
descriptive statistics: template frequency skew, anomaly burst structure,
and inter-arrival behaviour.  All functions are pure analyses over
:class:`~repro.logs.generator.LogRecord` streams.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .generator import LogRecord

__all__ = ["TemplateFrequencyStats", "BurstStats", "template_frequency_stats",
           "burst_stats", "inter_arrival_seconds"]


@dataclass(frozen=True)
class TemplateFrequencyStats:
    """Skew statistics of the per-concept message distribution."""

    distinct_concepts: int
    top1_share: float          # fraction of lines from the most common concept
    top5_share: float
    gini: float                # inequality of the concept distribution

    @property
    def is_skewed(self) -> bool:
        """Real log streams are heavily skewed; a flat stream is suspect."""
        return self.top5_share > 0.5


def _gini(counts: np.ndarray) -> float:
    if counts.sum() == 0:
        return 0.0
    sorted_counts = np.sort(counts).astype(np.float64)
    n = len(sorted_counts)
    cumulative = np.cumsum(sorted_counts)
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)


def template_frequency_stats(records: list[LogRecord]) -> TemplateFrequencyStats:
    """Concept-frequency skew of a stream."""
    if not records:
        return TemplateFrequencyStats(0, 0.0, 0.0, 0.0)
    counts = Counter(r.concept for r in records)
    ranked = np.array(sorted(counts.values(), reverse=True), dtype=np.float64)
    total = ranked.sum()
    return TemplateFrequencyStats(
        distinct_concepts=len(counts),
        top1_share=float(ranked[0] / total),
        top5_share=float(ranked[:5].sum() / total),
        gini=_gini(ranked),
    )


@dataclass(frozen=True)
class BurstStats:
    """Structure of anomalous episodes in a stream."""

    total_lines: int
    anomalous_lines: int
    episodes: int
    mean_burst_length: float
    max_burst_length: int

    @property
    def line_anomaly_rate(self) -> float:
        """Fraction of lines that are anomalous."""
        return self.anomalous_lines / self.total_lines if self.total_lines else 0.0


def burst_stats(records: list[LogRecord]) -> BurstStats:
    """Count anomalous episodes (maximal runs of anomalous lines)."""
    lengths: list[int] = []
    run = 0
    for record in records:
        if record.is_anomalous:
            run += 1
        elif run:
            lengths.append(run)
            run = 0
    if run:
        lengths.append(run)
    return BurstStats(
        total_lines=len(records),
        anomalous_lines=sum(lengths),
        episodes=len(lengths),
        mean_burst_length=float(np.mean(lengths)) if lengths else 0.0,
        max_burst_length=max(lengths) if lengths else 0,
    )


def inter_arrival_seconds(records: list[LogRecord]) -> np.ndarray:
    """Gaps between consecutive timestamps, in seconds."""
    if len(records) < 2:
        return np.zeros(0)
    stamps = [r.timestamp for r in records]
    return np.array([
        (b - a).total_seconds() for a, b in zip(stamps, stamps[1:])
    ])
