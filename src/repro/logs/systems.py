"""System profiles emulating the six evaluation datasets.

Each profile fixes the knobs that distinguish one dataset from another in
Table III and §V of the paper:

* which event concepts can occur (coverage — drives the Fig 6 asymmetry:
  the supercomputer logs cover many anomaly types, the CDMS systems few),
* the *sequence-level* anomaly rate (Table III: BGL 10.7 %, Spirit 0.93 %,
  Thunderbird 4.2 %, System A 0.20 %, System B 0.17 %, System C 3.77 %),
* line-format decoration (timestamp style, host field, severity tags), and
* burst behaviour of anomalous episodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import EventKind, concepts_for_system

__all__ = ["SystemProfile", "PROFILES", "get_profile", "day0_profile",
           "PUBLIC_SYSTEMS", "ISP_SYSTEMS"]

PUBLIC_SYSTEMS = ("bgl", "spirit", "thunderbird")
ISP_SYSTEMS = ("system_a", "system_b", "system_c")


@dataclass(frozen=True)
class SystemProfile:
    """Static description of one synthetic software system.

    Attributes
    ----------
    name:
        System/dialect key (matches :data:`repro.logs.events.SYSTEM_NAMES`).
    display_name:
        Human-readable dataset name as used in the paper's tables.
    line_anomaly_rate:
        Probability that a generated log line starts an anomalous episode.
        Tuned so the *sequence-level* anomaly ratio (window 10 / step 5)
        approximates Table III.
    burst_length:
        (min, max) anomalous lines per episode; anomalies cluster in real
        logs rather than appearing in isolation.
    timestamp_format:
        strftime-style format for the line prefix.
    host_prefix:
        Prefix for synthetic host names in the line header.
    severity_labels:
        (normal, anomalous) severity tags emitted in the header.
    dialect:
        Catalog dialect the system's messages speak, when it differs
        from ``name``.  A day-0 system is exactly this: a never-seen
        system name whose lines are rendered from an existing dialect's
        templates (``None`` means ``name`` is itself the dialect).
    """

    name: str
    display_name: str
    line_anomaly_rate: float
    burst_length: tuple[int, int]
    timestamp_format: str
    host_prefix: str
    severity_labels: tuple[str, str] = ("INFO", "ERROR")
    dialect: str | None = None

    @property
    def dialect_name(self) -> str:
        """The event-catalog dialect this system renders phrases from."""
        return self.dialect or self.name

    def normal_concepts(self):
        """Concepts of kind NORMAL available on this system."""
        return concepts_for_system(self.dialect_name, EventKind.NORMAL)

    def anomalous_concepts(self):
        """Concepts of kind ANOMALOUS available on this system."""
        return concepts_for_system(self.dialect_name, EventKind.ANOMALOUS)


# Line anomaly rates are calibrated (tests assert the outcome) so that the
# windowed sequence anomaly ratios land near Table III:
#   BGL 10.72%, Spirit 0.93%, Thunderbird 4.25%,
#   System A 0.20%, System B 0.17%, System C 3.77%.
# A sequence is anomalous if any of its 10 lines is anomalous, so the line
# rate is roughly seq_rate / (window * burst_correction).
PROFILES: dict[str, SystemProfile] = {
    "bgl": SystemProfile(
        name="bgl",
        display_name="BGL",
        line_anomaly_rate=0.0082,
        burst_length=(2, 6),
        timestamp_format="%Y-%m-%d-%H.%M.%S.%f",
        host_prefix="R",
        severity_labels=("INFO", "FATAL"),
    ),
    "spirit": SystemProfile(
        name="spirit",
        display_name="Spirit",
        line_anomaly_rate=0.00100,
        burst_length=(2, 5),
        timestamp_format="%b %d %H:%M:%S",
        host_prefix="sn",
        severity_labels=("info", "err"),
    ),
    "thunderbird": SystemProfile(
        name="thunderbird",
        display_name="Thunderbird",
        line_anomaly_rate=0.0029,
        burst_length=(2, 5),
        timestamp_format="%b %d %H:%M:%S",
        host_prefix="tbird-",
        severity_labels=("info", "error"),
    ),
    "system_a": SystemProfile(
        name="system_a",
        display_name="System A",
        line_anomaly_rate=0.00012,
        burst_length=(2, 4),
        timestamp_format="%Y-%m-%dT%H:%M:%S.%fZ",
        host_prefix="cdms-a-",
        severity_labels=("INFO", "ERROR"),
    ),
    "system_b": SystemProfile(
        name="system_b",
        display_name="System B",
        line_anomaly_rate=0.00006,
        burst_length=(2, 4),
        timestamp_format="%Y/%m/%d %H:%M:%S",
        host_prefix="cdms-b-",
        severity_labels=("I", "E"),
    ),
    "system_c": SystemProfile(
        name="system_c",
        display_name="System C",
        line_anomaly_rate=0.0052,
        burst_length=(2, 5),
        timestamp_format="%d/%m/%Y %H:%M:%S",
        host_prefix="cdms-c-",
        severity_labels=("NOTICE", "ALERT"),
    ),
}


def day0_profile(name: str = "day0", dialect: str = "bgl") -> SystemProfile:
    """A zero-training-data system: a fresh name speaking ``dialect``.

    The profile mirrors the dialect's rendering knobs but carries its
    own system name and host prefix, so routing, windowing, and detector
    state all see a system nothing was ever trained on while the lines
    themselves stay realistic catalog templates.
    """
    base = get_profile(dialect)
    return SystemProfile(
        name=name,
        display_name=f"Day-0 ({base.display_name})",
        line_anomaly_rate=base.line_anomaly_rate,
        burst_length=base.burst_length,
        timestamp_format=base.timestamp_format,
        host_prefix=f"{name}-",
        severity_labels=base.severity_labels,
        dialect=base.dialect_name,
    )


def get_profile(name: str) -> SystemProfile:
    """Fetch a profile by system key (case-insensitive, accepts display names)."""
    key = name.strip().lower().replace(" ", "_")
    if key in PROFILES:
        return PROFILES[key]
    for profile in PROFILES.values():
        if profile.display_name.lower() == name.strip().lower():
            return profile
    raise KeyError(f"unknown system profile: {name!r}")
