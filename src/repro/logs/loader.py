"""Reading and writing log datasets in flat-file form.

Persists generated datasets so experiments can be re-run without
regeneration, and loads third-party raw log files (one line per record)
for users who have real BGL/Spirit/Thunderbird dumps available.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path
from typing import Iterable

from .generator import LogRecord

__all__ = ["save_records", "load_records", "read_raw_log_file"]

_ISO = "%Y-%m-%dT%H:%M:%S.%f"


def save_records(records: Iterable[LogRecord], path: str | Path) -> int:
    """Write records as JSON lines; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            payload = {
                "ts": record.timestamp.strftime(_ISO),
                "system": record.system,
                "host": record.host,
                "severity": record.severity,
                "message": record.message,
                "raw": record.raw,
                "anomalous": record.is_anomalous,
                "concept": record.concept,
            }
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def load_records(path: str | Path) -> list[LogRecord]:
    """Load records previously written by :func:`save_records`."""
    records: list[LogRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                record = LogRecord(
                    timestamp=datetime.strptime(payload["ts"], _ISO),
                    system=payload["system"],
                    host=payload["host"],
                    severity=payload["severity"],
                    message=payload["message"],
                    raw=payload["raw"],
                    is_anomalous=bool(payload["anomalous"]),
                    concept=payload["concept"],
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON record") from exc
            records.append(record)
    return records


def read_raw_log_file(path: str | Path, system: str, label_prefix: str = "-") -> list[LogRecord]:
    """Read a BGL-style raw log file: lines starting with ``label_prefix`` are normal.

    The LogHub supercomputer dumps mark normal lines with a leading ``-``
    and anomalous lines with an alert tag; this reader reproduces that
    convention so real data can be substituted for the synthetic substrate.
    """
    records: list[LogRecord] = []
    epoch = datetime(1970, 1, 1)
    with Path(path).open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            is_anomalous = not line.startswith(label_prefix)
            if is_anomalous:
                # Anomalous lines carry an alert tag as the first token.
                _, _, body = line.partition(" ")
            else:
                body = line[len(label_prefix):].lstrip()
            records.append(
                LogRecord(
                    timestamp=epoch,  # raw dumps are read without timestamp parsing
                    system=system,
                    host="",
                    severity="",
                    message=body,
                    raw=line,
                    is_anomalous=is_anomalous,
                    concept="unknown",
                )
            )
    return records
