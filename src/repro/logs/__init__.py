"""Synthetic multi-system log substrate.

Stands in for the BGL/Spirit/Thunderbird LogHub dumps and the proprietary
ISP System A/B/C datasets: a shared event-concept catalog rendered through
six divergent per-system syntax dialects, with Table III-matching anomaly
ratios (scaled).
"""

from .events import (
    CONCEPTS,
    EventConcept,
    EventKind,
    SYSTEM_NAMES,
    anomalous_concepts,
    concept_by_name,
    concepts_for_system,
    normal_concepts,
)
from .systems import (
    ISP_SYSTEMS,
    PROFILES,
    PUBLIC_SYSTEMS,
    SystemProfile,
    day0_profile,
    get_profile,
)
from .scenarios import SCENARIOS, ScenarioProfile, get_scenario
from .generator import VOLUME_STORM_CONCEPT, LogGenerator, LogRecord, generate_logs
from .sequences import DEFAULT_STEP, DEFAULT_WINDOW, LogSequence, sliding_windows
from .datasets import (
    LogDataset,
    TABLE3_LINE_COUNTS,
    build_all_datasets,
    build_dataset,
    dataset_statistics,
)
from .stats import BurstStats, TemplateFrequencyStats, burst_stats, inter_arrival_seconds, template_frequency_stats
from .drift import DRIFT_SYNONYMS, inject_field, inject_label_noise, reword_records
from .loader import load_records, read_raw_log_file, save_records

__all__ = [
    "EventConcept", "EventKind", "CONCEPTS", "SYSTEM_NAMES",
    "concept_by_name", "concepts_for_system", "anomalous_concepts", "normal_concepts",
    "SystemProfile", "PROFILES", "get_profile", "day0_profile",
    "PUBLIC_SYSTEMS", "ISP_SYSTEMS",
    "ScenarioProfile", "SCENARIOS", "get_scenario",
    "LogGenerator", "LogRecord", "generate_logs", "VOLUME_STORM_CONCEPT",
    "LogSequence", "sliding_windows", "DEFAULT_WINDOW", "DEFAULT_STEP",
    "LogDataset", "build_dataset", "build_all_datasets", "dataset_statistics",
    "TABLE3_LINE_COUNTS",
    "save_records", "load_records", "read_raw_log_file",
    "reword_records", "inject_label_noise", "inject_field", "DRIFT_SYNONYMS",
    "TemplateFrequencyStats", "BurstStats", "template_frequency_stats",
    "burst_stats", "inter_arrival_seconds",
]
