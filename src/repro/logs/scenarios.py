"""Scenario catalog: workload shapes for the detector portfolio.

A :class:`ScenarioProfile` modulates *how* a stream arrives without
touching *what* the stream says: arrival-rate storms, gradual template
drift, seasonal load cycles.  Both :class:`~repro.logs.generator.LogGenerator`
and :class:`~repro.testing.fuzzer.LogStreamFuzzer` accept a scenario and
apply the same semantics, so a detector exercised by the fuzzer sees the
same workload shapes the generator produces:

``steady``
    The null scenario — byte-identical to passing no scenario at all.
``volume-burst``
    A storm of *normal-looking* lines at ``storm_rate`` times the base
    arrival rate across ``storm_span`` (a fraction interval of the
    stream).  Storm lines are labeled anomalous with the pseudo-concept
    ``volume_storm`` but keep normal phrasing and severity: the only
    tell is the arrival rate, which makes this the scenario only a
    rate detector (EWMA) can catch.
``template-drift``
    Synonym drift whose per-token probability ramps linearly from 0 to
    ``drift_peak`` over the stream (the §IV-E1 instability, made
    gradual).  Labels are untouched — a detector that false-positives
    on reworded normal traffic fails this workload.
``seasonal``
    Sinusoidal arrival-rate modulation (``seasonal_amplitude``,
    ``seasonal_cycles`` compressed "days" per stream).  Labels are
    untouched — the slow swing must be absorbed as the new normal,
    unlike the step-change of a storm.
``day0``
    Steady traffic for a system that has *zero* training data; pair it
    with :func:`repro.logs.systems.day0_profile` (or the fuzzer's
    ``dialects`` mapping) so the stream speaks an existing catalog
    dialect under a never-seen system name.

Scenario time is the stream-position fraction ``t in [0, 1]`` — pure
functions of position, so every workload stays a deterministic function
of ``(config, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ScenarioProfile", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class ScenarioProfile:
    """One workload shape (see the module docstring for the catalog)."""

    name: str
    description: str
    storm_span: tuple[float, float] | None = None
    storm_rate: float = 8.0
    drift_peak: float = 0.0
    seasonal_amplitude: float = 0.0
    seasonal_cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.storm_span is not None:
            low, high = self.storm_span
            if not 0.0 <= low < high <= 1.0:
                raise ValueError(f"invalid storm_span {self.storm_span}")
            if self.storm_rate <= 1.0:
                raise ValueError(f"storm_rate must exceed 1, got {self.storm_rate}")
        if not 0.0 <= self.drift_peak <= 1.0:
            raise ValueError(f"drift_peak must be in [0, 1], got {self.drift_peak}")
        if not 0.0 <= self.seasonal_amplitude < 1.0:
            raise ValueError(
                f"seasonal_amplitude must be in [0, 1), got {self.seasonal_amplitude}")

    def in_storm(self, t: float) -> bool:
        """Whether stream position ``t`` falls inside the volume storm."""
        if self.storm_span is None:
            return False
        low, high = self.storm_span
        return low <= t < high

    def rate_multiplier(self, t: float) -> float:
        """Arrival-rate multiplier at position ``t`` (storm x seasonal)."""
        rate = 1.0
        if self.seasonal_amplitude > 0.0:
            rate *= 1.0 + self.seasonal_amplitude * math.sin(
                2.0 * math.pi * self.seasonal_cycles * t)
        if self.in_storm(t):
            rate *= self.storm_rate
        return max(rate, 1e-3)

    def drift_probability(self, t: float) -> float:
        """Per-token synonym-drift probability at position ``t``."""
        return self.drift_peak * t


SCENARIOS: dict[str, ScenarioProfile] = {
    "steady": ScenarioProfile(
        name="steady",
        description="null scenario: constant rate, no drift",
    ),
    "volume-burst": ScenarioProfile(
        name="volume-burst",
        description="8x storm of normal-looking lines mid-stream",
        storm_span=(0.45, 0.55),
        storm_rate=8.0,
    ),
    "template-drift": ScenarioProfile(
        name="template-drift",
        description="synonym drift ramping 0 -> 0.8 across the stream",
        drift_peak=0.8,
    ),
    "seasonal": ScenarioProfile(
        name="seasonal",
        description="sinusoidal daily load cycle (2 compressed days)",
        seasonal_amplitude=0.6,
        seasonal_cycles=2.0,
    ),
    "day0": ScenarioProfile(
        name="day0",
        description="steady traffic on a zero-training-data system",
    ),
}


def get_scenario(scenario: str | ScenarioProfile | None) -> ScenarioProfile | None:
    """Resolve a scenario by name; ``None`` stays ``None`` (no scenario)."""
    if scenario is None or isinstance(scenario, ScenarioProfile):
        return scenario
    try:
        return SCENARIOS[scenario]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {scenario!r} (known: {known})") from None
