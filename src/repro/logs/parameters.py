"""Parameter-slot value generators for synthetic log rendering.

Each ``<*>`` slot in a template is filled with a value drawn from a mix of
realistic vocabularies (IP addresses, hex codes, node names, counters).
The Drain parser must later re-abstract these back into ``<*>``, so the
values intentionally span the variable shapes Drain's masking handles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParameterSampler"]


class ParameterSampler:
    """Draws realistic fill-in values for template parameter slots."""

    _KINDS = ("int", "small_int", "hex", "ip", "ip_port", "node", "user", "path", "uuid")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def sample(self) -> str:
        kind = self._KINDS[int(self._rng.integers(len(self._KINDS)))]
        return getattr(self, f"_{kind}")()

    def _int(self) -> str:
        return str(int(self._rng.integers(0, 1_000_000)))

    def _small_int(self) -> str:
        return str(int(self._rng.integers(0, 256)))

    def _hex(self) -> str:
        return f"0x{int(self._rng.integers(0, 2**31)):08x}"

    def _ip(self) -> str:
        octets = self._rng.integers(1, 255, size=4)
        return ".".join(str(int(o)) for o in octets)

    def _ip_port(self) -> str:
        return f"{self._ip()}:{int(self._rng.integers(1024, 65535))}"

    def _node(self) -> str:
        return f"node-{int(self._rng.integers(0, 4096)):04d}"

    def _user(self) -> str:
        users = ("root", "admin", "svc_batch", "operator", "jdoe", "mchen")
        return users[int(self._rng.integers(len(users)))]

    def _path(self) -> str:
        dirs = ("var", "opt", "data", "scratch", "home")
        leaf = f"f{int(self._rng.integers(0, 10_000))}"
        return "/" + "/".join([dirs[int(self._rng.integers(len(dirs)))], leaf])

    def _uuid(self) -> str:
        raw = self._rng.integers(0, 16, size=32)
        digits = "".join("0123456789abcdef"[int(d)] for d in raw)
        return f"{digits[:8]}-{digits[8:12]}-{digits[12:16]}-{digits[16:20]}-{digits[20:]}"

    def fill(self, template: str) -> str:
        """Replace every ``<*>`` slot in ``template`` with a sampled value."""
        parts = template.split("<*>")
        if len(parts) == 1:
            return template
        filled = [parts[0]]
        for tail in parts[1:]:
            filled.append(self.sample())
            filled.append(tail)
        return "".join(filled)
