"""Sliding-window segmentation of log streams into labeled sequences.

The paper segments each raw log file with a window length of 10 and a step
of 5 (§IV-A1, §VI-A); a sequence is anomalous if any of its lines is
anomalous — the standard labeling for BGL-family datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .generator import LogRecord

__all__ = ["LogSequence", "sliding_windows", "DEFAULT_WINDOW", "DEFAULT_STEP"]

DEFAULT_WINDOW = 10
DEFAULT_STEP = 5


@dataclass(frozen=True)
class LogSequence:
    """A fixed-length window of log records with a sequence-level label."""

    records: tuple[LogRecord, ...]
    label: int  # 1 = anomalous, 0 = normal
    system: str
    start_index: int

    @property
    def messages(self) -> list[str]:
        return [r.message for r in self.records]

    @property
    def concepts(self) -> list[str]:
        return [r.concept for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


def sliding_windows(records: Sequence[LogRecord], window: int = DEFAULT_WINDOW,
                    step: int = DEFAULT_STEP) -> list[LogSequence]:
    """Split ``records`` into overlapping windows with anomaly labels.

    Trailing records that do not fill a complete window are dropped, as in
    the reference implementation.
    """
    if window <= 0 or step <= 0:
        raise ValueError(f"window and step must be positive, got {window}, {step}")
    sequences: list[LogSequence] = []
    for start in range(0, len(records) - window + 1, step):
        chunk = tuple(records[start : start + window])
        label = int(any(r.is_anomalous for r in chunk))
        sequences.append(
            LogSequence(records=chunk, label=label, system=chunk[0].system, start_index=start)
        )
    return sequences
