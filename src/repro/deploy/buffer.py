"""Transport buffer (§VI-A): a bounded FIFO standing in for Kafka.

Single-process deployment simulation: producers ``offer`` records, the
formatter ``poll``s batches.  Capacity bounds model broker backpressure,
and the overflow behaviour is a named policy:

* ``reject`` (default) — a full buffer refuses the new record, matching
  a broker that answers producers with an error.
* ``drop-oldest`` — the oldest queued record is evicted to admit the new
  one, matching a retention-bounded topic tailing live traffic.

Shed records are counted on the instance and through the active
``repro.obs`` registry (``deploy.buffer_rejected`` /
``deploy.buffer_dropped``), so load shedding is visible in exported
metrics, not just to callers that kept the buffer handle.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from ..obs import get_registry

T = TypeVar("T")

__all__ = ["BoundedBuffer", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("reject", "drop-oldest")


class BoundedBuffer(Generic[T]):
    """Bounded FIFO queue with batch polling and a named overflow policy."""

    def __init__(self, capacity: int = 10_000, policy: str = "reject",
                 registry=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {', '.join(OVERFLOW_POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._queue: deque[T] = deque()
        self.total_offered = 0
        self.total_rejected = 0
        self.total_dropped = 0
        registry = registry if registry is not None else get_registry()
        self._rejected_metric = registry.counter("deploy.buffer_rejected")
        self._dropped_metric = registry.counter("deploy.buffer_dropped")

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """Whether the buffer is at capacity."""
        return len(self._queue) >= self.capacity

    def offer(self, item: T) -> bool:
        """Enqueue one item; returns ``False`` only when rejected.

        Under ``drop-oldest`` the offer always succeeds — the cost is
        paid by the oldest queued record, which is evicted and counted.
        """
        self.total_offered += 1
        if self.is_full:
            if self.policy == "reject":
                self.total_rejected += 1
                self._rejected_metric.inc()
                return False
            self._queue.popleft()
            self.total_dropped += 1
            self._dropped_metric.inc()
        self._queue.append(item)
        return True

    def poll(self, max_items: int = 100) -> list[T]:
        """Dequeue up to ``max_items`` in FIFO order."""
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        batch: list[T] = []
        while self._queue and len(batch) < max_items:
            batch.append(self._queue.popleft())
        return batch

    def drain(self) -> list[T]:
        """Dequeue everything."""
        batch = list(self._queue)
        self._queue.clear()
        return batch
