"""Transport buffer (§VI-A): a bounded FIFO standing in for Kafka.

Single-process deployment simulation: producers ``offer`` records, the
formatter ``poll``s batches.  Capacity bounds model broker backpressure.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["BoundedBuffer"]


class BoundedBuffer(Generic[T]):
    """Bounded FIFO queue with batch polling."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._queue: deque[T] = deque()
        self.total_offered = 0
        self.total_rejected = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """Whether the buffer is at capacity."""
        return len(self._queue) >= self.capacity

    def offer(self, item: T) -> bool:
        """Enqueue one item; returns ``False`` (rejected) when full."""
        self.total_offered += 1
        if self.is_full:
            self.total_rejected += 1
            return False
        self._queue.append(item)
        return True

    def poll(self, max_items: int = 100) -> list[T]:
        """Dequeue up to ``max_items`` in FIFO order."""
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        batch: list[T] = []
        while self._queue and len(batch) < max_items:
            batch.append(self._queue.popleft())
        return batch

    def drain(self) -> list[T]:
        """Dequeue everything."""
        batch = list(self._queue)
        self._queue.clear()
        return batch
