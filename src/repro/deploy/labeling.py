"""Labeling workflow simulation (§VI-B1).

New-system training labels are produced by two operators annotating each
sequence independently, with a third adjudicating disagreements.  This
module models that workflow with per-annotator error rates, so the effect
of label quality on training (the §IV-E1 threat) can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..logs.sequences import LogSequence

__all__ = ["Annotator", "LabelingOutcome", "dual_annotation"]


@dataclass(frozen=True)
class Annotator:
    """One human labeler with an independent per-sequence error rate."""

    name: str
    error_rate: float = 0.02

    def __post_init__(self):
        if not 0.0 <= self.error_rate < 0.5:
            raise ValueError(
                f"error_rate must be in [0, 0.5) for a useful annotator, "
                f"got {self.error_rate}"
            )

    def label(self, sequence: LogSequence, rng: np.random.Generator) -> int:
        """Produce this annotator's (possibly erroneous) label."""
        truth = sequence.label
        if rng.random() < self.error_rate:
            return 1 - truth
        return truth


@dataclass
class LabelingOutcome:
    """Result of a dual-annotation pass."""

    labels: list[int]
    disagreements: int
    adjudicated: int
    residual_errors: int

    @property
    def agreement_rate(self) -> float:
        """Fraction of sequences both annotators agreed on."""
        if not self.labels:
            return 1.0
        return 1.0 - self.disagreements / len(self.labels)

    @property
    def label_accuracy(self) -> float:
        """Fraction of final labels matching ground truth."""
        if not self.labels:
            return 1.0
        return 1.0 - self.residual_errors / len(self.labels)


def dual_annotation(sequences: list[LogSequence],
                    first: Annotator, second: Annotator,
                    adjudicator: Annotator | None = None,
                    seed: int = 0) -> LabelingOutcome:
    """Label sequences with two annotators plus adjudication (§VI-B1).

    When the two annotators disagree, the adjudicator's label is final;
    with no adjudicator, disagreements resolve to "anomalous" (the safe
    choice operators make in practice).
    """
    rng = np.random.default_rng(seed)
    labels: list[int] = []
    disagreements = 0
    adjudicated = 0
    residual = 0
    for sequence in sequences:
        a = first.label(sequence, rng)
        b = second.label(sequence, rng)
        if a == b:
            final = a
        else:
            disagreements += 1
            if adjudicator is not None:
                final = adjudicator.label(sequence, rng)
                adjudicated += 1
            else:
                final = 1
        labels.append(final)
        if final != sequence.label:
            residual += 1
    return LabelingOutcome(labels=labels, disagreements=disagreements,
                           adjudicated=adjudicated, residual_errors=residual)
