"""Pattern library gate (§VI-A "Detection").

Production log volume makes running the model on every window too
expensive, so LogSynergy first matches each window's event-id pattern
against a library of previously-adjudicated patterns.  Known patterns are
answered from the library; only novel patterns reach the model, and the
model's verdict is then remembered.  This module implements that cache
with hit-rate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PatternLibrary", "PatternStats"]


@dataclass
class PatternStats:
    """Hit/miss accounting for the gate."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        """Total event count."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the library."""
        return self.hits / self.total if self.total else 0.0


class PatternLibrary:
    """Remembers model verdicts keyed by window event-id patterns.

    The key is the tuple of event ids in the window — ordering preserved,
    since sequence order is what the model judges.
    """

    def __init__(self, max_patterns: int = 100_000):
        if max_patterns <= 0:
            raise ValueError("max_patterns must be positive")
        self.max_patterns = max_patterns
        self._verdicts: dict[tuple[int, ...], bool] = {}
        self.stats = PatternStats()

    def __len__(self) -> int:
        return len(self._verdicts)

    def lookup(self, pattern: tuple[int, ...]) -> bool | None:
        """Return the remembered verdict, or ``None`` for a novel pattern."""
        verdict = self._verdicts.get(pattern)
        if verdict is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return verdict

    def remember(self, pattern: tuple[int, ...], is_anomalous: bool) -> None:
        """Record a model verdict (evicts nothing; capped instead)."""
        if len(self._verdicts) >= self.max_patterns and pattern not in self._verdicts:
            return  # library full: keep answering from what we have
        self._verdicts[pattern] = is_anomalous

    def snapshot(self) -> dict[tuple[int, ...], bool]:
        """Copy of the remembered pattern -> verdict mapping.

        Used by the runtime's degraded-mode fallback to derive its
        known-pattern heuristic without touching hit/miss accounting.
        """
        return dict(self._verdicts)

    def known_anomalous_patterns(self) -> int:
        """Count of remembered patterns judged anomalous."""
        return sum(1 for v in self._verdicts.values() if v)
