"""Report stage (§VI-A): alert sinks for anomaly reports.

Production routes alerts to operations engineers via SMS and email; the
simulation records deliveries so tests and benchmarks can assert on the
alert flow.  ``AlertRouter`` fans one report out to every registered sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..core.report import AnomalyReport

__all__ = ["AlertSink", "RecordingSink", "SmsSink", "EmailSink", "AlertRouter"]


class AlertSink(Protocol):
    """Anything that can deliver an anomaly report."""

    def deliver(self, report: AnomalyReport) -> None:
        """Deliver one anomaly report through this channel."""
        ...


@dataclass
class RecordingSink:
    """Base sink that records delivered payloads (for tests/benchmarks)."""

    delivered: list[str] = field(default_factory=list)

    def render(self, report: AnomalyReport) -> str:
        """Render the payload as human-readable text."""
        raise NotImplementedError

    def deliver(self, report: AnomalyReport) -> None:
        """Deliver one anomaly report through this channel."""
        self.delivered.append(self.render(report))


class SmsSink(RecordingSink):
    """SMS channel: one-line summaries, hard length cap."""

    MAX_LENGTH = 160

    def render(self, report: AnomalyReport) -> str:
        """Render the payload as human-readable text."""
        return report.summary()[: self.MAX_LENGTH]


class EmailSink(RecordingSink):
    """Email channel: full rendered report."""

    def render(self, report: AnomalyReport) -> str:
        """Render the payload as human-readable text."""
        return report.render()


class AlertRouter:
    """Fans anomaly reports out to all registered sinks."""

    def __init__(self, sinks: list[AlertSink] | None = None):
        self.sinks: list[AlertSink] = list(sinks or [])
        self.routed = 0

    def add_sink(self, sink: AlertSink) -> None:
        """Register an additional delivery channel."""
        self.sinks.append(sink)

    def route(self, report: AnomalyReport) -> int:
        """Deliver to every sink; returns the number of deliveries."""
        for sink in self.sinks:
            sink.deliver(report)
        self.routed += 1
        return len(self.sinks)
