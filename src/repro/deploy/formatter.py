"""Formatting stage (§VI-A): LogStash-like unification and windowing.

Pulls raw records from the transport buffer, normalizes them into the
unified structure downstream stages expect, and re-windows the stream
with the production sliding window (10 logs, 5-step shift).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..logs.generator import LogRecord
from .buffer import BoundedBuffer

__all__ = ["UnifiedLog", "LogFormatter"]


@dataclass(frozen=True)
class UnifiedLog:
    """The unified post-LogStash record structure."""

    timestamp: datetime
    system: str
    host: str
    message: str


class LogFormatter:
    """Drains the buffer, normalizes records and emits complete windows."""

    def __init__(self, buffer: BoundedBuffer, window: int = 10, step: int = 5):
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        self.buffer = buffer
        self.window = window
        self.step = step
        self._pending: list[UnifiedLog] = []
        self.formatted_count = 0

    @staticmethod
    def _normalize(record: LogRecord) -> UnifiedLog:
        return UnifiedLog(
            timestamp=record.timestamp,
            system=record.system,
            host=record.host,
            message=record.message.strip(),
        )

    def pump(self, max_items: int = 1000) -> list[list[UnifiedLog]]:
        """Process up to ``max_items`` buffered records; return new windows."""
        for record in self.buffer.poll(max_items):
            self._pending.append(self._normalize(record))
            self.formatted_count += 1
        windows: list[list[UnifiedLog]] = []
        while len(self._pending) >= self.window:
            windows.append(self._pending[: self.window])
            self._pending = self._pending[self.step:]
        return windows
