"""Online detection service: the full §VI-A workflow wired together.

collection (Filebeat) -> buffering (Kafka) -> formatting (LogStash)
-> pattern-library gate -> LogSynergy model -> alert routing.

``OnlineService.process`` pushes a batch of raw records through every
stage and returns the anomaly reports raised.  Detection runs on the
``repro.runtime`` sharded inference engine in synchronous mode
(deterministic, shard-count invariant): windowing, the pattern-library
gate, micro-batched ``detect_stream_batch`` scoring and graceful
degradation all live there; this class keeps the ingestion stages and
the stable public surface (``stats``, ``collector``, ``buffer``,
``library``, alert routing).  Per-stage statistics live in a
``repro.obs`` metrics registry — the service joins the globally
installed registry when observability is enabled and otherwise keeps a
private one, so :class:`ServiceStats` always reads live numbers.
"""

from __future__ import annotations

from ..core.pipeline import LogSynergy
from ..core.report import AnomalyReport
from ..logs.generator import LogRecord
from ..obs import LATENCY_BUCKETS, MetricsRegistry, get_registry
from .alerting import AlertRouter
from .buffer import BoundedBuffer
from .collector import LogCollector

__all__ = ["ServiceStats", "OnlineService"]


class ServiceStats:
    """End-to-end counters for one service lifetime.

    A read-view over registry counters; the attribute API of the old
    dataclass (``windows_seen`` / ``model_invocations`` /
    ``anomalies_raised`` / ``model_skip_rate``) is unchanged.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._windows = self.registry.counter("service.windows_seen")
        self._invocations = self.registry.counter("service.model_invocations")
        self._library_hits = self.registry.counter("service.library_hits")
        self._anomalies = self.registry.counter("service.anomalies_raised")

    @property
    def windows_seen(self) -> int:
        return int(self._windows.value)

    @property
    def model_invocations(self) -> int:
        return int(self._invocations.value)

    @property
    def anomalies_raised(self) -> int:
        return int(self._anomalies.value)

    @property
    def model_skip_rate(self) -> float:
        """Fraction of windows answered by the pattern library."""
        if self.windows_seen == 0:
            return 0.0
        return 1.0 - self.model_invocations / self.windows_seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceStats(windows_seen={self.windows_seen}, "
            f"model_invocations={self.model_invocations}, "
            f"anomalies_raised={self.anomalies_raised})"
        )


class _LibraryView:
    """Aggregate read-view over the runtime's per-system pattern libraries."""

    def __init__(self, runtime):
        self._runtime = runtime

    def _libraries(self) -> list:
        return [library
                for shard in self._runtime.shards
                for library in shard.libraries.values()]

    def __len__(self) -> int:
        return sum(len(library) for library in self._libraries())

    def known_anomalous_patterns(self) -> int:
        """Count of remembered patterns judged anomalous, all systems."""
        return sum(library.known_anomalous_patterns()
                   for library in self._libraries())


class OnlineService:
    """Production-shaped online anomaly detection around a fitted model.

    With ``ensemble=`` the service instead fronts a
    :class:`repro.detectors.Ensemble` (the learned model, when loaded,
    rides along as the ensemble's ``model`` member): the runtime runs
    ungated so the statistical members see every window.  ``model`` may
    then be ``None`` — a day-0 deployment has nothing to load.
    """

    def __init__(self, model: LogSynergy | None, router: AlertRouter | None = None,
                 buffer_capacity: int = 50_000, window: int = 10, step: int = 5,
                 max_patterns: int = 100_000,
                 registry: MetricsRegistry | None = None,
                 shards: int = 1, max_batch: int = 16,
                 ensemble=None):
        if ensemble is None and (model is None or model.model is None):
            raise ValueError("OnlineService requires a fitted LogSynergy model "
                             "(or an ensemble)")
        # Import here, not at module level: repro.runtime is a downstream
        # consumer of this package's submodules (formatter, pattern
        # library), so the package imports must stay one-directional.
        from ..runtime import InferenceRuntime

        self.model = model
        self.ensemble = ensemble
        self.router = router or AlertRouter()
        if registry is None:
            active = get_registry()
            # ServiceStats must stay live even with observability off, so
            # fall back to a private registry rather than the no-op one.
            registry = active if active.enabled else MetricsRegistry()
        self.registry = registry
        self.buffer: BoundedBuffer[LogRecord] = BoundedBuffer(
            buffer_capacity, registry=registry
        )
        self.collector = LogCollector(self.buffer)
        self.stats = ServiceStats(registry)
        self.window = window
        self.step = step
        self._latency = registry.histogram(
            "service.window_seconds", boundaries=LATENCY_BUCKETS
        )
        runtime_options = dict(
            shards=shards, window=window, step=step,
            max_batch=max_batch, max_latency=None,
            queue_capacity=buffer_capacity, backpressure="block",
            max_patterns=max_patterns, registry=registry, prefix="service",
        )
        if ensemble is not None:
            self.runtime = InferenceRuntime.from_ensemble(
                ensemble, **runtime_options)
        else:
            self.runtime = InferenceRuntime.from_model(model, **runtime_options)
        self._library_view = _LibraryView(self.runtime)

    @property
    def library(self) -> _LibraryView:
        """Aggregate view of the remembered patterns across all systems."""
        return self._library_view

    # ------------------------------------------------------------------
    def process(self, records: list[LogRecord]) -> list[AnomalyReport]:
        """Run a batch of raw records through the full pipeline.

        Collection and buffering feed the inference runtime, which gates
        windows through per-system pattern libraries and scores the rest
        in micro-batched ``detect_stream_batch`` calls.  Anomalous
        reports are routed and returned in emission order.
        """
        self.collector.ship(records)
        for record in self.buffer.drain():
            self.runtime.submit(record)
        reports = [report for report in self.runtime.drain()
                   if report.is_anomalous]
        for report in reports:
            self.router.route(report)
        return reports
