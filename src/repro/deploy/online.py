"""Online detection service: the full §VI-A workflow wired together.

collection (Filebeat) -> buffering (Kafka) -> formatting (LogStash)
-> pattern-library gate -> LogSynergy model -> alert routing.

``OnlineService.process`` pushes a batch of raw records through every
stage and returns the anomaly reports raised.  Detection is batch-first:
all windows the pattern library cannot answer are scored in one
``detect_stream_batch`` call.  Per-stage statistics live in a
``repro.obs`` metrics registry — the service joins the globally
installed registry when observability is enabled and otherwise keeps a
private one, so :class:`ServiceStats` always reads live numbers.
"""

from __future__ import annotations

from ..core.pipeline import LogSynergy
from ..core.report import AnomalyReport
from ..logs.generator import LogRecord
from ..obs import LATENCY_BUCKETS, MetricsRegistry, get_registry
from .alerting import AlertRouter
from .buffer import BoundedBuffer
from .collector import LogCollector
from .formatter import LogFormatter, UnifiedLog
from .pattern_library import PatternLibrary

__all__ = ["ServiceStats", "OnlineService"]


class ServiceStats:
    """End-to-end counters for one service lifetime.

    A read-view over registry counters; the attribute API of the old
    dataclass (``windows_seen`` / ``model_invocations`` /
    ``anomalies_raised`` / ``model_skip_rate``) is unchanged.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._windows = self.registry.counter("service.windows_seen")
        self._invocations = self.registry.counter("service.model_invocations")
        self._library_hits = self.registry.counter("service.library_hits")
        self._anomalies = self.registry.counter("service.anomalies_raised")

    @property
    def windows_seen(self) -> int:
        return int(self._windows.value)

    @property
    def model_invocations(self) -> int:
        return int(self._invocations.value)

    @property
    def anomalies_raised(self) -> int:
        return int(self._anomalies.value)

    @property
    def model_skip_rate(self) -> float:
        """Fraction of windows answered by the pattern library."""
        if self.windows_seen == 0:
            return 0.0
        return 1.0 - self.model_invocations / self.windows_seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceStats(windows_seen={self.windows_seen}, "
            f"model_invocations={self.model_invocations}, "
            f"anomalies_raised={self.anomalies_raised})"
        )


class OnlineService:
    """Production-shaped online anomaly detection around a fitted model."""

    def __init__(self, model: LogSynergy, router: AlertRouter | None = None,
                 buffer_capacity: int = 50_000, window: int = 10, step: int = 5,
                 max_patterns: int = 100_000,
                 registry: MetricsRegistry | None = None):
        if model.model is None:
            raise ValueError("OnlineService requires a fitted LogSynergy model")
        self.model = model
        self.buffer: BoundedBuffer[LogRecord] = BoundedBuffer(buffer_capacity)
        self.collector = LogCollector(self.buffer)
        self.formatter = LogFormatter(self.buffer, window=window, step=step)
        self.library = PatternLibrary(max_patterns=max_patterns)
        self.router = router or AlertRouter()
        if registry is None:
            active = get_registry()
            # ServiceStats must stay live even with observability off, so
            # fall back to a private registry rather than the no-op one.
            registry = active if active.enabled else MetricsRegistry()
        self.registry = registry
        self.stats = ServiceStats(registry)
        self._latency = registry.histogram(
            "service.window_seconds", boundaries=LATENCY_BUCKETS
        )
        self._clock = registry.clock

    # ------------------------------------------------------------------
    def _pattern_of(self, window: list[UnifiedLog]) -> tuple[int, ...]:
        featurizer = self.model._featurizer(self.model.target_system)
        ids = [featurizer.event_id_of(entry.message) for entry in window]
        # Patterns are keyed by the distinct-event set: real streams repeat
        # the same event mixes with permuted interleavings and varying run
        # lengths, and the library's job is to absorb exactly that
        # redundancy (§VI-A).
        return tuple(sorted(set(ids)))

    # ------------------------------------------------------------------
    def process(self, records: list[LogRecord]) -> list[AnomalyReport]:
        """Run a batch of raw records through the full pipeline.

        Windows the pattern library can answer are resolved immediately;
        the rest are deduplicated by pattern and scored in a single
        ``detect_stream_batch`` call, preserving the verdicts (and the
        skip-rate accounting) of the per-window flow.
        """
        self.collector.ship(records)
        windows = self.formatter.pump(max_items=len(records) + self.formatter.window)

        # Stage 1 — pattern-library gate.
        patterns: list[tuple[int, ...]] = []
        verdicts: list[bool | None] = []
        latencies: list[float] = []
        to_score: list[int] = []
        first_of_pattern: set[tuple[int, ...]] = set()
        for index, window in enumerate(windows):
            start = self._clock()
            self.stats._windows.inc()
            pattern = self._pattern_of(window)
            patterns.append(pattern)
            cached = self.library.lookup(pattern)
            if cached is None and pattern not in first_of_pattern:
                first_of_pattern.add(pattern)
                to_score.append(index)
            elif cached is not None:
                self.stats._library_hits.inc()
            verdicts.append(cached)
            latencies.append(self._clock() - start)

        # Stage 2 — one batched model call for all unknown patterns.
        scored_reports: dict[int, AnomalyReport] = {}
        if to_score:
            start = self._clock()
            batch_reports = self.model.detect_stream_batch(
                [[entry.message for entry in windows[i]] for i in to_score],
                [[entry.timestamp for entry in windows[i]] for i in to_score],
            )
            share = (self._clock() - start) / len(to_score)
            self.stats._invocations.inc(len(to_score))
            for index, report in zip(to_score, batch_reports):
                scored_reports[index] = report
                self.library.remember(patterns[index], report.is_anomalous)
                latencies[index] += share

        # Stage 3 — resolve verdicts and route alerts in window order.
        reports: list[AnomalyReport] = []
        for index in range(len(windows)):
            verdict = verdicts[index]
            if verdict is None:
                # Either scored above, or a duplicate of a pattern scored
                # above — the library knows the answer now.
                verdict = (
                    scored_reports[index].is_anomalous
                    if index in scored_reports
                    else bool(self.library.lookup(patterns[index]))
                )
            report = scored_reports.get(index)
            if verdict and report is not None:
                self.router.route(report)
                self.stats._anomalies.inc()
                reports.append(report)
            self._latency.observe(latencies[index])
        return reports
