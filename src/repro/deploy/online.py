"""Online detection service: the full §VI-A workflow wired together.

collection (Filebeat) -> buffering (Kafka) -> formatting (LogStash)
-> pattern-library gate -> LogSynergy model -> alert routing.

``OnlineService.process`` pushes a batch of raw records through every
stage and returns the anomaly reports raised, with per-stage statistics
available for the deployment benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import LogSynergy
from ..core.report import AnomalyReport
from ..logs.generator import LogRecord
from .alerting import AlertRouter
from .buffer import BoundedBuffer
from .collector import LogCollector
from .formatter import LogFormatter, UnifiedLog
from .pattern_library import PatternLibrary

__all__ = ["ServiceStats", "OnlineService"]


@dataclass
class ServiceStats:
    """End-to-end counters for one service lifetime."""

    windows_seen: int = 0
    model_invocations: int = 0
    anomalies_raised: int = 0

    @property
    def model_skip_rate(self) -> float:
        """Fraction of windows answered by the pattern library."""
        if self.windows_seen == 0:
            return 0.0
        return 1.0 - self.model_invocations / self.windows_seen


class OnlineService:
    """Production-shaped online anomaly detection around a fitted model."""

    def __init__(self, model: LogSynergy, router: AlertRouter | None = None,
                 buffer_capacity: int = 50_000, window: int = 10, step: int = 5,
                 max_patterns: int = 100_000):
        if model.model is None:
            raise ValueError("OnlineService requires a fitted LogSynergy model")
        self.model = model
        self.buffer: BoundedBuffer[LogRecord] = BoundedBuffer(buffer_capacity)
        self.collector = LogCollector(self.buffer)
        self.formatter = LogFormatter(self.buffer, window=window, step=step)
        self.library = PatternLibrary(max_patterns=max_patterns)
        self.router = router or AlertRouter()
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    def _pattern_of(self, window: list[UnifiedLog]) -> tuple[int, ...]:
        featurizer = self.model._featurizer(self.model.target_system)
        ids = [featurizer.event_id_of(entry.message) for entry in window]
        # Patterns are keyed by the distinct-event set: real streams repeat
        # the same event mixes with permuted interleavings and varying run
        # lengths, and the library's job is to absorb exactly that
        # redundancy (§VI-A).
        return tuple(sorted(set(ids)))

    def _judge(self, window: list[UnifiedLog]) -> tuple[bool, AnomalyReport | None]:
        pattern = self._pattern_of(window)
        cached = self.library.lookup(pattern)
        if cached is not None:
            return cached, None
        report = self.model.detect_stream(
            [entry.message for entry in window],
            timestamps=[entry.timestamp for entry in window],
        )
        self.stats.model_invocations += 1
        self.library.remember(pattern, report.is_anomalous)
        return report.is_anomalous, report

    # ------------------------------------------------------------------
    def process(self, records: list[LogRecord]) -> list[AnomalyReport]:
        """Run a batch of raw records through the full pipeline."""
        self.collector.ship(records)
        reports: list[AnomalyReport] = []
        windows = self.formatter.pump(max_items=len(records) + self.formatter.window)
        for window in windows:
            self.stats.windows_seen += 1
            is_anomalous, report = self._judge(window)
            if is_anomalous and report is not None:
                self.router.route(report)
                self.stats.anomalies_raised += 1
                reports.append(report)
        return reports
