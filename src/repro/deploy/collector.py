"""Collection stage (§VI-A): Filebeat-like tailing into a Kafka-like buffer.

`LogCollector` simulates the Filebeat agents deployed on distributed
systems: it tails record sources and ships raw lines into a
:class:`~repro.deploy.buffer.BoundedBuffer`, reporting drops when the
buffer is saturated (real deployments see the same backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..logs.generator import LogRecord
from .buffer import BoundedBuffer

__all__ = ["CollectorStats", "LogCollector"]


@dataclass
class CollectorStats:
    """Counters for one collection run."""

    shipped: int = 0
    dropped: int = 0

    @property
    def total(self) -> int:
        """Total event count."""
        return self.shipped + self.dropped


class LogCollector:
    """Ships raw log records from sources into the transport buffer."""

    def __init__(self, buffer: BoundedBuffer):
        self.buffer = buffer
        self.stats = CollectorStats()

    def ship(self, records: Iterable[LogRecord]) -> CollectorStats:
        """Ship all records; drop (and count) what the buffer rejects."""
        for record in records:
            if self.buffer.offer(record):
                self.stats.shipped += 1
            else:
                self.stats.dropped += 1
        return self.stats
