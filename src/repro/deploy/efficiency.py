"""Deployment-efficiency model (§VI-C1).

The paper reports that LogSynergy cuts new-system deployment time by over
90 % versus rule-based methods: rule accumulation needs >10 rules at 1-2
weeks each, while LogSynergy needs a day of log collection, a few hours
of labeling and ~10 minutes of training.  This module encodes both
timelines so the deployment benchmark can print the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuleBasedTimeline", "LogSynergyTimeline", "deployment_speedup"]

_HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class RuleBasedTimeline:
    """Rule-accumulation deployment estimate."""

    rules_needed: int = 10
    days_per_rule: float = 10.5  # midpoint of the paper's 1-2 weeks

    @property
    def total_hours(self) -> float:
        """Total timeline length in hours."""
        return self.rules_needed * self.days_per_rule * _HOURS_PER_DAY


@dataclass(frozen=True)
class LogSynergyTimeline:
    """LogSynergy deployment estimate (§VI-B3, §VI-C1)."""

    collection_hours: float = 24.0   # "log collection can be done in a day"
    labeling_hours: float = 4.0      # "manual labeling typically takes just a few hours"
    interpretation_minutes: float = 10.0  # LEI generation + operator review
    training_minutes: float = 10.0   # §VI-B3

    @property
    def total_hours(self) -> float:
        """Total timeline length in hours."""
        return (
            self.collection_hours + self.labeling_hours
            + (self.interpretation_minutes + self.training_minutes) / 60.0
        )


def deployment_speedup(rule_based: RuleBasedTimeline | None = None,
                       logsynergy: LogSynergyTimeline | None = None) -> dict[str, float]:
    """Compare the two timelines; the paper claims >90 % reduction."""
    rule_based = rule_based or RuleBasedTimeline()
    logsynergy = logsynergy or LogSynergyTimeline()
    reduction = 1.0 - logsynergy.total_hours / rule_based.total_hours
    return {
        "rule_based_hours": rule_based.total_hours,
        "logsynergy_hours": logsynergy.total_hours,
        "reduction": reduction,
    }
