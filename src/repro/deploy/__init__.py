"""Production deployment simulation (§VI).

Wires the collection -> buffering -> formatting -> pattern-gated detection
-> alerting workflow around a fitted LogSynergy model, plus the
deployment-efficiency comparison against rule-based methods.
"""

from .buffer import BoundedBuffer
from .collector import CollectorStats, LogCollector
from .formatter import LogFormatter, UnifiedLog
from .pattern_library import PatternLibrary, PatternStats
from .alerting import AlertRouter, AlertSink, EmailSink, RecordingSink, SmsSink
from .online import OnlineService, ServiceStats
from .labeling import Annotator, LabelingOutcome, dual_annotation
from .efficiency import LogSynergyTimeline, RuleBasedTimeline, deployment_speedup

__all__ = [
    "BoundedBuffer",
    "LogCollector", "CollectorStats",
    "LogFormatter", "UnifiedLog",
    "PatternLibrary", "PatternStats",
    "AlertRouter", "AlertSink", "SmsSink", "EmailSink", "RecordingSink",
    "OnlineService", "ServiceStats",
    "RuleBasedTimeline", "LogSynergyTimeline", "deployment_speedup",
    "Annotator", "LabelingOutcome", "dual_annotation",
]
