"""Configuration dataclasses for LogSynergy training and experiments.

``LogSynergyConfig.paper()`` reproduces the paper's §IV-A4 settings
(six-layer encoder, 12 heads, FFN 2048, AdamW lr 1e-4, batch 1024,
10 epochs, λ_MI = λ_DA = 0.01, n_s = 50 000, n_t = 5 000).
``LogSynergyConfig.reduced()`` is the CPU-scale default used by the test
suite and benchmarks; EXPERIMENTS.md records the scale factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["LogSynergyConfig", "ExperimentConfig"]


@dataclass(frozen=True)
class LogSynergyConfig:
    """Hyperparameters for the LogSynergy model and offline training."""

    # Model architecture (§IV-A4).
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    d_ff: int = 128
    dropout: float = 0.1
    feature_dim: int = 32          # dimension of each of F_u(x) and F_s(x)
    embedding_dim: int = 64        # event-embedding input dimension

    # Optimization.
    learning_rate: float = 1e-4
    batch_size: int = 64
    epochs: int = 10
    weight_decay: float = 0.01
    grad_clip: float = 5.0

    # Loss weights (Eq. 5).
    lambda_mi: float = 0.01
    lambda_da: float = 0.01

    # Sample budgets (§IV-A1).
    n_source: int = 2000
    n_target: int = 200

    # Component ablation switches (Fig 5): LEI interpretation, SUFE
    # disentanglement, DAAN domain adaptation.  ``with_overrides`` can
    # express every Fig 5 variant from these.
    use_lei: bool = True
    use_sufe: bool = True
    use_da: bool = True

    # Misc.
    window: int = 10
    step: int = 5
    threshold: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.lambda_mi < 0 or self.lambda_da < 0:
            raise ValueError("loss weights must be non-negative")

    @classmethod
    def paper(cls) -> "LogSynergyConfig":
        """The configuration reported in §IV-A4 (V100-scale)."""
        return cls(
            d_model=768, num_heads=12, num_layers=6, d_ff=2048, dropout=0.1,
            feature_dim=256, embedding_dim=768,
            learning_rate=1e-4, batch_size=1024, epochs=10,
            lambda_mi=0.01, lambda_da=0.01,
            n_source=50_000, n_target=5_000,
        )

    @classmethod
    def reduced(cls, **overrides) -> "LogSynergyConfig":
        """CPU-scale configuration preserving every architectural ratio."""
        return replace(cls(), **overrides)

    def with_overrides(self, **overrides) -> "LogSynergyConfig":
        """Return a copy of this config with fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ExperimentConfig:
    """One cross-system experiment: a target and its source systems."""

    target: str
    sources: tuple[str, ...]
    scale: float = 0.01
    seed: int = 0
    model: LogSynergyConfig = field(default_factory=LogSynergyConfig)

    def __post_init__(self):
        if self.target in self.sources:
            raise ValueError(f"target {self.target!r} cannot also be a source")
        if not self.sources:
            raise ValueError("at least one source system is required")
