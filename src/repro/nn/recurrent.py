"""Recurrent layers (LSTM, GRU, bidirectional LSTM) for the baseline models.

DeepLog/LogAnomaly/LogTAD/LogTransfer use LSTMs, MetaLog uses GRUs, and
LogRobust uses a bidirectional LSTM with attention; all are built on the
cells here.  The layer modules run their recurrence through
:mod:`repro.nn.kernels` — one fused BPTT autograd node per layer over a
``(batch, seq, features)`` input — while the cells stay the source of
truth for parameters (and the seed per-timestep composition, used when
fusion is off).
"""

from __future__ import annotations

import numpy as np

from . import init, kernels
from .module import Module, Parameter
from .tensor import Tensor, concatenate

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU", "BiLSTM"]


class LSTMCell(Module):
    """Single LSTM cell with fused gate projections."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_input = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_hidden = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size, dtype=np.float32)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Run the module's forward computation."""
        h_prev, c_prev = state
        gates = x.matmul(self.w_input) + h_prev.matmul(self.w_hidden) + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_cand = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_cand
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """Single GRU cell (reset/update gates + candidate)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_input = Parameter(init.xavier_uniform((input_size, 3 * hidden_size), rng))
        self.w_hidden = Parameter(init.orthogonal((hidden_size, 3 * hidden_size), rng))
        self.bias = Parameter(np.zeros(3 * hidden_size, dtype=np.float32))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """Run the module's forward computation."""
        hs = self.hidden_size
        projected_x = x.matmul(self.w_input) + self.bias
        projected_h = h_prev.matmul(self.w_hidden)
        r_gate = (projected_x[:, 0:hs] + projected_h[:, 0:hs]).sigmoid()
        z_gate = (projected_x[:, hs : 2 * hs] + projected_h[:, hs : 2 * hs]).sigmoid()
        candidate = (projected_x[:, 2 * hs :] + r_gate * projected_h[:, 2 * hs :]).tanh()
        return (1.0 - z_gate) * candidate + z_gate * h_prev


class LSTM(Module):
    """Multi-layer unidirectional LSTM over ``(batch, seq, features)``."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .module import ModuleList

        self.cells = ModuleList(
            LSTMCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        )

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return (outputs, last_hidden): outputs is (batch, seq, hidden)."""
        outputs = x
        for cell in self.cells:
            outputs = kernels.lstm_layer(outputs, cell)
        return outputs, outputs[:, -1, :]


class GRU(Module):
    """Multi-layer unidirectional GRU over ``(batch, seq, features)``."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .module import ModuleList

        self.cells = ModuleList(
            GRUCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
            for i in range(num_layers)
        )

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Return (outputs, last_hidden): outputs is (batch, seq, hidden)."""
        outputs = x
        for cell in self.cells:
            outputs = kernels.gru_layer(outputs, cell)
        return outputs, outputs[:, -1, :]


class BiLSTM(Module):
    """Bidirectional LSTM: concatenates forward and backward hidden states."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.forward_lstm = LSTM(input_size, hidden_size, num_layers, rng=rng)
        self.backward_lstm = LSTM(input_size, hidden_size, num_layers, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Return outputs of shape (batch, seq, 2 * hidden)."""
        seq = x.shape[1]
        forward_out, _ = self.forward_lstm(x)
        reversed_in = x[:, ::-1, :]
        backward_out, _ = self.backward_lstm(reversed_in)
        backward_out = backward_out[:, ::-1, :]
        return concatenate([forward_out, backward_out], axis=2)
