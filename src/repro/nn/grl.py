"""Gradient reversal layer (Ganin & Lempitsky, 2015) for adversarial domain adaptation.

Forward pass is the identity; backward pass multiplies the gradient by
``-alpha``.  LogSynergy's DAAN module places this between the system-unified
features and the domain classifier so that minimizing the domain loss
*maximizes* domain confusion in the feature extractor.
"""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor

__all__ = ["GradientReversal", "gradient_reversal"]


def gradient_reversal(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Identity forward, ``-alpha``-scaled gradient backward."""
    out = x._make_child(x.data, (x,), "grl")

    def _backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(-alpha * grad)

    out._backward = _backward if out.requires_grad else None
    return out


class GradientReversal(Module):
    """Module wrapper around :func:`gradient_reversal` with mutable ``alpha``.

    DAAN schedules ``alpha`` from 0 to 1 over training; callers update
    :attr:`alpha` between steps.
    """

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return gradient_reversal(x, self.alpha)
