"""Leaky integrate-and-fire spiking layer for the SpikeLog baseline.

SpikeLog (Qi et al., TKDE 2023) detects anomalies with a potential-assisted
spiking neural network.  We implement a leaky integrate-and-fire (LIF)
neuron layer with a surrogate gradient for the non-differentiable spike
function (the standard fast-sigmoid surrogate), which is sufficient to
train the SpikeLog architecture at the scale used in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor, stack

__all__ = ["LIFLayer", "spike_function"]


def spike_function(membrane: Tensor, threshold: float, surrogate_slope: float = 5.0) -> Tensor:
    """Heaviside spike with a fast-sigmoid surrogate gradient.

    Forward: ``spike = 1 if membrane >= threshold else 0``.
    Backward: gradient of ``sigmoid(slope * (membrane - threshold))``.
    """
    shifted = membrane.data - threshold
    spikes = (shifted >= 0).astype(np.float32)
    out = membrane._make_child(spikes, (membrane,), "spike")

    def _backward(grad: np.ndarray) -> None:
        if membrane.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-surrogate_slope * shifted))
            membrane._accumulate(grad * surrogate_slope * sig * (1.0 - sig))

    out._backward = _backward if out.requires_grad else None
    return out


class LIFLayer(Module):
    """Leaky integrate-and-fire layer over a ``(batch, seq, features)`` input.

    Each timestep's input current is integrated into a membrane potential
    with leak factor ``beta``; crossing ``threshold`` emits a spike and
    soft-resets the membrane.  Returns per-step spike trains and the final
    membrane potential (the "potential-assisted" readout SpikeLog uses).
    """

    def __init__(self, input_size: int, hidden_size: int, beta: float = 0.9,
                 threshold: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"leak factor beta must be in (0, 1], got {beta}")
        self.projection = Linear(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size
        self.beta = beta
        self.threshold = threshold

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Run the module's forward computation."""
        batch, seq, _ = x.shape
        membrane = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
        spike_train = []
        # The LIF recurrence stays unfused: spike/reset dynamics are not a
        # kernels.py shape, and SpikeLog runs at toy scale here.
        for t in range(seq):  # lint: disable=per-timestep-loop
            current = self.projection(x[:, t, :])
            membrane = membrane * self.beta + current
            spikes = spike_function(membrane, self.threshold)
            membrane = membrane - spikes * self.threshold  # soft reset
            spike_train.append(spikes)
        return stack(spike_train, axis=1), membrane
