"""Core feed-forward layers: Linear, Embedding, LayerNorm, Dropout, activations."""

from __future__ import annotations

import numpy as np

from . import init, kernels
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "ReLU", "Tanh", "Sigmoid", "GELU"]


class Linear(Module):
    """Affine transform ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        if kernels.fused_kernels_enabled():
            return kernels.linear(x, self.weight, self.bias)
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, embedding_dim)) * 0.02).astype(np.float32)
        )

    def forward(self, ids) -> Tensor:
        """Run the module's forward computation."""
        index = np.asarray(ids.data if isinstance(ids, Tensor) else ids, dtype=np.int64)
        if index.min() < 0 or index.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"got [{index.min()}, {index.max()}]"
            )
        return self.weight[index]


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(normalized_dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        if kernels.fused_kernels_enabled():
            return kernels.layer_norm(x, self.gamma, self.beta, self.eps)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        if not self.training or self.p == 0.0:
            return x
        if kernels.fused_kernels_enabled():
            return kernels.dropout(x, self.p, self.rng)
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class ReLU(Module):
    """ReLU activation module."""
    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.relu()


class Tanh(Module):
    """Tanh activation module."""
    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.tanh()


class Sigmoid(Module):
    """Sigmoid activation module."""
    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        return x.sigmoid()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _COEFF = float(np.sqrt(2.0 / np.pi))

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        if kernels.fused_kernels_enabled():
            return kernels.gelu(x)
        inner = (x + x * x * x * 0.044715) * self._COEFF
        return x * (inner.tanh() + 1.0) * 0.5
