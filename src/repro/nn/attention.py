"""Multi-head scaled dot-product attention (Vaswani et al., 2017)."""

from __future__ import annotations

import numpy as np

from . import kernels
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention"]

_NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Self/cross attention with ``num_heads`` parallel heads.

    Input and output shapes are ``(batch, seq, d_model)``.  An optional
    boolean ``mask`` of shape ``(batch, seq)`` marks *valid* positions;
    attention weights to invalid positions are zeroed.
    """

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_query = Linear(d_model, d_model, rng=rng)
        self.w_key = Linear(d_model, d_model, rng=rng)
        self.w_value = Linear(d_model, d_model, rng=rng)
        self.w_out = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (batch, seq, d_model) -> (batch, heads, seq, d_head)
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose((0, 2, 1, 3))

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None,
                mask: np.ndarray | None = None) -> Tensor:
        """Run the module's forward computation."""
        key = key if key is not None else query
        value = value if value is not None else query
        batch, seq_q, _ = query.shape
        seq_k = key.shape[1]

        q = self._split_heads(self.w_query(query), batch, seq_q)
        k = self._split_heads(self.w_key(key), batch, seq_k)
        v = self._split_heads(self.w_value(value), batch, seq_k)

        scale = 1.0 / np.sqrt(self.d_head)
        additive = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            # (batch, seq_k) -> broadcast over heads and query positions.
            additive = np.where(mask[:, None, None, :], 0.0, _NEG_INF).astype(np.float32)

        if kernels.fused_kernels_enabled():
            dropout_p = self.dropout.p if self.dropout.training else 0.0
            context = kernels.attention(
                q, k, v, scale, additive_mask=additive,
                dropout_p=dropout_p, dropout_rng=self.dropout.rng,
            )
        else:
            scores = q.matmul(k.transpose((0, 1, 3, 2))) * scale
            if additive is not None:
                scores = scores + Tensor(additive)
            weights = scores.softmax(axis=-1)
            weights = self.dropout(weights)
            context = weights.matmul(v)  # (batch, heads, seq_q, d_head)
        merged = context.transpose((0, 2, 1, 3)).reshape(batch, seq_q, self.d_model)
        return self.w_out(merged)
