"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate that stands in
for PyTorch in this reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it so that :meth:`Tensor.backward` can
propagate gradients through the resulting computation graph.

Only the operations needed by the models in this repository are implemented,
but each is implemented with full broadcasting support and is validated
against finite differences in the test suite.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from .profiler import profiled_op

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones", "randn"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during evaluation/online detection, where gradients are never
    needed, to avoid the memory cost of recording the graph.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast op.

    Numpy broadcasting may have expanded some axes of the original operand;
    the corresponding gradient contributions must be summed back.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a numpy
        array of another float dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, _parents: tuple = (), _op: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = _parents if _GRAD_ENABLED else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of axes."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Element count."""
        return self.data.size

    @property
    def dtype(self):
        """Element dtype."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transposed view (last two axes for 2-D)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def item(self) -> float:
        """The single scalar value."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (detached view)."""
        return self.data

    def detach(self) -> "Tensor":
        """A grad-free tensor sharing this data."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Deep copy of data (grad flag preserved)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=needs, _parents=tuple(parents) if needs else (), _op=op)
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @profiled_op
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other.data, (self, other), "add")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    __radd__ = __add__

    @profiled_op
    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,), "neg")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    @profiled_op
    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    __rmul__ = __mul__

    @profiled_op
    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data / other.data, (self, other), "div")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        out._backward = _backward if out.requires_grad else None
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    @profiled_op
    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out = self._make_child(self.data**exponent, (self,), "pow")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Comparisons (no grad; produce float masks)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data > other_data).astype(np.float32))

    def __lt__(self, other) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data < other_data).astype(np.float32))

    # ------------------------------------------------------------------
    # Nonlinearities and transcendental functions
    # ------------------------------------------------------------------
    @profiled_op
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        value = np.exp(self.data)
        out = self._make_child(value, (self,), "exp")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def log(self) -> "Tensor":
        """Elementwise natural log."""
        out = self._make_child(np.log(self.data), (self,), "log")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    @profiled_op
    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        value = np.tanh(self.data)
        out = self._make_child(value, (self,), "tanh")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value**2))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,), "sigmoid")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        mask = self.data > 0
        out = self._make_child(np.where(mask, self.data, 0.0), (self,), "relu")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into [low, high]."""
        mask = (self.data >= low) & (self.data <= high)
        out = self._make_child(np.clip(self.data, low, high), (self,), "clip")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        sign = np.sign(self.data)
        out = self._make_child(np.abs(self.data), (self,), "abs")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @profiled_op
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum reduction."""
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean reduction."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    @profiled_op
    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Variance reduction (biased)."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    @profiled_op
    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max reduction (ties share gradient)."""
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,), "max")

        def _backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            v = value
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
                    v = np.expand_dims(v, ax)
            mask = self.data == v
            # Distribute gradient evenly among ties.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.where(mask, g / counts, 0.0))

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Linear algebra and shape manipulation
    # ------------------------------------------------------------------
    @profiled_op
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product over the last two axes (batched)."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other.data, (self, other), "matmul")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        out._backward = _backward if out.requires_grad else None
        return out

    __matmul__ = matmul

    @profiled_op
    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        """Permute axes (reverse by default)."""
        out = self._make_child(np.transpose(self.data, axes), (self,), "transpose")
        inverse = np.argsort(axes) if axes is not None else None

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Swap two axes."""
        out = self._make_child(np.swapaxes(self.data, a, b), (self,), "swapaxes")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, a, b))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def reshape(self, *shape) -> "Tensor":
        """Reshape preserving element order."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = self._make_child(self.data.reshape(shape), (self,), "reshape")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,), "getitem")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        out._backward = _backward if out.requires_grad else None
        return out

    # ------------------------------------------------------------------
    # Softmax family (fused for numerical stability)
    # ------------------------------------------------------------------
    @profiled_op
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along an axis."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make_child(value, (self,), "softmax")

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * value).sum(axis=axis, keepdims=True)
                self._accumulate(value * (grad - dot))

        out._backward = _backward if out.requires_grad else None
        return out

    @profiled_op
    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along an axis."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_sum
        out = self._make_child(value, (self,), "log_softmax")
        softmax = np.exp(value)

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        out._backward = _backward if out.requires_grad else None
        return out


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor of the given shape."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """All-ones tensor of the given shape."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    """Standard-normal tensor of the given shape."""
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)


@profiled_op
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    needs = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=needs, _parents=tuple(tensors) if needs else (), _op="concat")
    if needs:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(index)])

        out._backward = _backward
    return out


@profiled_op
def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    needs = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=needs, _parents=tuple(tensors) if needs else (), _op="stack")
    if needs:

        def _backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for t, g in zip(tensors, slices):
                if t.requires_grad:
                    t._accumulate(g)

        out._backward = _backward
    return out


@profiled_op
def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient support (condition is a raw mask)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = condition.data.astype(bool) if isinstance(condition, Tensor) else np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    needs = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=needs, _parents=(a, b) if needs else (), _op="where")
    if needs:

        def _backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.shape))

        out._backward = _backward
    return out
