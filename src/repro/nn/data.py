"""Minimal Dataset / DataLoader utilities for mini-batch training."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_test_split_continuous"]


class ArrayDataset:
    """Dataset over parallel numpy arrays (features, labels, extra columns)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"all arrays must share length, got {sorted(lengths)}")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index) -> tuple[np.ndarray, ...]:
        return tuple(a[index] for a in self.arrays)


class DataLoader:
    """Iterates mini-batches over an :class:`ArrayDataset`.

    Shuffling uses the provided generator so experiments stay reproducible.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, shuffle: bool = True,
                 drop_last: bool = False, rng: np.random.Generator | None = None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset[batch]


def train_test_split_continuous(items: Sequence, train_count: int) -> tuple[list, list]:
    """Leakage-free continuous split (§IV-A1): earliest items train, rest test.

    The paper follows Le & Zhang (ICSE '22) in avoiding random splits, which
    leak future templates into training; we expose the same policy here for
    both the core method and all baselines.
    """
    if train_count < 0:
        raise ValueError("train_count must be non-negative")
    items = list(items)
    return items[:train_count], items[train_count:]
