"""Fused training kernels for the hot ops identified by :mod:`repro.nn.profiler`.

The generic autograd engine in :mod:`repro.nn.tensor` builds one graph node
per primitive, which makes BPTT over a ``(batch, seq, features)`` input cost
a Python-level node per timestep per gate.  The kernels here collapse each
hot composite into a single custom autograd node with a hand-written
backward:

* :func:`lstm_layer` / :func:`gru_layer` — fused BPTT recurrence: the input
  projection for *all* timesteps is one matmul, the recurrence runs over
  preallocated numpy buffers, and one node replays the whole sequence in
  reverse during backward.
* :func:`attention` — scaled-dot-product attention with the softmax (and
  inverted dropout) folded into one forward/backward pair.
* :func:`linear` / :func:`layer_norm` / :func:`gelu` / :func:`dropout` —
  the per-call workhorses of the transformer encoder (and CLUB/DAAN
  heads): each as one node instead of a matmul/transpose/add or
  mean/var/sub/div/mul/add chain.
* :func:`bce_with_logits` / :func:`cross_entropy` — single-node losses with
  closed-form logit gradients.

Each kernel dispatches on the module-level fused switch so callers (the
``LSTM``/``GRU``/``BiLSTM``/``MultiHeadAttention`` modules and
:mod:`repro.nn.loss`) keep their public APIs: ``use_fused_kernels(False)``
restores the seed composition — the comparison baseline for
``benchmarks/bench_train_throughput.py`` and the parity tests.

This module is the one sanctioned home for per-timestep Python loops over a
tensor time axis (see the ``per-timestep-loop`` lint rule in
:mod:`repro.analysis.rules`); everywhere else the loop is the bug.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .profiler import profiled_op
from .tensor import Tensor, is_grad_enabled, stack

__all__ = [
    "fused_kernels_enabled",
    "set_fused_kernels",
    "use_fused_kernels",
    "lstm_layer",
    "gru_layer",
    "attention",
    "linear",
    "layer_norm",
    "gelu",
    "dropout",
    "gaussian_log_likelihood",
    "bce_with_logits",
    "cross_entropy",
]

_FUSED = True


def fused_kernels_enabled() -> bool:
    """Whether the fused kernel paths are active."""
    return _FUSED


def set_fused_kernels(enabled: bool) -> bool:
    """Toggle the fused kernels globally; returns the previous setting."""
    global _FUSED
    previous = _FUSED
    _FUSED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_fused_kernels(enabled: bool = True):
    """Scope the fused-kernel switch (used by benchmarks and parity tests)."""
    previous = set_fused_kernels(enabled)
    try:
        yield
    finally:
        set_fused_kernels(previous)


def _needs_grad(*tensors: Tensor) -> bool:
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


def _zero_state(batch: int, hidden: int) -> Tensor:
    return Tensor(np.zeros((batch, hidden), dtype=np.float32))


# ----------------------------------------------------------------------
# Fused LSTM layer
# ----------------------------------------------------------------------
def _reference_lstm_layer(x: Tensor, cell) -> Tensor:
    """Seed composition: per-timestep cell calls through the generic graph."""
    batch, seq, _ = x.shape
    h = _zero_state(batch, cell.hidden_size)
    c = _zero_state(batch, cell.hidden_size)
    outputs = []
    for t in range(seq):
        h, c = cell(x[:, t, :], (h, c))
        outputs.append(h)
    return stack(outputs, axis=1)


def _fused_lstm_layer(x: Tensor, cell) -> Tensor:
    w_input, w_hidden, bias = cell.w_input, cell.w_hidden, cell.bias
    hidden = cell.hidden_size
    data = x.data
    batch, seq, features = data.shape
    needs = _needs_grad(x, w_input, w_hidden, bias)

    # One matmul projects every timestep's input through w_input.
    x2d = np.ascontiguousarray(data.reshape(batch * seq, features))
    px = (x2d @ w_input.data + bias.data).reshape(batch, seq, 4 * hidden)
    w_hidden_data = w_hidden.data

    outputs = np.empty((batch, seq, hidden), dtype=np.float32)
    if needs:
        # Saved for backward: activated gates, cell states, tanh(c).
        gates = np.empty((batch, seq, 4 * hidden), dtype=np.float32)
        cells_buf = np.empty((batch, seq, hidden), dtype=np.float32)
        tanh_c = np.empty((batch, seq, hidden), dtype=np.float32)

    g_lo, g_hi = 2 * hidden, 3 * hidden
    pre = np.empty((batch, 4 * hidden), dtype=np.float32)
    tmp = np.empty((batch, hidden), dtype=np.float32)
    tc = np.empty((batch, hidden), dtype=np.float32)
    h_t = np.zeros((batch, hidden), dtype=np.float32)
    c_t = np.zeros((batch, hidden), dtype=np.float32)
    for t in range(seq):
        np.matmul(h_t, w_hidden_data, out=pre)
        pre += px[:, t]
        g_cand = np.tanh(pre[:, g_lo:g_hi])
        # One in-place sigmoid pass over the whole preactivation row covers
        # the i/f/o gates at once; the g slice is recomputed and discarded.
        np.negative(pre, out=pre)
        np.exp(pre, out=pre)
        pre += 1.0
        np.reciprocal(pre, out=pre)
        i_gate = pre[:, :hidden]
        f_gate = pre[:, hidden:g_lo]
        o_gate = pre[:, g_hi:]
        c_t *= f_gate
        np.multiply(i_gate, g_cand, out=tmp)
        c_t += tmp
        np.tanh(c_t, out=tc)
        np.multiply(o_gate, tc, out=h_t)
        outputs[:, t] = h_t
        if needs:
            gate_row = gates[:, t]
            gate_row[:] = pre
            gate_row[:, g_lo:g_hi] = g_cand
            cells_buf[:, t] = c_t
            tanh_c[:, t] = tc

    parents = (x, w_input, w_hidden, bias) if needs else ()
    out = Tensor(outputs, requires_grad=needs, _parents=parents, _op="lstm_layer")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        # Activation derivatives for every timestep in one vectorized pass:
        # s - s^2 for the sigmoid gates, 1 - g^2 for the candidate, and
        # 1 - tanh(c)^2 for the cell nonlinearity.
        deriv = gates - gates * gates
        g_act = gates[:, :, g_lo:g_hi]
        deriv[:, :, g_lo:g_hi] = 1.0 - g_act * g_act
        dtanh_c = 1.0 - tanh_c * tanh_c

        dgates = np.empty((batch, seq, 4 * hidden), dtype=np.float32)
        dh = np.empty((batch, hidden), dtype=np.float32)
        dc = np.empty((batch, hidden), dtype=np.float32)
        dh_next = np.zeros((batch, hidden), dtype=np.float32)
        dc_next = np.zeros((batch, hidden), dtype=np.float32)
        w_hidden_t = w_hidden.data.T
        for t in range(seq - 1, -1, -1):
            gate_row = gates[:, t]
            i_gate = gate_row[:, :hidden]
            f_gate = gate_row[:, hidden:g_lo]
            g_cand = gate_row[:, g_lo:g_hi]
            np.add(grad[:, t], dh_next, out=dh)
            np.multiply(dh, gate_row[:, g_hi:], out=dc)
            dc *= dtanh_c[:, t]
            dc += dc_next
            c_prev = cells_buf[:, t - 1] if t > 0 else 0.0
            slot = dgates[:, t]
            np.multiply(dc, g_cand, out=slot[:, :hidden])
            np.multiply(dc, c_prev, out=slot[:, hidden:g_lo])
            np.multiply(dc, i_gate, out=slot[:, g_lo:g_hi])
            np.multiply(dh, tanh_c[:, t], out=slot[:, g_hi:])
            slot *= deriv[:, t]
            np.matmul(slot, w_hidden_t, out=dh_next)
            np.multiply(dc, f_gate, out=dc_next)
        flat = dgates.reshape(batch * seq, 4 * hidden)
        if x.requires_grad:
            x._accumulate((flat @ w_input.data.T).reshape(batch, seq, features))
        if w_input.requires_grad:
            w_input._accumulate(x2d.T @ flat)
        if w_hidden.requires_grad:
            h_prev = np.concatenate(
                [np.zeros((batch, 1, hidden), dtype=np.float32), outputs[:, :-1]], axis=1
            )
            w_hidden._accumulate(h_prev.reshape(batch * seq, hidden).T @ flat)
        if bias.requires_grad:
            bias._accumulate(flat.sum(axis=0))

    out._backward = _backward
    return out


@profiled_op
def lstm_layer(x: Tensor, cell) -> Tensor:
    """One LSTM layer over ``(batch, seq, features)`` -> ``(batch, seq, hidden)``.

    ``cell`` is an :class:`~repro.nn.recurrent.LSTMCell`; fused and seed
    paths share its parameters, so state dicts and audits are unchanged.
    """
    if _FUSED:
        return _fused_lstm_layer(x, cell)
    return _reference_lstm_layer(x, cell)


# ----------------------------------------------------------------------
# Fused GRU layer
# ----------------------------------------------------------------------
def _reference_gru_layer(x: Tensor, cell) -> Tensor:
    batch, seq, _ = x.shape
    h = _zero_state(batch, cell.hidden_size)
    outputs = []
    for t in range(seq):
        h = cell(x[:, t, :], h)
        outputs.append(h)
    return stack(outputs, axis=1)


def _fused_gru_layer(x: Tensor, cell) -> Tensor:
    w_input, w_hidden, bias = cell.w_input, cell.w_hidden, cell.bias
    hidden = cell.hidden_size
    data = x.data
    batch, seq, features = data.shape
    needs = _needs_grad(x, w_input, w_hidden, bias)

    x2d = np.ascontiguousarray(data.reshape(batch * seq, features))
    px = (x2d @ w_input.data + bias.data).reshape(batch, seq, 3 * hidden)
    w_hidden_data = w_hidden.data

    outputs = np.empty((batch, seq, hidden), dtype=np.float32)
    if needs:
        # r, z, n activations plus the hidden projection of the candidate.
        gates = np.empty((batch, seq, 3 * hidden), dtype=np.float32)
        ph_cand = np.empty((batch, seq, hidden), dtype=np.float32)

    h_t = np.zeros((batch, hidden), dtype=np.float32)
    for t in range(seq):
        ph = h_t @ w_hidden_data
        px_t = px[:, t]
        r_gate = 1.0 / (1.0 + np.exp(-(px_t[:, :hidden] + ph[:, :hidden])))
        z_gate = 1.0 / (1.0 + np.exp(-(px_t[:, hidden : 2 * hidden] + ph[:, hidden : 2 * hidden])))
        candidate = np.tanh(px_t[:, 2 * hidden :] + r_gate * ph[:, 2 * hidden :])
        h_t = (1.0 - z_gate) * candidate + z_gate * h_t
        outputs[:, t] = h_t
        if needs:
            gate_row = gates[:, t]
            gate_row[:, :hidden] = r_gate
            gate_row[:, hidden : 2 * hidden] = z_gate
            gate_row[:, 2 * hidden :] = candidate
            ph_cand[:, t] = ph[:, 2 * hidden :]

    parents = (x, w_input, w_hidden, bias) if needs else ()
    out = Tensor(outputs, requires_grad=needs, _parents=parents, _op="gru_layer")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        dpx = np.empty((batch, seq, 3 * hidden), dtype=np.float32)
        dph = np.empty((batch, seq, 3 * hidden), dtype=np.float32)
        dh_next = np.zeros((batch, hidden), dtype=np.float32)
        w_hidden_t = w_hidden.data.T
        for t in range(seq - 1, -1, -1):
            gate_row = gates[:, t]
            r_gate = gate_row[:, :hidden]
            z_gate = gate_row[:, hidden : 2 * hidden]
            candidate = gate_row[:, 2 * hidden :]
            h_prev = outputs[:, t - 1] if t > 0 else 0.0
            dh = grad[:, t] + dh_next
            dz_pre = dh * (h_prev - candidate) * z_gate * (1.0 - z_gate)
            dn_pre = dh * (1.0 - z_gate) * (1.0 - candidate * candidate)
            dr_pre = dn_pre * ph_cand[:, t] * r_gate * (1.0 - r_gate)
            px_slot = dpx[:, t]
            px_slot[:, :hidden] = dr_pre
            px_slot[:, hidden : 2 * hidden] = dz_pre
            px_slot[:, 2 * hidden :] = dn_pre
            ph_slot = dph[:, t]
            ph_slot[:, :hidden] = dr_pre
            ph_slot[:, hidden : 2 * hidden] = dz_pre
            ph_slot[:, 2 * hidden :] = dn_pre * r_gate
            dh_next = dh * z_gate + ph_slot @ w_hidden_t
        flat_px = dpx.reshape(batch * seq, 3 * hidden)
        if x.requires_grad:
            x._accumulate((flat_px @ w_input.data.T).reshape(batch, seq, features))
        if w_input.requires_grad:
            w_input._accumulate(x2d.T @ flat_px)
        if w_hidden.requires_grad:
            h_prev_all = np.concatenate(
                [np.zeros((batch, 1, hidden), dtype=np.float32), outputs[:, :-1]], axis=1
            )
            w_hidden._accumulate(
                h_prev_all.reshape(batch * seq, hidden).T @ dph.reshape(batch * seq, 3 * hidden)
            )
        if bias.requires_grad:
            bias._accumulate(flat_px.sum(axis=0))

    out._backward = _backward
    return out


@profiled_op
def gru_layer(x: Tensor, cell) -> Tensor:
    """One GRU layer over ``(batch, seq, features)`` -> ``(batch, seq, hidden)``."""
    if _FUSED:
        return _fused_gru_layer(x, cell)
    return _reference_gru_layer(x, cell)


# ----------------------------------------------------------------------
# Fused scaled-dot-product attention
# ----------------------------------------------------------------------
@profiled_op
def attention(q: Tensor, k: Tensor, v: Tensor, scale: float,
              additive_mask: np.ndarray | None = None,
              dropout_p: float = 0.0,
              dropout_rng: np.random.Generator | None = None) -> Tensor:
    """``softmax(q kᵀ · scale + mask) v`` as one autograd node.

    Replicates the seed composition bit-for-bit, including the inverted
    dropout draw (same RNG stream as :class:`~repro.nn.layers.Dropout`),
    so toggling fusion never changes model behaviour.  ``dropout_p`` of 0
    means no dropout (pass 0 in eval mode).
    """
    scores = q.data @ np.swapaxes(k.data, -1, -2) * scale
    if additive_mask is not None:
        scores = scores + additive_mask
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=-1, keepdims=True)
    if dropout_p > 0.0:
        keep = 1.0 - dropout_p
        drop_mask = (dropout_rng.random(weights.shape) < keep).astype(np.float32) / keep
        dropped = weights * drop_mask
    else:
        drop_mask = None
        dropped = weights
    context = dropped @ v.data

    needs = _needs_grad(q, k, v)
    parents = (q, k, v) if needs else ()
    out = Tensor(context, requires_grad=needs, _parents=parents, _op="attention")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if v.requires_grad:
            v._accumulate(np.swapaxes(dropped, -1, -2) @ grad)
        ddropped = grad @ np.swapaxes(v.data, -1, -2)
        dweights = ddropped * drop_mask if drop_mask is not None else ddropped
        dscores = weights * (dweights - (dweights * weights).sum(axis=-1, keepdims=True))
        if q.requires_grad:
            q._accumulate((dscores @ k.data) * scale)
        if k.requires_grad:
            k._accumulate((np.swapaxes(dscores, -1, -2) @ q.data) * scale)

    out._backward = _backward
    return out


# ----------------------------------------------------------------------
# Fused feed-forward layers
# ----------------------------------------------------------------------
@profiled_op
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``y = x W^T (+ b)`` over the last axis as one node; ``weight`` is
    ``(out_features, in_features)`` as in :class:`~repro.nn.layers.Linear`."""
    data = x.data
    value = data @ weight.data.T
    if bias is not None:
        value = value + bias.data

    tensors = (x, weight) if bias is None else (x, weight, bias)
    needs = _needs_grad(*tensors)
    out = Tensor(value, requires_grad=needs, _parents=tensors if needs else (),
                 _op="linear")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ weight.data)
        flat = grad.reshape(-1, grad.shape[-1])
        if weight.requires_grad:
            weight._accumulate(flat.T @ data.reshape(-1, data.shape[-1]))
        if bias is not None and bias.requires_grad:
            bias._accumulate(flat.sum(axis=0))

    out._backward = _backward
    return out


_GELU_COEFF = float(np.sqrt(2.0 / np.pi))


@profiled_op
def gelu(x: Tensor) -> Tensor:
    """Tanh-approximation GELU as one node (seed: a 9-op mul/add/tanh chain)."""
    data = x.data
    inner = (data + data * data * data * 0.044715) * _GELU_COEFF
    t = np.tanh(inner)
    value = data * (t + 1.0) * 0.5

    needs = _needs_grad(x)
    out = Tensor(value, requires_grad=needs, _parents=(x,) if needs else (),
                 _op="gelu")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dinner = _GELU_COEFF * (1.0 + 3.0 * 0.044715 * data * data)
            x._accumulate(grad * 0.5 * ((1.0 + t) + data * (1.0 - t * t) * dinner))

    out._backward = _backward
    return out


@profiled_op
def dropout(x: Tensor, p: float, rng: np.random.Generator) -> Tensor:
    """Inverted dropout as one node; identical RNG draw to the seed
    :class:`~repro.nn.layers.Dropout` so fusion never changes the stream."""
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    value = x.data * mask

    needs = _needs_grad(x)
    out = Tensor(value, requires_grad=needs, _parents=(x,) if needs else (),
                 _op="dropout")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    out._backward = _backward
    return out


@profiled_op
def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> Tensor:
    """Last-axis layer normalization with affine, as one node."""
    data = x.data
    mean = data.mean(axis=-1, keepdims=True)
    centered = data - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    value = normalized * gamma.data + beta.data

    needs = _needs_grad(x, gamma, beta)
    out = Tensor(value, requires_grad=needs,
                 _parents=(x, gamma, beta) if needs else (), _op="layer_norm")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate((grad * normalized).reshape(-1, grad.shape[-1]).sum(axis=0))
        if beta.requires_grad:
            beta._accumulate(grad.reshape(-1, grad.shape[-1]).sum(axis=0))
        if x.requires_grad:
            dnorm = grad * gamma.data
            x._accumulate(inv_std * (
                dnorm - dnorm.mean(axis=-1, keepdims=True)
                - normalized * (dnorm * normalized).mean(axis=-1, keepdims=True)
            ))

    out._backward = _backward
    return out


# ----------------------------------------------------------------------
# Fused losses
# ----------------------------------------------------------------------
@profiled_op
def gaussian_log_likelihood(s: Tensor, mu: Tensor, logvar: Tensor) -> Tensor:
    """Per-sample ``log N(s; mu, e^logvar)`` summed over the last axis
    (up to the constant term) — the CLUB estimator's inner chain."""
    d = s.data - mu.data
    inv_var = np.exp(-logvar.data)
    value = (-(d * d) * inv_var * 0.5 - logvar.data * 0.5).sum(axis=-1)

    needs = _needs_grad(s, mu, logvar)
    out = Tensor(value, requires_grad=needs,
                 _parents=(s, mu, logvar) if needs else (),
                 _op="gaussian_log_likelihood")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        g = grad[..., None]
        scaled = g * d * inv_var
        if s.requires_grad:
            s._accumulate(-scaled)
        if mu.requires_grad:
            mu._accumulate(scaled)
        if logvar.requires_grad:
            logvar._accumulate(g * ((d * d) * inv_var * 0.5 - 0.5))

    out._backward = _backward
    return out



@profiled_op
def bce_with_logits(logits: Tensor, targets: np.ndarray, pos_weight: float = 1.0) -> Tensor:
    """Single-node BCE-with-logits; ``targets`` is treated as constant."""
    z = logits.data
    t = np.asarray(targets, dtype=z.dtype)
    log_term = np.log1p(np.exp(-np.abs(z)))
    softplus_neg = np.maximum(-z, 0.0) + log_term
    softplus_pos = np.maximum(z, 0.0) + log_term
    per_sample = t * softplus_neg * pos_weight + (1.0 - t) * softplus_pos
    value = np.asarray(per_sample.mean(), dtype=z.dtype)

    needs = _needs_grad(logits)
    out = Tensor(value, requires_grad=needs, _parents=(logits,) if needs else (),
                 _op="bce_with_logits")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-z))
            dz = (t * pos_weight * (sig - 1.0) + (1.0 - t) * sig) / z.size
            logits._accumulate(dz * grad)

    out._backward = _backward
    return out


@profiled_op
def cross_entropy(logits: Tensor, class_ids: np.ndarray) -> Tensor:
    """Single-node categorical cross-entropy with integer class targets."""
    ids = np.asarray(class_ids, dtype=np.int64)
    z = logits.data
    shifted = z - z.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    rows = np.arange(len(ids))
    value = np.asarray(-log_probs[rows, ids].mean(), dtype=z.dtype)

    needs = _needs_grad(logits)
    out = Tensor(value, requires_grad=needs, _parents=(logits,) if needs else (),
                 _op="cross_entropy")
    if not needs:
        return out

    def _backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            dz = np.exp(log_probs)
            dz[rows, ids] -= 1.0
            logits._accumulate(dz * (grad / len(ids)))

    out._backward = _backward
    return out
