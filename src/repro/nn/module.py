"""Module/Parameter abstractions mirroring the ``torch.nn`` API surface.

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
``parameters()`` / ``named_parameters()`` for optimizers, supports
train/eval mode switching, and serializes to flat state dicts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and submodules as attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self):
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._registry("_parameters", name, value)[name] = value
        elif isinstance(value, Module):
            self._registry("_modules", name, value)[name] = value
        object.__setattr__(self, name, value)

    def _registry(self, kind: str, name: str, value) -> OrderedDict:
        registry = self.__dict__.get(kind)
        if registry is None:
            # Silently creating the dict here would register the value on an
            # object whose Module.__init__ never ran — parameters()/state_dict
            # would then miss everything assigned later.  Fail loudly instead.
            raise RuntimeError(
                f"cannot assign {type(value).__name__} {name!r} to "
                f"{type(self).__name__} before Module.__init__() runs; "
                "call super().__init__() before assigning parameters/submodules"
            )
        return registry

    def forward(self, *args, **kwargs):
        """Run the module's forward computation."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted name, parameter) pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield (dotted name, module) pairs recursively."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total count of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch this module tree to training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch this module tree to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters into a flat name->array mapping."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters from a flat name->array mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            if name not in own:
                continue
            param = own[name]
            if param.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: model {param.data.shape} vs state {array.shape}"
                )
            param.data = array.astype(param.data.dtype).copy()

    def save(self, path: str) -> None:
        """Save parameters to an ``.npz`` archive."""
        np.savez(path, **{k.replace(".", "__"): v for k, v in self.state_dict().items()})

    def load(self, path: str) -> None:
        """Load parameters from an ``.npz`` archive produced by :meth:`save`."""
        with np.load(path) as archive:
            state = {k.replace("__", "."): archive[k] for k in archive.files}
        self.load_state_dict(state)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        """Run the module's forward computation."""
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class ModuleList(Module):
    """List container that registers its elements as submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._list: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        """Append a module, registering it as a child."""
        index = len(self._list)
        self._list.append(module)
        setattr(self, f"item{index}", module)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __iter__(self):
        return iter(self._list)

    def __len__(self):
        return len(self._list)
