"""Finite-difference gradient checking.

Promoted from the test suite so the model auditor
(:mod:`repro.analysis.audit`) and downstream users can validate autograd
against central finite differences outside of pytest.  The test helper
in ``tests/helpers.py`` is now a thin wrapper over these functions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients", "parameter_gradient_error"]


def numeric_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                     eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``.

    ``fn`` is called with ``x`` mutated in place one coordinate at a
    time; it must read the array fresh on every call.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(build_loss: Callable[[Tensor], Tensor], shape: tuple[int, ...],
                    seed: int = 0, atol: float = 2e-2, rtol: float = 5e-2,
                    rng: np.random.Generator | None = None) -> None:
    """Assert autograd gradients match finite differences.

    ``build_loss(tensor) -> Tensor`` must construct a scalar loss from a
    (possibly multidimensional) input tensor.  Raises ``AssertionError``
    on mismatch.
    """
    rng = rng or np.random.default_rng(seed)
    x = rng.standard_normal(shape).astype(np.float32)

    tensor = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(tensor)
    assert loss.data.size == 1, "build_loss must return a scalar"
    loss.backward()
    analytic = tensor.grad.astype(np.float64)

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build_loss(Tensor(arr.astype(np.float32))).data)

    numeric = numeric_gradient(scalar_fn, x.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def parameter_gradient_error(loss_value: Callable[[], float], param: Tensor,
                             eps: float = 1e-2) -> float:
    """Max abs difference between ``param.grad`` and finite differences.

    ``loss_value`` recomputes the scalar loss from the current parameter
    data (the auditor passes its probe closure).  ``param.grad`` must
    already hold the analytic gradient from a prior ``backward()``.
    """
    if param.grad is None:
        raise ValueError("param has no gradient; run backward() first")
    original = param.data
    numeric = np.zeros(param.data.shape, dtype=np.float64)
    flat_numeric = numeric.reshape(-1)
    try:
        working = original.copy()
        param.data = working
        flat = working.reshape(-1)
        for i in range(flat.size):
            saved = flat[i]
            flat[i] = saved + eps
            plus = loss_value()
            flat[i] = saved - eps
            minus = loss_value()
            flat[i] = saved
            flat_numeric[i] = (plus - minus) / (2 * eps)
    finally:
        param.data = original
    return float(np.max(np.abs(param.grad.astype(np.float64) - numeric)))
