"""Optimizers: SGD (momentum), Adam, AdamW, plus gradient clipping and schedulers.

The paper trains LogSynergy with AdamW at learning rate 1e-4; baselines use
Adam/SGD per their original papers.
"""

from __future__ import annotations

import math

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm", "LinearWarmupSchedule"]


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one optimization/schedule step."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one optimization/schedule step."""
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2 regularization coupled into the gradient."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, p: Parameter, m: np.ndarray, v: np.ndarray, grad: np.ndarray) -> np.ndarray:
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad**2
        m_hat = m / (1 - self.beta1**self._step_count)
        v_hat = v / (1 - self.beta2**self._step_count)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        """Apply one optimization/schedule step."""
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            p.data = p.data - self.lr * self._update(p, m, v, grad)

    def state_dict(self) -> dict:
        """Resumable state: step count, current LR, both moment lists
        (parallel to ``self.parameters``)."""
        return {
            "step_count": self._step_count,
            "lr": self.lr,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        The moment lists must match this optimizer's parameter list in
        length and shape — resuming requires the same model topology.
        """
        moments_m, moments_v = list(state["m"]), list(state["v"])
        if len(moments_m) != len(self.parameters) or \
                len(moments_v) != len(self.parameters):
            raise ValueError(
                f"optimizer state carries {len(moments_m)}/{len(moments_v)} "
                f"moment arrays for {len(self.parameters)} parameters")
        for target, source in zip(self._m + self._v, moments_m + moments_v):
            if target.shape != np.shape(source):
                raise ValueError(
                    f"moment shape mismatch: {target.shape} vs "
                    f"{np.shape(source)}")
        self._step_count = int(state["step_count"])
        self.lr = float(state["lr"])
        for target, source in zip(self._m, moments_m):
            target[...] = source
        for target, source in zip(self._v, moments_v):
            target[...] = source


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    This is the optimizer the paper uses for LogSynergy (lr 1e-4).
    """

    def __init__(self, parameters, lr: float = 1e-4, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(parameters, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        """Apply one optimization/schedule step."""
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            update = self._update(p, m, v, p.grad)
            p.data = p.data - self.lr * (update + self.decoupled_weight_decay * p.data)


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad.astype(np.float64) ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class LinearWarmupSchedule:
    """Linear warmup then constant learning rate."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, base_lr: float | None = None):
        self.optimizer = optimizer
        self.warmup_steps = max(1, warmup_steps)
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self._step_count = 0

    def step(self) -> float:
        """Apply one optimization/schedule step."""
        self._step_count += 1
        factor = min(1.0, self._step_count / self.warmup_steps)
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
