"""Transformer encoder stack used by LogSynergy's feature extractor and NeuralLog."""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module, ModuleList
from .tensor import Tensor

__all__ = ["PositionalEncoding", "TransformerEncoderLayer", "TransformerEncoder"]


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding added to input embeddings."""

    def __init__(self, d_model: int, max_len: int = 512):
        super().__init__()
        position = np.arange(max_len)[:, None].astype(np.float32)
        div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model)).astype(np.float32)
        table = np.zeros((max_len, d_model), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div[: d_model // 2])
        self._table = table
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        """Run the module's forward computation."""
        seq = x.shape[1]
        if seq > self.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {self.max_len}")
        return x + Tensor(self._table[None, :seq, :])


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (attention + position-wise FFN)."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, d_ff, rng=rng)
        self.ff2 = Linear(d_ff, d_model, rng=rng)
        self.activation = GELU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Run the module's forward computation."""
        attended = self.attention(self.norm1(x), mask=mask)
        x = x + self.dropout(attended)
        transformed = self.ff2(self.dropout(self.activation(self.ff1(self.norm2(x)))))
        return x + self.dropout(transformed)


class TransformerEncoder(Module):
    """Stack of encoder layers with positional encoding and final norm.

    The paper's LogSynergy uses a six-layer encoder with 12 heads and a
    2048-wide FFN; this implementation accepts those hyperparameters but
    the reproduction defaults to a reduced scale for CPU training.
    """

    def __init__(self, d_model: int, num_heads: int, num_layers: int, d_ff: int,
                 dropout: float = 0.1, max_len: int = 512,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.positional = PositionalEncoding(d_model, max_len=max_len)
        self.layers = ModuleList(
            TransformerEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        )
        self.final_norm = LayerNorm(d_model)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Run the module's forward computation."""
        x = self.positional(x)
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)

    def pooled(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Encode and mean-pool over valid sequence positions."""
        encoded = self.forward(x, mask=mask)
        if mask is None:
            return encoded.mean(axis=1)
        mask_arr = np.asarray(mask, dtype=np.float32)
        weights = Tensor((mask_arr / np.maximum(mask_arr.sum(axis=1, keepdims=True), 1.0))[..., None])
        return (encoded * weights).sum(axis=1)
