"""Numpy-based neural-network substrate standing in for PyTorch.

Public surface mirrors the subset of ``torch``/``torch.nn`` the paper's
models need: an autograd :class:`Tensor`, modules (linear, embedding,
normalization, attention, transformer encoder, recurrent and spiking
layers), losses, optimizers, a gradient-reversal layer, and data utilities.
"""

from .tensor import Tensor, concatenate, no_grad, ones, randn, stack, tensor, where, zeros
from .module import Module, ModuleList, Parameter, Sequential
from .layers import Dropout, Embedding, GELU, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .attention import MultiHeadAttention
from .transformer import PositionalEncoding, TransformerEncoder, TransformerEncoderLayer
from .recurrent import BiLSTM, GRU, GRUCell, LSTM, LSTMCell
from .spiking import LIFLayer, spike_function
from .grl import GradientReversal, gradient_reversal
from .loss import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse_loss,
    nll_loss,
)
from .optim import SGD, Adam, AdamW, LinearWarmupSchedule, Optimizer, clip_grad_norm
from .data import ArrayDataset, DataLoader, train_test_split_continuous
from .gradcheck import check_gradients, numeric_gradient, parameter_gradient_error
from .kernels import fused_kernels_enabled, set_fused_kernels, use_fused_kernels
from .profiler import OpProfiler, OpStats, active_profiler, profiled_op

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "randn", "concatenate", "stack", "where", "no_grad",
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "Embedding", "LayerNorm", "Dropout", "ReLU", "Tanh", "Sigmoid", "GELU",
    "MultiHeadAttention", "TransformerEncoder", "TransformerEncoderLayer", "PositionalEncoding",
    "LSTM", "GRU", "BiLSTM", "LSTMCell", "GRUCell",
    "LIFLayer", "spike_function",
    "GradientReversal", "gradient_reversal",
    "binary_cross_entropy", "binary_cross_entropy_with_logits", "cross_entropy",
    "nll_loss", "mse_loss",
    "Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm", "LinearWarmupSchedule",
    "ArrayDataset", "DataLoader", "train_test_split_continuous",
    "check_gradients", "numeric_gradient", "parameter_gradient_error",
    "fused_kernels_enabled", "set_fused_kernels", "use_fused_kernels",
    "OpProfiler", "OpStats", "active_profiler", "profiled_op",
]
