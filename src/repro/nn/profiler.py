"""Op-level autograd profiler for the :mod:`repro.nn` training path.

Every autograd op (tensor primitives, the fused kernels, the fused loss
nodes) is wrapped in :func:`profiled_op` at definition time.  The wrapper
is a single global-load-and-``None``-check when no profiler is active —
no timing, no allocation — so instrumentation costs nothing in
production.  While an :class:`OpProfiler` is installed (``with
OpProfiler() as prof: ...``) each op records:

* **forward wall time**, split into *total* and *self* time (time spent
  in nested ops — e.g. ``mean`` calling ``sum`` and ``mul`` — is
  attributed to the child and subtracted from the parent),
* **backward wall time**, captured by wrapping the op's ``_backward``
  closure so BPTT cost lands on the op that created the node,
* **call counts** and **allocated output bytes**.

Results integrate with :mod:`repro.obs` via :meth:`OpProfiler.publish`
(counters/gauges under ``nn.profile.*``, exported by ``--metrics-out``)
and render as a ranked hot-op table via :meth:`OpProfiler.table` — the
output of the ``repro profile`` CLI subcommand.
"""

from __future__ import annotations

import functools
import time
from typing import Callable

__all__ = ["OpStats", "OpProfiler", "profiled_op", "active_profiler"]

# The currently installed profiler (None = instrumentation disabled).
_ACTIVE: "OpProfiler | None" = None


def active_profiler() -> "OpProfiler | None":
    """The profiler currently recording ops, or None."""
    return _ACTIVE


class OpStats:
    """Accumulated statistics for one op name."""

    __slots__ = ("name", "calls", "forward_seconds", "forward_self_seconds",
                 "backward_calls", "backward_seconds", "output_bytes")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.forward_seconds = 0.0
        self.forward_self_seconds = 0.0
        self.backward_calls = 0
        self.backward_seconds = 0.0
        self.output_bytes = 0

    @property
    def hot_seconds(self) -> float:
        """Ranking key: exclusive forward time plus backward time."""
        return self.forward_self_seconds + self.backward_seconds

    def as_dict(self) -> dict:
        """Plain-data view (JSON-able)."""
        return {
            "op": self.name,
            "calls": self.calls,
            "forward_seconds": self.forward_seconds,
            "forward_self_seconds": self.forward_self_seconds,
            "backward_calls": self.backward_calls,
            "backward_seconds": self.backward_seconds,
            "output_bytes": self.output_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpStats({self.name}: n={self.calls}, fwd={self.forward_seconds:.6f}s)"


def _op_name(fn: Callable) -> str:
    """``__add__`` -> ``add``; plain names pass through."""
    return fn.__name__.strip("_")


def profiled_op(fn: Callable) -> Callable:
    """Wrap an autograd op so an active :class:`OpProfiler` records it.

    With no profiler installed the wrapper short-circuits to the raw op
    after one global read, so the disabled cost is effectively zero.
    """
    name = _op_name(fn)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        profiler = _ACTIVE
        if profiler is None:
            return fn(*args, **kwargs)
        return profiler._run(name, fn, args, kwargs)

    wrapper.__profiled_op__ = name
    return wrapper


class OpProfiler:
    """Records per-op forward/backward wall time, calls and bytes.

    Use as a context manager around the code to profile::

        profiler = OpProfiler()
        with profiler:
            trainer.fit(data)
        print(profiler.table())

    ``clock`` is injectable for deterministic tests (defaults to
    ``time.perf_counter``).  Only one profiler is active at a time;
    nesting restores the previous one on exit.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or time.perf_counter
        self.stats: dict[str, OpStats] = {}
        # Stack of child-time accumulators for self-time attribution.
        self._stack: list[float] = []
        self._previous: OpProfiler | None = None

    # -- activation ------------------------------------------------------
    def __enter__(self) -> "OpProfiler":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None
        return False

    # -- recording -------------------------------------------------------
    def _stat(self, name: str) -> OpStats:
        stat = self.stats.get(name)
        if stat is None:
            stat = OpStats(name)
            self.stats[name] = stat
        return stat

    def _run(self, name: str, fn: Callable, args: tuple, kwargs: dict):
        clock = self.clock
        self._stack.append(0.0)
        started = clock()
        out = fn(*args, **kwargs)
        elapsed = clock() - started
        child_time = self._stack.pop()
        if self._stack:
            self._stack[-1] += elapsed
        stat = self._stat(name)
        stat.calls += 1
        stat.forward_seconds += elapsed
        stat.forward_self_seconds += elapsed - child_time
        for result in (out if isinstance(out, tuple) else (out,)):
            data = getattr(result, "data", None)
            if data is not None and hasattr(data, "nbytes"):
                stat.output_bytes += int(data.nbytes)
            backward = getattr(result, "_backward", None)
            if backward is not None:
                result._backward = self._timed_backward(stat, backward)
        return out

    def _timed_backward(self, stat: OpStats, inner: Callable) -> Callable:
        clock = self.clock

        def timed(grad):
            started = clock()
            inner(grad)
            stat.backward_calls += 1
            stat.backward_seconds += clock() - started

        return timed

    # -- reporting -------------------------------------------------------
    def ranked(self) -> list[OpStats]:
        """Stats sorted hottest first (self forward + backward time)."""
        return sorted(self.stats.values(),
                      key=lambda s: (-s.hot_seconds, s.name))

    def table(self, limit: int | None = None) -> str:
        """Ranked hot-op table as a fixed-width string."""
        rows = self.ranked()
        if limit is not None:
            rows = rows[:limit]
        header = (f"{'op':<18} {'calls':>7} {'fwd total':>10} {'fwd self':>10} "
                  f"{'bwd calls':>9} {'bwd total':>10} {'out MB':>8}")
        lines = [header, "-" * len(header)]
        for stat in rows:
            lines.append(
                f"{stat.name:<18} {stat.calls:>7} {stat.forward_seconds:>10.4f} "
                f"{stat.forward_self_seconds:>10.4f} {stat.backward_calls:>9} "
                f"{stat.backward_seconds:>10.4f} {stat.output_bytes / 1e6:>8.2f}"
            )
        total_fwd = sum(s.forward_seconds - (s.forward_seconds - s.forward_self_seconds)
                        for s in self.stats.values())
        total_bwd = sum(s.backward_seconds for s in self.stats.values())
        total_calls = sum(s.calls for s in self.stats.values())
        lines.append("-" * len(header))
        lines.append(
            f"{'total (self)':<18} {total_calls:>7} {'':>10} {total_fwd:>10.4f} "
            f"{'':>9} {total_bwd:>10.4f} "
            f"{sum(s.output_bytes for s in self.stats.values()) / 1e6:>8.2f}"
        )
        return "\n".join(lines)

    def as_rows(self) -> list[dict]:
        """Ranked stats as plain dicts (JSON-able)."""
        return [stat.as_dict() for stat in self.ranked()]

    def publish(self, registry) -> None:
        """Write accumulated stats into a :mod:`repro.obs` registry.

        Emits ``nn.profile.<op>.calls`` / ``.backward_calls`` /
        ``.output_bytes`` counters and ``.forward_seconds`` /
        ``.forward_self_seconds`` / ``.backward_seconds`` gauges so a
        ``--metrics-out`` JSONL export carries the full profile.
        """
        for stat in self.ranked():
            prefix = f"nn.profile.{stat.name}"
            registry.counter(f"{prefix}.calls").inc(stat.calls)
            registry.counter(f"{prefix}.backward_calls").inc(stat.backward_calls)
            registry.counter(f"{prefix}.output_bytes").inc(stat.output_bytes)
            registry.gauge(f"{prefix}.forward_seconds").set(stat.forward_seconds)
            registry.gauge(f"{prefix}.forward_self_seconds").set(stat.forward_self_seconds)
            registry.gauge(f"{prefix}.backward_seconds").set(stat.backward_seconds)
