"""Loss functions: binary/categorical cross-entropy and MSE.

These implement Eq. (1), (2) and (4) of the paper: categorical
cross-entropy for the system classifier, binary cross-entropy for the
anomaly classifier and the DAAN domain classifier.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .tensor import Tensor

__all__ = [
    "binary_cross_entropy_with_logits",
    "binary_cross_entropy",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
]

_EPS = 1e-7


def binary_cross_entropy_with_logits(logits: Tensor, targets, pos_weight: float = 1.0) -> Tensor:
    """Numerically stable BCE on raw logits.

    ``pos_weight`` scales the positive-class term, the usual remedy for the
    heavy normal/anomaly imbalance in log datasets (Table III anomaly
    ratios run from 0.17 % to 10.7 %).
    """
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # The fused node treats targets as constant; fall back to the seed
    # composition when a caller differentiates through them.
    if kernels.fused_kernels_enabled() and not targets.requires_grad:
        return kernels.bce_with_logits(logits, targets.data, pos_weight)
    # log sigmoid(z) = -softplus(-z); log(1 - sigmoid(z)) = -softplus(z),
    # with softplus(x) = max(x, 0) + log(1 + exp(-|x|)).
    abs_logits = logits.abs()
    log_term = ((-abs_logits).exp() + 1.0).log()
    softplus_neg = (-logits).relu() + log_term   # softplus(-z)
    softplus_pos = logits.relu() + log_term      # softplus(z)
    per_sample = targets * softplus_neg * pos_weight + (1.0 - targets) * softplus_pos
    return per_sample.mean()


def binary_cross_entropy(probabilities: Tensor, targets) -> Tensor:
    """BCE on probabilities already in (0, 1); clipped for stability."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    p = probabilities.clip(_EPS, 1.0 - _EPS)
    per_sample = -(targets * p.log() + (1.0 - targets) * (1.0 - p).log())
    return per_sample.mean()


def cross_entropy(logits: Tensor, class_ids: np.ndarray) -> Tensor:
    """Categorical cross-entropy on raw logits with integer class targets."""
    class_ids = np.asarray(class_ids, dtype=np.int64)
    if kernels.fused_kernels_enabled():
        return kernels.cross_entropy(logits, class_ids)
    log_probs = logits.log_softmax(axis=-1)
    rows = np.arange(len(class_ids))
    picked = log_probs[rows, class_ids]
    return -picked.mean()


def nll_loss(log_probs: Tensor, class_ids: np.ndarray) -> Tensor:
    """Negative log-likelihood given log-probabilities."""
    class_ids = np.asarray(class_ids, dtype=np.int64)
    rows = np.arange(len(class_ids))
    return -log_probs[rows, class_ids].mean()


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error between predictions and targets."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = predictions - targets
    return (diff * diff).mean()
