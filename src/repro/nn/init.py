"""Weight initialization schemes (Xavier/Glorot, Kaiming/He, orthogonal)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "orthogonal", "uniform", "zeros_"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (fan-in scaled)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for recurrent weight matrices)."""
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape).astype(np.float32)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform initialization in [-bound, bound]."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros_(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization."""
    return np.zeros(shape, dtype=np.float32)
