"""Exporters: JSONL event dump and a markdown summary.

The JSONL format is one JSON object per line with a ``kind`` field
(``counter`` / ``gauge`` / ``histogram`` / ``span``), so files are
greppable, appendable and stream-parseable.  ``read_jsonl`` +
``summarize_events`` round-trip a dump back into the human-readable
table the ``repro stats`` subcommand prints.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "registry_events", "write_jsonl", "read_jsonl",
    "summarize_events", "format_markdown",
]


def _span_events(span, depth: int = 0) -> list[dict]:
    events = [{
        "kind": "span",
        "name": span.name,
        "start": round(span.start, 9),
        "duration": round(span.duration, 9),
        "depth": depth,
        "parent": span.parent_name,
        "attributes": span.attributes,
    }]
    for child in span.children:
        events.extend(_span_events(child, depth + 1))
    return events


def registry_events(registry: MetricsRegistry) -> list[dict]:
    """Flatten a registry (metrics + finished spans) into JSON-able events."""
    events: list[dict] = []
    for name, metric in sorted(registry.metrics().items()):
        if isinstance(metric, Counter):
            events.append({"kind": "counter", "name": name, "value": metric.value})
        elif isinstance(metric, Gauge):
            events.append({"kind": "gauge", "name": name, "value": metric.value})
        elif isinstance(metric, Histogram):
            events.append({
                "kind": "histogram",
                "name": name,
                "count": metric.count,
                "sum": metric.sum,
                "min": metric.min if metric.count else 0.0,
                "max": metric.max if metric.count else 0.0,
                "boundaries": list(metric.boundaries),
                "bucket_counts": list(metric.bucket_counts),
            })
    for root in registry.tracer.roots:
        events.extend(_span_events(root))
    return events


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> int:
    """Dump the registry to ``path`` as JSONL; returns the event count."""
    events = registry_events(registry)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def read_jsonl(path: str | Path) -> list[dict]:
    """Load an event dump written by :func:`write_jsonl`."""
    events: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSONL") from exc
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(f"{path}:{line_number}: not a metrics event")
            events.append(event)
    return events


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.6g}"


def summarize_events(events: list[dict]) -> str:
    """Markdown summary of an event list (counters, gauges, histograms, spans)."""
    counters = [e for e in events if e["kind"] == "counter"]
    gauges = [e for e in events if e["kind"] == "gauge"]
    histograms = [e for e in events if e["kind"] == "histogram"]
    spans = [e for e in events if e["kind"] == "span"]

    sections: list[str] = []
    if counters or gauges:
        lines = ["| metric | kind | value |", "|---|---|---|"]
        for event in counters:
            lines.append(f"| {event['name']} | counter | {_fmt(event['value'])} |")
        for event in gauges:
            lines.append(f"| {event['name']} | gauge | {_fmt(event['value'])} |")
        sections.append("## Counters & gauges\n\n" + "\n".join(lines))

    if histograms:
        lines = ["| histogram | count | mean | min | max | total |", "|---|---|---|---|---|---|"]
        for event in histograms:
            count = event["count"]
            mean = event["sum"] / count if count else 0.0
            lines.append(
                f"| {event['name']} | {count} | {mean:.6g} | "
                f"{event['min']:.6g} | {event['max']:.6g} | {event['sum']:.6g} |"
            )
        sections.append("## Histograms\n\n" + "\n".join(lines))

    if spans:
        lines = ["| span | duration (s) | attributes |", "|---|---|---|"]
        for event in spans:
            indent = "&nbsp;&nbsp;" * event.get("depth", 0)
            attributes = ", ".join(
                f"{k}={v}" for k, v in sorted(event.get("attributes", {}).items())
            ) or "—"
            lines.append(
                f"| {indent}{event['name']} | {event['duration']:.6g} | {attributes} |"
            )
        sections.append("## Spans\n\n" + "\n".join(lines))

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def format_markdown(registry: MetricsRegistry) -> str:
    """Markdown summary of a live registry."""
    return summarize_events(registry_events(registry))
