"""Process-local metric primitives: counters, gauges, histograms.

Design rules (kept deliberately strict so tests stay deterministic):

* No metric reads the clock on its own.  ``Counter.inc`` /
  ``Gauge.set`` / ``Histogram.observe`` are pure arithmetic; wall-clock
  only enters through an *explicitly started* timer
  (:meth:`Histogram.time`) or a tracer span.
* Histograms use **fixed bucket boundaries** chosen at creation, so two
  runs over the same values produce bit-identical state.
* A registry is process-local and cheap: one dict lookup per metric
  handle; hot paths grab handles once and keep them.
"""

from __future__ import annotations

import bisect
import time
from typing import Callable, Sequence

from .tracing import Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS",
]

# General-purpose magnitude buckets (seconds when used with timers).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
# Finer low end for per-window online latency (§VI reports ms-scale).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot inc by {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-value metric (e.g. current loss, live template count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class _HistogramTimer:
    """Context manager that times a block into a histogram.

    This is the only place (besides spans) where the clock is read, and
    only because the caller explicitly started a timer.
    """

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: "Histogram", clock: Callable[[], float]):
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(self._clock() - self._start)
        return False


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``boundaries`` are the inclusive upper edges of the first
    ``len(boundaries)`` buckets; one overflow bucket catches the rest.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "sum",
                 "min", "max", "_clock")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS,
                 clock: Callable[[], float] | None = None):
        ordered = tuple(float(b) for b in boundaries)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name}: boundaries must be sorted and distinct")
        self.name = name
        self.boundaries = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._clock = clock or time.perf_counter

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def time(self) -> _HistogramTimer:
        """Explicitly start a timer whose duration is observed on exit."""
        return _HistogramTimer(self, self._clock)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return self.max
        return self.max  # pragma: no cover - cumulative always reaches count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}: n={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """Process-local registry of named metrics plus a tracer.

    One registry is typically installed globally via
    :func:`repro.obs.set_registry` / :func:`repro.obs.use_registry`;
    instrumented components capture their metric handles when they are
    constructed.  ``clock`` is injectable so tests can drive timers and
    spans deterministically.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or time.perf_counter
        self.tracer = Tracer(clock=self.clock)
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- handle accessors ------------------------------------------------
    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  boundaries: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(
            name, Histogram, lambda: Histogram(name, boundaries, clock=self.clock)
        )

    # -- introspection ---------------------------------------------------
    def metrics(self) -> dict[str, Counter | Gauge | Histogram]:
        """Name -> metric mapping (live objects, not copies)."""
        return dict(self._metrics)

    def find_spans(self, name: str):
        """All finished spans with this name, in completion order."""
        return self.tracer.find(name)

    def snapshot(self) -> dict[str, float | dict]:
        """Plain-data view of every metric (for quick asserts/printing)."""
        out: dict[str, float | dict] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
            else:
                out[name] = {
                    "count": metric.count, "sum": metric.sum,
                    "mean": metric.mean,
                }
        return out
