"""``repro.obs`` — metrics and tracing for the LogSynergy pipelines.

The paper's §VI deployment study is all about hit rates, latency and
throughput; this package gives every hot path (trainer, offline ``fit``
pipeline, LLM cache, Drain, the online service) one shared vocabulary
for reporting them:

* :class:`MetricsRegistry` — process-local counters / gauges /
  fixed-bucket histograms.  Deterministic by construction: nothing reads
  a clock unless a timer or span is explicitly started.
* :class:`Tracer` / :func:`trace` — nested spans with durations and
  attributes (``with trace("fit.train"): ...``).
* :func:`get_registry` / :func:`use_registry` — the process-local
  singleton with scoped override for tests.  The default is a no-op
  registry whose handles cost one attribute call.
* :func:`write_jsonl` / :func:`read_jsonl` / :func:`format_markdown` —
  JSONL export and a markdown summary (the ``repro stats`` subcommand).
"""

from .metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_BUCKETS, LATENCY_BUCKETS,
)
from .noop import NULL_REGISTRY, NullRegistry
from .runtime import disable, enable, get_registry, set_registry, trace, use_registry
from .tracing import Span, Tracer
from .export import (
    format_markdown, read_jsonl, registry_events, summarize_events, write_jsonl,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "LATENCY_BUCKETS",
    "NullRegistry", "NULL_REGISTRY",
    "Span", "Tracer", "trace",
    "get_registry", "set_registry", "use_registry", "enable", "disable",
    "registry_events", "write_jsonl", "read_jsonl",
    "summarize_events", "format_markdown",
]
