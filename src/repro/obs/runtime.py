"""The process-local active registry and the ``trace`` helper.

``get_registry()`` returns the currently installed registry — the no-op
singleton unless observability was enabled.  Components capture their
metric handles at construction time, so enable observability *before*
building the objects you want instrumented:

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as registry:
        model = LogSynergy(config)
        model.fit(sources, "thunderbird", target_train)
    obs.write_jsonl(registry, "metrics.jsonl")

``use_registry`` restores the previous registry on exit, which is what
keeps tests isolated from each other.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from .metrics import MetricsRegistry
from .noop import NULL_REGISTRY, NullRegistry

__all__ = ["get_registry", "set_registry", "use_registry", "enable", "disable", "trace"]

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The currently installed registry (no-op by default)."""
    return _active


def set_registry(registry: MetricsRegistry | NullRegistry):
    """Install ``registry`` globally; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry) -> Iterator:
    """Scoped override: install ``registry``, restore the previous on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable(clock: Callable[[], float] | None = None) -> MetricsRegistry:
    """Create and install a live registry; returns it."""
    registry = MetricsRegistry(clock=clock)
    set_registry(registry)
    return registry


def disable() -> None:
    """Reinstall the no-op registry."""
    set_registry(NULL_REGISTRY)


def trace(name: str, **attributes):
    """Open a span on the active registry's tracer (no-op when disabled)."""
    return _active.tracer.span(name, **attributes)
