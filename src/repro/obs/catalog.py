"""The documented metric catalog: every name the stack may emit.

``repro.analysis``'s ``flow/registry-drift`` pass cross-checks this
catalog against the metric names actually passed to
``registry.counter(...)`` / ``gauge(...)`` / ``histogram(...)`` across
``src/`` — in both directions.  Adding an emission without documenting
it here fails lint, and so does documenting a metric nothing emits.

Two sets, matching the two emission styles in the codebase:

* :data:`METRIC_NAMES` — exact string literals.
* :data:`METRIC_TEMPLATES` — skeletons of f-string names, with every
  interpolated segment collapsed to ``*`` (``f"{prefix}.windows_seen"``
  → ``"*.windows_seen"``).  These cover the per-shard/per-module
  namespaced metrics where the prefix is chosen at runtime.

Keep both sets sorted; the lint pass reports drift at the exact line of
the offending entry or emission site.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES", "METRIC_TEMPLATES"]

METRIC_NAMES = frozenset({
    # repro.analysis — lint/audit self-metrics
    "analysis.audit.errors",
    "analysis.audit.findings",
    "analysis.audit.models",
    "analysis.lint.files",
    "analysis.lint.violations",
    # repro.deploy — online service and replay buffer
    "deploy.buffer_dropped",
    "deploy.buffer_rejected",
    "service.anomalies_raised",
    "service.library_hits",
    "service.model_invocations",
    "service.window_seconds",
    "service.windows_seen",
    # repro.detectors — ensemble combiner roll-ups
    "detectors.ensemble.anomalous",
    "detectors.ensemble.member_errors",
    "detectors.ensemble.stacker_fits",
    "detectors.ensemble.windows",
    # repro.parsing — Drain template miner
    "drain.match_depth",
    "drain.messages_parsed",
    "drain.templates_created",
    # repro.embedding — encoder and co-occurrence vectors
    "embedding.encoder.batch_dedup_hits",
    "embedding.encoder.oov_evictions",
    "embedding.wordvectors.cache_hits",
    "embedding.wordvectors.cache_misses",
    # repro.llm — response cache and provider middleware
    "llm.cache.entries",
    "llm.cache.hits",
    "llm.cache.invalidated",
    "llm.cache.invalidations",
    "llm.cache.misses",
    "llm.cache.quarantined",
    "llm.cache.regenerated_live",
    "llm.provider.breaker.closed",
    "llm.provider.breaker.opened",
    "llm.provider.breaker.probes",
    "llm.provider.coalesce.leaders",
    "llm.provider.coalesced",
    "llm.provider.degraded",
    "llm.provider.hedged",
    "llm.provider.memcache.evictions",
    "llm.provider.memcache.expired",
    "llm.provider.memcache.hits",
    "llm.provider.memcache.misses",
    "llm.provider.retries",
    "llm.provider.throttle_wait_seconds",
    "llm.provider.throttled",
    # repro.core.onboard — shadow-gated live onboarding
    "onboard.promoted",
    "onboard.rejected",
    "onboard.shadow_f1",
    # repro.testing — fault plans and fuzz harness
    "testing.faults.fired",
    "testing.fuzz.episodes",
    "testing.fuzz.invariants_checked",
    "testing.fuzz.violations",
    # repro.core — trainer
    "trainer.batch_seconds",
    "trainer.batches",
    # repro.core.checkpoint — durable checkpoint store
    "trainer.checkpoint.bytes",
    "trainer.checkpoint.fallbacks",
    "trainer.checkpoint.quarantined",
    "trainer.checkpoint.restored",
    "trainer.checkpoint.saved",
    "trainer.epochs",
    "trainer.estimator_step_seconds",
    "trainer.main_step_seconds",
    "trainer.nonfinite_batches",
})

METRIC_TEMPLATES = frozenset({
    # repro.detectors.ensemble — per-member counters, keyed by member name
    "detectors.*.anomalous",
    "detectors.*.errors",
    "detectors.*.warmups",
    "detectors.*.windows",
    # repro.runtime.shard — per-shard service metrics, prefixed by shard id
    "*.anomalies_raised*",
    "*.batch_seconds*",
    "*.batch_size*",
    "*.batches*",
    "*.degraded_windows*",
    "*.library_hits*",
    "*.model_invocations*",
    "*.window_seconds*",
    "*.windows_seen*",
    # repro.runtime.engine — per-runtime queue/drop accounting
    "*.queue_depth.shard*",
    "*.records_dropped",
    "*.records_rejected",
    # repro.runtime.engine — live weight promotion
    "*.weight_swaps",
    # repro.runtime.procexec — worker-process lifecycle accounting
    "*.proc.broadcast_bytes",
    "*.proc.deaths",
    "*.proc.live",
    "*.proc.rebroadcasts",
    "*.proc.refed_records",
    "*.proc.restarts",
    "*.proc.spawn_failures",
    "*.proc.spawned",
    # repro.runtime.supervisor — per-supervisor worker health
    "*.unhealthy_transitions*",
    "*.worker_failures*",
    "*.worker_recoveries*",
    "*.worker_retries*",
    "*.worker_timeouts*",
    # repro.nn.profiler — per-module autograd op profiles
    "*.backward_calls",
    "*.backward_seconds",
    "*.calls",
    "*.forward_seconds",
    "*.forward_self_seconds",
    "*.output_bytes",
    # repro.testing.plan — per-fault-point fired counters
    "testing.faults.fired.*",
    # repro.core.trainer — per-head loss gauges
    "trainer.loss.*",
})
