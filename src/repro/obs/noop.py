"""No-op observability: the default when nothing installed a registry.

Every handle is a shared singleton whose methods do nothing and touch no
clock, so instrumented hot paths pay only an attribute call when
observability is off.
"""

from __future__ import annotations

__all__ = ["NullCounter", "NullGauge", "NullHistogram", "NullTracer",
           "NullRegistry", "NULL_REGISTRY"]


class NullCounter:
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullHistogram:
    __slots__ = ()
    name = "null"
    boundaries: tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    @property
    def bucket_counts(self) -> list[int]:
        return []

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        # Never reads the clock: disabled observability costs nothing.
        return _NULL_TIMER

    def percentile(self, q: float) -> float:
        return 0.0


class _NullSpan:
    __slots__ = ()
    name = "null"
    attributes: dict = {}
    children: list = []
    start = 0.0
    duration = 0.0
    parent_name = None

    def set(self, key: str, value) -> None:
        pass

    def walk(self):
        yield self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    __slots__ = ()
    roots: list = []

    def span(self, name: str, **attributes) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def find(self, name: str) -> list:
        return []

    def span_names(self) -> list[str]:
        return []


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()
_NULL_TRACER = NullTracer()


class NullRegistry:
    """Registry façade that hands out shared no-op handles."""

    __slots__ = ()
    enabled = False
    tracer = _NULL_TRACER

    @staticmethod
    def clock() -> float:
        return 0.0

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, boundaries=()) -> NullHistogram:
        return _NULL_HISTOGRAM

    def metrics(self) -> dict:
        return {}

    def find_spans(self, name: str) -> list:
        return []

    def snapshot(self) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
