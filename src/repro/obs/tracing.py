"""Span-based tracing: ``with trace("lei.interpret"): ...``.

A :class:`Tracer` keeps a stack of open spans; closing a span records
its duration and attaches it to its parent (or the root list).  Spans
carry attributes set either at open time (keyword arguments) or during
the block via :meth:`Span.set`.  Durations come from the tracer's
injectable clock, so tests can make them deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, attributed region of execution."""

    __slots__ = ("name", "attributes", "children", "start", "duration", "_parent")

    def __init__(self, name: str, attributes: dict | None = None,
                 parent: "Span | None" = None):
        self.name = name
        self.attributes: dict = dict(attributes or {})
        self.children: list[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self._parent = parent

    def set(self, key: str, value) -> None:
        """Attach one attribute to the open (or finished) span."""
        self.attributes[key] = value

    @property
    def parent_name(self) -> str | None:
        return self._parent.name if self._parent is not None else None

    def walk(self):
        """Yield this span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name}, {self.duration:.6f}s, {self.attributes})"


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records nested spans; the trace of a run is its list of root spans."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or time.perf_counter
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = self.clock()

    def span(self, name: str, **attributes) -> _SpanContext:
        """Context manager opening a span nested under the current one."""
        parent = self._stack[-1] if self._stack else None
        return _SpanContext(self, Span(name, attributes, parent=parent))

    # -- lifecycle (driven by _SpanContext) ------------------------------
    def _open(self, span: Span) -> None:
        span.start = self.clock() - self._epoch
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.duration = (self.clock() - self._epoch) - span.start
        # Tolerate out-of-order exits (generators abandoned mid-span).
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        if span._parent is not None:
            span._parent.children.append(span)
        else:
            self.roots.append(span)

    # -- queries ---------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All finished spans with this name, depth-first over all roots."""
        return [s for root in self.roots for s in root.walk() if s.name == name]

    def span_names(self) -> list[str]:
        """Names of every finished span, depth-first over all roots."""
        return [s.name for root in self.roots for s in root.walk()]
