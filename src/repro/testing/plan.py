"""Deterministic fault schedules: what fires, where, and when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — each one
names a registered fault point, a fault kind, and a schedule.  Schedules
are either *positional* (fire on call ordinals ``start .. start+count-1``
at that point) or *probabilistic* (an independent seeded draw per call),
so a plan plus a seed fully determines every fault of a run: the same
episode replays byte-identically, and a failing fuzz episode is
reproducible from its printed seed alone.

:class:`FaultInjector` arms a plan over the global hooks in
:mod:`repro.testing.faultpoints` (context-manager scoped, nestable) and
counts every fired fault through ``repro.obs`` as
``testing.faults.fired`` plus a per-point counter, so fault activity is
visible in any ``--metrics-out`` export alongside the recovery counters
it is supposed to exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import get_registry
from . import faultpoints
from .faultpoints import DROPPED, FAULT_POINTS

__all__ = ["FAULT_KINDS", "InjectedFault", "FaultSpec", "FaultPlan", "FaultInjector"]

FAULT_KINDS = ("raise", "timeout", "corrupt", "drop")


class InjectedFault(RuntimeError):
    """The exception a ``raise``-kind fault throws from a fault point."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault at one registered fault point.

    Parameters
    ----------
    point:
        A name registered in :data:`repro.testing.faultpoints.FAULT_POINTS`.
    kind:
        ``raise`` | ``timeout`` | ``corrupt`` | ``drop``.
    start, count:
        Positional schedule: fire on call ordinals ``start`` through
        ``start + count - 1`` (0-based, counted per point).
    probability:
        When > 0 the positional schedule is ignored and each call at the
        point draws independently from the plan's seeded RNG.
    seconds:
        Clock skew applied by ``timeout`` faults (the injector clock
        jumps forward, so an attempt measured across the fault overruns
        its budget without any real sleeping).
    mutate:
        Required for ``corrupt`` faults: maps the value passing through
        the fault point to its corrupted replacement.
    """

    point: str
    kind: str
    start: int = 0
    count: int = 1
    probability: float = 0.0
    seconds: float = 0.0
    mutate: Callable | None = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; registered: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.start < 0 or self.count <= 0:
            raise ValueError(f"invalid schedule start={self.start} count={self.count}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.kind == "corrupt" and self.mutate is None:
            raise ValueError("corrupt faults require a mutate callable")
        if self.kind == "timeout" and self.seconds <= 0.0:
            raise ValueError("timeout faults require seconds > 0")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the seed for probabilistic draws."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def points(self) -> set[str]:
        """Every fault point this plan can fire at."""
        return {spec.point for spec in self.specs}


@dataclass
class _PointState:
    """Per-point bookkeeping while an injector is armed."""

    specs: list[FaultSpec] = field(default_factory=list)
    calls: int = 0


class FaultInjector:
    """Arms a :class:`FaultPlan` over the global fault-point hooks.

    Use as a context manager::

        with FaultInjector(plan) as injector:
            ...  # faults fire per the plan's schedule
        assert injector.total_fired == expected

    ``clock`` exposes the injector's skewable clock (``base_clock`` plus
    the accumulated ``timeout`` offsets); wire it into the component
    whose timeout accounting the plan targets (e.g.
    ``supervisor_options={"clock": injector.clock}``).
    """

    def __init__(self, plan: FaultPlan, *,
                 base_clock: Callable[[], float] | None = None,
                 registry=None):
        registry = registry if registry is not None else get_registry()
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._points: dict[str, _PointState] = {}
        for spec in plan.specs:
            self._points.setdefault(spec.point, _PointState()).specs.append(spec)
        self._base_clock = base_clock if base_clock is not None else registry.clock
        self._offset = 0.0
        self.fired: dict[tuple[str, str], int] = {}
        self._armed = False
        self._previous = None
        self._total_counter = registry.counter("testing.faults.fired")
        self._point_counters = {
            point: registry.counter(f"testing.faults.fired.{point}")
            for point in self._points
        }

    # -- clock ----------------------------------------------------------
    def clock(self) -> float:
        """Base clock plus every ``timeout`` fault's accumulated skew."""
        return self._base_clock() + self._offset

    # -- arming ---------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        if self._armed:
            raise RuntimeError("injector already armed")
        self._previous = faultpoints._arm(self)
        self._armed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        faultpoints._restore(self._previous)
        self._previous = None
        self._armed = False
        return False

    # -- firing ---------------------------------------------------------
    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def fired_at(self, point: str) -> int:
        """Fired-fault count at one point (all kinds)."""
        return sum(count for (name, _kind), count in self.fired.items()
                   if name == point)

    def calls_at(self, point: str) -> int:
        """How many times the point was reached (fired or not)."""
        state = self._points.get(point)
        return state.calls if state is not None else 0

    def _record(self, spec: FaultSpec) -> None:
        key = (spec.point, spec.kind)
        self.fired[key] = self.fired.get(key, 0) + 1
        self._total_counter.inc()
        self._point_counters[spec.point].inc()

    def fire(self, name: str, value):
        """Apply the first due fault at ``name`` (called by ``fault_point``)."""
        state = self._points.get(name)
        if state is None:
            return value
        index = state.calls
        state.calls = index + 1
        for spec in state.specs:
            if spec.probability > 0.0:
                due = bool(self._rng.random() < spec.probability)
            else:
                due = spec.start <= index < spec.start + spec.count
            if not due:
                continue
            self._record(spec)
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault at {name} (call {index})"
                )
            if spec.kind == "timeout":
                self._offset += spec.seconds
                return value
            if spec.kind == "corrupt":
                return spec.mutate(value)
            return DROPPED  # drop
        return value
