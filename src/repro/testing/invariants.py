"""Metamorphic and differential invariant checks over fuzz episodes.

Each invariant states a property the system must keep under a specific
injected fault, checked *differentially* against a fault-free golden run
or against the fuzzer's planted ground truth:

* ``shard-invariance`` — a replay renders byte-identically for any shard
  count (the runtime's keystone determinism claim).
* ``transient-fault-equivalence`` — transient worker raises within the
  retry budget plus one timeout overrun leave the rendered verdicts
  byte-identical to the golden run (retries and late results must be
  invisible in output).
* ``degraded-flagged-not-remembered`` — with the model path down hard,
  every emitted verdict carries the ``degraded`` flag and nothing is
  written into the pattern libraries (the model must re-judge after
  recovery).
* ``process-kill-recovers`` — SIGKILLing a worker process mid-stream
  under the process executor leaves the rendered replay byte-identical
  to the fault-free synchronous run (journal refeed + window-id dedup
  make crash recovery exactly-once).
* ``cache-corruption-regenerates`` — a cache file truncated mid-byte is
  quarantined and regenerated to fault-free content, never a crash.
* ``hallucination-burst-bounded`` — format-breaking LLM output bursts
  are absorbed by the review/regeneration loop (§IV-E2).
* ``flaky-provider-within-retry-budget-is-byte-identical`` — a flaky
  LLM provider behind the middleware stack completes byte-identically
  to a fault-free run while errors stay within the retry budget, and a
  sustained outage degrades through the circuit breaker to the
  pattern-library fallback instead of raising.
* ``nan-loss-skipped`` — an injected NaN loss skips that optimizer step
  and leaves the training history finite.
* ``label-recovery-f1`` — the fuzzer's planted anomaly windows are
  recoverable by a catalog-based detector with F1 above a floor (the
  fuzz streams are learnable signal, not noise).
* ``day0-ensemble-f1-floor`` — on a day-0 stream (never-seen system,
  zero training data, learned model member degraded) the unsupervised
  detector portfolio alone clears an F1 floor.
* ``ensemble-not-worse-than-worst-member`` — on a volume-burst scenario
  stream the max-combined ensemble scores at least as well as its worst
  solo member (combining can dilute, never below the floor member).
* ``degraded-model-keeps-unsupervised-live`` — an ensemble whose model
  member has no pipeline still raises anomalies through the runtime,
  byte-identically at any shard count, while every model call is
  counted as a member error.
* ``onboard-crash-never-demotes`` — a crash mid-onboarding (the
  ``trainer.checkpoint.write`` fault killing the fine-tune's first
  checkpoint) leaves the serving weights and their scores
  byte-identical: promotion is all-or-nothing.

Checkers take a :class:`CheckContext`; ``context.broken`` names recovery
paths to *disable*, which is how the harness proves it can detect the
defects it exists for (see ``repro fuzz --break``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..detectors import DEFAULT_DETECTORS_SPEC, ensemble_from_spec
from ..evaluation.metrics import binary_metrics
from ..llm.cache import CachedLLM
from ..llm.factory import provider_from_spec
from ..llm.interpreter import EventInterpreter, review_interpretation
from ..llm.middleware import build_provider_stack, pattern_fallback
from ..llm.prompts import build_interpretation_prompt
from ..llm.providers import FlakyLLM, ProviderError
from ..llm.simulated import SimulatedLLM, normalize_tokens
from ..logs.events import EventKind, concepts_for_system
from ..obs import MetricsRegistry, use_registry
from ..runtime import InferenceRuntime, SyntheticWorker, message_pattern
from ..runtime.replay import render_reports
from .fuzzer import FuzzedStream
from .plan import FaultInjector, FaultPlan, FaultSpec

__all__ = [
    "BREAKABLE_RECOVERIES", "CheckContext", "InvariantResult",
    "CHECKERS", "SUITES", "suite_checkers", "ConceptMatcher",
    "truncate_mid_byte", "garble_completion", "nan_loss",
]

# Recovery paths the harness can disable to prove its own teeth.
BREAKABLE_RECOVERIES = ("retry", "quarantine", "review", "nan-guard", "breaker")


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant over one episode."""

    invariant: str
    ok: bool
    details: str = ""


@dataclass
class CheckContext:
    """Everything a checker needs for one episode."""

    stream: FuzzedStream
    seed: int
    workdir: Path
    broken: frozenset = frozenset()
    window: int = 10
    step: int = 5
    max_batch: int = 8
    f1_floor: float = 0.7
    # ``--llm`` spec the provider invariants drive through the middleware
    # stack; ``None`` uses their built-in flaky default.
    provider_spec: str | None = None
    # Runtime executor the replay invariants exercise ("sync" or
    # "process").  Checkers that arm in-process fault injectors pin
    # "sync" regardless: a forked worker inherits the armed injector
    # module-global, which would double-count fires.
    executor: str = "sync"


# -- default fault mutators -------------------------------------------------

def truncate_mid_byte(text: str) -> str:
    """Cut a serialized cache in half, mid-token (a torn disk write)."""
    return text[: max(1, len(text) // 2)]


def garble_completion(text: str) -> str:
    """Turn a completion into review-failing output (unexpanded wildcard)."""
    return f"{text} <*>"


def nan_loss(loss):
    """Poison a loss tensor (keeps the autograd graph attached)."""
    return loss * float("nan")


# -- checker registry -------------------------------------------------------

CHECKERS: dict[str, object] = {}
SUITES: dict[str, tuple[str, ...]] = {}


def _invariant(name: str, *suites: str):
    def decorate(fn):
        CHECKERS[name] = fn
        for suite in suites + ("all",):
            SUITES[suite] = SUITES.get(suite, ()) + (name,)
        return fn
    return decorate


def suite_checkers(suite: str) -> list[tuple[str, object]]:
    """(name, checker) pairs for a suite, in registration order."""
    if suite not in SUITES:
        raise KeyError(f"unknown invariant suite {suite!r}; "
                       f"available: {', '.join(sorted(SUITES))}")
    return [(name, CHECKERS[name]) for name in SUITES[suite]]


# -- runtime helpers --------------------------------------------------------

def _run_replay(context: CheckContext, *, shards: int,
                registry: MetricsRegistry | None = None,
                supervisor_options: dict | None = None,
                executor: str | None = None):
    """Deterministic replay of the episode; returns (rendered, reports,
    runtime).  ``executor`` defaults to the context's choice; pass
    ``"sync"`` explicitly from checkers that arm in-process injectors."""
    registry = registry if registry is not None else MetricsRegistry()
    executor = context.executor if executor is None else executor
    common = dict(
        pattern_fn=message_pattern,
        shards=shards, window=context.window, step=context.step,
        max_batch=context.max_batch, max_latency=None,
        backpressure="block", registry=registry,
        supervisor_options=supervisor_options,
    )
    if executor == "process":
        from ..runtime import ProcessWorkerSpec

        runtime = InferenceRuntime(
            None, executor="process",
            process_spec=ProcessWorkerSpec.synthetic(threshold=0.5), **common)
    else:
        runtime = InferenceRuntime(
            lambda index: SyntheticWorker(threshold=0.5), **common)
    try:
        for record in context.stream.records:
            runtime.submit(record)
        reports = runtime.drain()
    finally:
        if executor == "process":
            runtime.stop()
    return render_reports(reports), reports, runtime


# -- invariants -------------------------------------------------------------

@_invariant("shard-invariance", "replay")
def check_shard_invariance(context: CheckContext) -> InvariantResult:
    rendered = [_run_replay(context, shards=shards)[0] for shards in (1, 2, 3)]
    ok = rendered[0] == rendered[1] == rendered[2]
    if ok:
        details = f"{len(rendered[0])} report bytes identical at shards 1/2/3"
    else:
        sizes = "/".join(str(len(r)) for r in rendered)
        details = f"replay diverged across shard counts (bytes {sizes})"
    return InvariantResult("shard-invariance", ok, details)


@_invariant("transient-fault-equivalence", "replay")
def check_transient_fault_equivalence(context: CheckContext) -> InvariantResult:
    golden, _, _ = _run_replay(context, shards=2, executor="sync")
    plan = FaultPlan((
        FaultSpec("runtime.worker.score", "raise", start=2, count=2),
        FaultSpec("runtime.supervisor.attempt", "timeout", start=6, count=1,
                  seconds=30.0),
    ), seed=context.seed)
    registry = MetricsRegistry()
    injector = FaultInjector(plan, registry=registry)
    retries = 0 if "retry" in context.broken else 3
    options = {"max_retries": retries, "timeout": 5.0,
               "clock": injector.clock, "unhealthy_after": 1_000_000}
    with injector:
        faulted, _, _ = _run_replay(context, shards=2, registry=registry,
                                    supervisor_options=options,
                                    executor="sync")
    fired = injector.total_fired
    if fired < 2:
        return InvariantResult(
            "transient-fault-equivalence", False,
            f"vacuous: only {fired} faults fired (stream too short?)")
    ok = faulted == golden
    details = (f"{fired} injected faults absorbed; verdicts byte-identical "
               f"to golden run" if ok else
               f"faulted run diverged from golden after {fired} injected faults")
    return InvariantResult("transient-fault-equivalence", ok, details)


@_invariant("degraded-flagged-not-remembered", "replay")
def check_degraded_flagging(context: CheckContext) -> InvariantResult:
    plan = FaultPlan((
        FaultSpec("runtime.worker.score", "raise", start=0, count=1_000_000),
    ), seed=context.seed)
    registry = MetricsRegistry()
    options = {"max_retries": 1, "unhealthy_after": 1, "cooldown": 1e9}
    with FaultInjector(plan, registry=registry):
        _, reports, runtime = _run_replay(context, shards=2, registry=registry,
                                          supervisor_options=options,
                                          executor="sync")
    degraded = runtime.stats.degraded_windows
    if degraded == 0:
        return InvariantResult(
            "degraded-flagged-not-remembered", False,
            "vacuous: no window was resolved by the degraded path")
    unflagged = sum(1 for report in reports
                    if not report.metadata.get("degraded", False))
    remembered = sum(len(library) for shard in runtime.shards
                     for library in shard.libraries.values())
    ok = unflagged == 0 and remembered == 0
    details = (f"{degraded} degraded windows all flagged, 0 patterns remembered"
               if ok else
               f"{unflagged} degraded verdicts unflagged, "
               f"{remembered} degraded patterns written to libraries")
    return InvariantResult("degraded-flagged-not-remembered", ok, details)


@_invariant("process-kill-recovers", "replay", "process")
def check_process_kill_recovery(context: CheckContext) -> InvariantResult:
    """SIGKILLing a worker process mid-stream must be invisible in
    output: the supervisor respawns the shard on a fresh epoch, refeeds
    its journal, and window-id dedup keeps delivery exactly-once — the
    rendered replay stays byte-identical to the fault-free synchronous
    run, with no lost or duplicated windows.

    The death probe fires parent-side (`ProcessShardExecutor.submit`),
    so arming the injector here never races the worker processes.
    """
    golden, _, _ = _run_replay(context, shards=2, executor="sync")
    start = min(40, max(1, len(context.stream.records) // 2))
    plan = FaultPlan((
        FaultSpec("runtime.proc.death", "corrupt", start=start, count=1,
                  mutate=lambda _value: True),
    ), seed=context.seed)
    registry = MetricsRegistry()
    with FaultInjector(plan, registry=registry) as injector:
        faulted, _, _ = _run_replay(context, shards=2, registry=registry,
                                    executor="process")
    if injector.total_fired != 1:
        return InvariantResult(
            "process-kill-recovers", False,
            f"vacuous: death fault fired {injector.total_fired} times "
            f"(expected exactly 1)")
    prefix = "runtime"  # the engine's default metric prefix
    deaths = registry.counter(f"{prefix}.proc.deaths").value
    restarts = registry.counter(f"{prefix}.proc.restarts").value
    refed = registry.counter(f"{prefix}.proc.refed_records").value
    ok = (faulted == golden and deaths == 1 and restarts == 1 and refed > 0)
    # The refed count is timing-dependent (the journal keeps growing
    # until the parent notices the death), so the rendered message must
    # not include it — fuzz reports are byte-diffed across runs.
    details = ("1 worker SIGKILL absorbed: respawned once, journal "
               "refed, output byte-identical to sync"
               if ok else
               f"recovery incomplete: identical={faulted == golden} "
               f"deaths={deaths:g} restarts={restarts:g} refed={refed:g}")
    return InvariantResult("process-kill-recovers", ok, details)


@_invariant("cache-corruption-regenerates", "llm")
def check_cache_corruption(context: CheckContext) -> InvariantResult:
    path = context.workdir / f"llm-cache-{context.seed}.json"
    records = [r for r in context.stream.records if not r.is_anomalous][:6]
    prompts = [build_interpretation_prompt(r.system, r.message) for r in records]
    with CachedLLM(SimulatedLLM(), path, autosave=False) as warm:
        for prompt in prompts:
            warm.complete(prompt)
    baseline = json.loads(path.read_text(encoding="utf-8"))

    plan = FaultPlan((
        FaultSpec("llm.cache.load", "corrupt", start=0, count=1,
                  mutate=truncate_mid_byte),
    ), seed=context.seed)
    registry = MetricsRegistry()
    quarantine = "quarantine" not in context.broken
    with use_registry(registry):
        with FaultInjector(plan, registry=registry) as injector:
            try:
                reloaded = CachedLLM(SimulatedLLM(), path, quarantine=quarantine)
            except ValueError:
                return InvariantResult(
                    "cache-corruption-regenerates", False,
                    "loader crashed on a truncated cache instead of quarantining")
        for prompt in prompts:
            reloaded.complete(prompt)
    regenerated = json.loads(path.read_text(encoding="utf-8"))
    quarantined = list(path.parent.glob(path.name + ".corrupt-*"))
    counted = registry.counter("llm.cache.quarantined").value
    ok = (injector.total_fired == 1 and reloaded.misses == len(prompts)
          and regenerated == baseline and len(quarantined) == 1 and counted == 1)
    details = (f"truncated cache quarantined and {len(prompts)} entries "
               f"regenerated to fault-free content" if ok else
               f"recovery incomplete: fired={injector.total_fired} "
               f"misses={reloaded.misses}/{len(prompts)} "
               f"quarantined_files={len(quarantined)} counter={counted:g} "
               f"content_match={regenerated == baseline}")
    return InvariantResult("cache-corruption-regenerates", ok, details)


@_invariant("hallucination-burst-bounded", "llm")
def check_hallucination_burst(context: CheckContext) -> InvariantResult:
    dialect = "bgl"
    concepts = (concepts_for_system(dialect, EventKind.NORMAL)
                + concepts_for_system(dialect, EventKind.ANOMALOUS))
    representatives = [concept.phrases[dialect].replace("<*>", "7")
                       for concept in concepts[:10]]
    plan = FaultPlan((
        FaultSpec("llm.simulated.complete", "corrupt", start=0, count=2,
                  mutate=garble_completion),
        FaultSpec("llm.simulated.complete", "corrupt", start=6, count=2,
                  mutate=garble_completion),
    ), seed=context.seed)
    regenerations_budget = 0 if "review" in context.broken else 2
    interpreter = EventInterpreter(SimulatedLLM(),
                                   max_regenerations=regenerations_budget)
    failed = 0
    regenerated = 0
    with FaultInjector(plan) as injector:
        for representative in representatives:
            text, regens = interpreter.interpret_event(dialect, representative)
            regenerated += regens
            if review_interpretation(text):
                failed += 1
    fired = injector.total_fired
    if fired < 4:
        return InvariantResult(
            "hallucination-burst-bounded", False,
            f"vacuous: only {fired}/4 burst completions were corrupted")
    ok = failed == 0 and regenerated >= 2
    details = (f"2 bursts ({fired} bad completions) absorbed by "
               f"{regenerated} regenerations; 0 bad interpretations kept"
               if ok else
               f"{failed} bad interpretations survived review "
               f"({regenerated} regenerations, {fired} corrupted completions)")
    return InvariantResult("hallucination-burst-bounded", ok, details)


_INVARIANT_FLAKY = "flaky-provider-within-retry-budget-is-byte-identical"


@_invariant(_INVARIANT_FLAKY, "llm")
def check_flaky_provider(context: CheckContext) -> InvariantResult:
    """Two-phase check of the provider middleware stack.

    Phase 1: a flaky provider behind the full stack, with upstream
    errors inside the retry budget, must complete byte-identically to a
    fault-free run (FlakyLLM's error draws never consume the inner
    simulator's RNG, so golden output is well-defined).  Phase 2: a
    sustained outage (``error_rate=1.0``) must open the circuit breaker
    and degrade every completion to the pattern-library fallback — never
    escape as an exception.  ``--break breaker`` removes the breaker
    tier, letting phase 2's ProviderError through: the failure proves
    the invariant has teeth.
    """
    records = [r for r in context.stream.records if not r.is_anomalous][:20]
    prompts = [build_interpretation_prompt(r.system, r.message) for r in records]
    spec = context.provider_spec or "flaky:error_rate=0.35"

    # Phase 1: errors within the retry budget are invisible in output.
    # Budget 12 makes budget exhaustion astronomically unlikely at the
    # default error rate (0.35^13 per prompt) while keeping the
    # no-error vacuous case equally negligible over 20+ attempts.
    golden = [SimulatedLLM(seed=context.seed).complete(p) for p in prompts]
    flaky = provider_from_spec(spec, seed=context.seed)
    registry = MetricsRegistry()
    stack = build_provider_stack(flaky, max_retries=12, seed=context.seed,
                                 clock=lambda: 0.0, registry=registry)
    try:
        absorbed = [stack.complete(p) for p in prompts]
    except ProviderError as exc:
        return InvariantResult(
            _INVARIANT_FLAKY, False,
            f"retry budget exhausted; upstream error escaped the stack: {exc}")
    errors = getattr(flaky, "errors", 0)
    if errors == 0:
        return InvariantResult(
            _INVARIANT_FLAKY, False,
            f"vacuous: provider spec {spec!r} produced no upstream errors")
    if absorbed != golden:
        diverged = sum(1 for a, g in zip(absorbed, golden) if a != g)
        return InvariantResult(
            _INVARIANT_FLAKY, False,
            f"{diverged}/{len(prompts)} completions diverged from the "
            f"fault-free run ({errors} upstream errors)")

    # Phase 2: a sustained outage degrades through the breaker, never raises.
    outage = FlakyLLM(error_rate=1.0, seed=context.seed)
    registry2 = MetricsRegistry()
    use_breaker = "breaker" not in context.broken
    stack2 = build_provider_stack(outage, breaker=use_breaker,
                                  unhealthy_after=2, cooldown=1e9,
                                  max_retries=1, memory_cache=False,
                                  coalesce=False, seed=context.seed,
                                  clock=lambda: 0.0, registry=registry2)
    try:
        degraded = [stack2.complete(p) for p in prompts]
    except ProviderError as exc:
        return InvariantResult(
            _INVARIANT_FLAKY, False,
            f"sustained outage escaped the stack as {type(exc).__name__} "
            f"(circuit breaker disabled?): {exc}")
    expected = [pattern_fallback(p) for p in prompts]
    opened = registry2.counter("llm.provider.breaker.opened").value
    served = registry2.counter("llm.provider.degraded").value
    ok = degraded == expected and opened == 1 and served == len(prompts)
    details = (f"{errors} upstream errors absorbed byte-identically; outage "
               f"opened the breaker once and served {len(prompts)} fallbacks"
               if ok else
               f"outage handling wrong: opened={opened:g} degraded={served:g} "
               f"fallback_match={degraded == expected}")
    return InvariantResult(_INVARIANT_FLAKY, ok, details)


@_invariant("nan-loss-skipped", "trainer")
def check_nan_loss(context: CheckContext) -> InvariantResult:
    from ..config import LogSynergyConfig
    from ..core import LogSynergyModel, LogSynergyTrainer, TrainingBatch

    config = LogSynergyConfig(
        d_model=16, num_heads=2, num_layers=1, d_ff=32, feature_dim=8,
        embedding_dim=16, epochs=1, batch_size=16, window=4, seed=context.seed,
    )
    rng = np.random.default_rng(context.seed)
    count = 48
    data = TrainingBatch(
        sequences=rng.standard_normal(
            (count, config.window, config.embedding_dim)).astype(np.float32),
        anomaly_labels=(rng.random(count) < 0.2).astype(np.float32),
        system_labels=rng.integers(0, 2, size=count),
        domain_labels=rng.integers(0, 2, size=count),
    )
    plan = FaultPlan((
        FaultSpec("core.trainer.loss", "corrupt", start=1, count=1,
                  mutate=nan_loss),
    ), seed=context.seed)
    registry = MetricsRegistry()
    guard = "nan-guard" not in context.broken
    with use_registry(registry):
        model = LogSynergyModel(config, num_systems=2)
        trainer = LogSynergyTrainer(model, config, skip_nonfinite=guard)
        with FaultInjector(plan, registry=registry) as injector:
            history = trainer.fit(data)
    finite = all(np.isfinite(value) for value in history.total)
    skipped = registry.counter("trainer.nonfinite_batches").value
    ok = finite and injector.total_fired == 1 and (skipped == 1) == guard
    details = (f"1 NaN batch skipped; epoch losses finite" if ok else
               f"finite={finite} fired={injector.total_fired} "
               f"skipped_batches={skipped:g}")
    return InvariantResult("nan-loss-skipped", ok, details)


class ConceptMatcher:
    """Catalog-based line classifier for label-recovery scoring.

    A line matches an anomalous concept when its token overlap with any
    dialect rendering of that concept's skeleton clears ``threshold`` —
    the same skeleton matching the simulated LLM uses, so recovery
    degrades gracefully (not catastrophically) under parameter noise.
    """

    def __init__(self, threshold: float = 0.6):
        self.threshold = threshold
        self._skeletons: list[frozenset[str]] = []
        seen: set[frozenset[str]] = set()
        from ..logs.events import anomalous_concepts

        for concept in anomalous_concepts():
            for phrase in concept.phrases.values():
                skeleton = frozenset(normalize_tokens(phrase.replace("<*>", " ")))
                if skeleton and skeleton not in seen:
                    seen.add(skeleton)
                    self._skeletons.append(skeleton)

    def is_anomalous_line(self, message: str) -> bool:
        tokens = set(normalize_tokens(message))
        for skeleton in self._skeletons:
            if len(tokens & skeleton) / len(skeleton) >= self.threshold:
                return True
        return False


@_invariant("label-recovery-f1", "fuzzer")
def check_label_recovery(context: CheckContext) -> InvariantResult:
    matcher = ConceptMatcher()
    truth = context.stream.expected_window_labels(context.window, context.step)
    y_true: list[int] = []
    y_pred: list[int] = []
    for system, records in context.stream.by_system().items():
        messages = [record.message for record in records]
        for ordinal, start in enumerate(
                range(0, len(messages) - context.window + 1, context.step)):
            window = messages[start:start + context.window]
            y_true.append(int(truth[system][ordinal]))
            y_pred.append(int(any(matcher.is_anomalous_line(m) for m in window)))
    if not any(y_true):
        return InvariantResult("label-recovery-f1", False,
                               "vacuous: fuzzer planted no anomalous windows")
    f1 = binary_metrics(np.array(y_true), np.array(y_pred)).f1
    ok = f1 >= context.f1_floor
    details = f"window F1 {f1:.3f} vs floor {context.f1_floor:.2f} ({sum(y_true)} true windows)"
    return InvariantResult("label-recovery-f1", ok, details)


# Day-0 floor for the unsupervised portfolio (model member degraded).
# Empirically the default ensemble scores 0.71-1.00 over a wide seed
# sweep on the day-0 stream below; 0.6 leaves margin for unlucky seeds
# while still failing hard if any unsupervised member goes dark.
DAY0_F1_FLOOR = 0.6


def _day0_stream(context: CheckContext) -> FuzzedStream:
    """A zero-training-data episode: a never-catalogued system name
    speaking an existing dialect, dense enough bursts to score."""
    from .fuzzer import LogStreamFuzzer

    fuzzer = LogStreamFuzzer(
        systems=("day0",), dialects={"day0": "bgl"},
        lines_per_system=160, anomaly_bursts=4, burst_length=(3, 6),
        parameter_noise=0.1,
    )
    return fuzzer.generate(context.seed)


def _system_windows(records: list, window: int, step: int) -> list[list]:
    return [records[start:start + window]
            for start in range(0, len(records) - window + 1, step)]


def _ensemble_f1(stream: FuzzedStream, spec: str, *,
                 window: int, step: int):
    """Score a fresh ensemble built from ``spec`` over a fuzzed stream;
    returns ``(f1, ensemble)`` so checkers can read member counters."""
    ensemble = ensemble_from_spec(spec, registry=MetricsRegistry())
    truth = stream.expected_window_labels(window, step)
    y_true: list[int] = []
    y_pred: list[int] = []
    for system, records in stream.by_system().items():
        scores = ensemble.score_windows(
            system, _system_windows(records, window, step))
        for ordinal, score in enumerate(scores):
            y_true.append(int(truth[system][ordinal]))
            y_pred.append(int(score > ensemble.threshold))
    if not any(y_true):
        return float("nan"), ensemble
    return binary_metrics(np.array(y_true), np.array(y_pred)).f1, ensemble


@_invariant("day0-ensemble-f1-floor", "detectors")
def check_day0_ensemble_floor(context: CheckContext) -> InvariantResult:
    stream = _day0_stream(context)
    f1, ensemble = _ensemble_f1(stream, DEFAULT_DETECTORS_SPEC,
                                window=context.window, step=context.step)
    if np.isnan(f1):
        return InvariantResult("day0-ensemble-f1-floor", False,
                               "vacuous: day-0 stream planted no anomalous windows")
    model_errors = ensemble.member_error_count("model")
    if model_errors == 0:
        return InvariantResult(
            "day0-ensemble-f1-floor", False,
            "vacuous: the degraded model member was never consulted "
            "(day-0 must exercise the no-pipeline path)")
    ok = f1 >= DAY0_F1_FLOOR
    details = (f"day-0 window F1 {f1:.3f} vs floor {DAY0_F1_FLOOR:.2f} "
               f"({model_errors} degraded model calls absorbed)")
    return InvariantResult("day0-ensemble-f1-floor", ok, details)


@_invariant("ensemble-not-worse-than-worst-member", "detectors")
def check_ensemble_not_worse(context: CheckContext) -> InvariantResult:
    from .fuzzer import LogStreamFuzzer

    fuzzer = LogStreamFuzzer(
        systems=("bgl",), lines_per_system=160, anomaly_bursts=3,
        burst_length=(3, 6), parameter_noise=0.1, scenario="volume-burst",
    )
    stream = fuzzer.generate(context.seed)
    members = ("ewma", "lof", "rules")
    solo = {name: _ensemble_f1(stream, f"{name}:max",
                               window=context.window, step=context.step)[0]
            for name in members}
    combined, _ = _ensemble_f1(stream, "ewma,lof,rules:max",
                               window=context.window, step=context.step)
    if any(np.isnan(f1) for f1 in solo.values()) or np.isnan(combined):
        return InvariantResult("ensemble-not-worse-than-worst-member", False,
                               "vacuous: scenario stream planted no anomalous windows")
    worst = min(solo.values())
    ok = combined >= worst - 1e-9
    scored = " ".join(f"{name}={f1:.3f}" for name, f1 in solo.items())
    details = (f"ensemble F1 {combined:.3f} vs worst member {worst:.3f} "
               f"({scored})")
    return InvariantResult("ensemble-not-worse-than-worst-member", ok, details)


@_invariant("degraded-model-keeps-unsupervised-live", "detectors")
def check_degraded_model_fallback(context: CheckContext) -> InvariantResult:
    stream = _day0_stream(context)
    rendered: list[list[str]] = []
    anomalies = 0
    model_errors = 0
    for shards in (1, 2, 3):
        registry = MetricsRegistry()
        ensemble = ensemble_from_spec(DEFAULT_DETECTORS_SPEC, registry=registry)
        runtime = InferenceRuntime.from_ensemble(
            ensemble, shards=shards, window=context.window,
            step=context.step, max_batch=context.max_batch,
            max_latency=None, backpressure="block", registry=registry,
        )
        for record in stream.records:
            runtime.submit(record)
        reports = runtime.drain()
        rendered.append(render_reports(reports))
        anomalies = sum(1 for report in reports if report.is_anomalous)
        model_errors = ensemble.member_error_count("model")
    identical = rendered[0] == rendered[1] == rendered[2]
    ok = identical and anomalies > 0 and model_errors > 0
    details = (f"{anomalies} anomalies raised with the model member down "
               f"({model_errors} member errors), byte-identical at "
               f"shards 1/2/3" if ok else
               f"identical={identical} anomalies={anomalies} "
               f"model_errors={model_errors}")
    return InvariantResult("degraded-model-keeps-unsupervised-live", ok, details)


@_invariant("onboard-crash-never-demotes", "onboard")
def check_onboard_crash_never_demotes(context: CheckContext) -> InvariantResult:
    """A crash mid-onboarding must leave the serving weights untouched.

    Builds a tiny warm pipeline, takes its serving scores as the golden
    baseline, then runs an onboarding fine-tune whose first checkpoint
    write is killed by the ``trainer.checkpoint.write`` raise fault.
    The session dies before any promotion decision; the serving model's
    parameters and scores must be byte-identical to the baseline.
    """
    from ..config import LogSynergyConfig
    from ..core import (
        CheckpointStore, ControllerError, LogSynergyModel, OnboardingSession,
    )
    from ..core.pipeline import LogSynergy
    from ..logs.sequences import sliding_windows
    from .plan import InjectedFault

    config = LogSynergyConfig(
        d_model=16, num_heads=2, num_layers=1, d_ff=32, feature_dim=8,
        embedding_dim=16, epochs=2, batch_size=8, window=4, step=2,
        seed=context.seed, use_lei=False,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        pipeline = LogSynergy(config)
        pipeline.target_system = "day0"
        pipeline._system_index = {"source": 0, "day0": 1}
        pipeline.model = LogSynergyModel(
            config, num_systems=2, rng=np.random.default_rng(context.seed))
        stream = _day0_stream(context)
        sequences = sliding_windows(
            stream.by_system()["day0"], window=config.window, step=config.step)
        probe = sequences[-8:]
        baseline_state = {key: value.copy()
                          for key, value in pipeline.model.state_dict().items()}
        baseline_scores = pipeline.predict_proba(probe)

        store = CheckpointStore(context.workdir / "onboard-ckpt",
                                clock=lambda: 0.0)
        session = OnboardingSession(pipeline, gate_f1=0.0)
        plan = FaultPlan((
            FaultSpec("trainer.checkpoint.write", "raise", start=0, count=1),
        ), seed=context.seed)
        crashed = False
        with FaultInjector(plan, registry=registry) as injector:
            try:
                session.run("day0", sequences, store=store)
            except (ControllerError, InjectedFault):
                crashed = True
        after_state = pipeline.model.state_dict()
        after_scores = pipeline.predict_proba(probe)

    if injector.total_fired == 0:
        return InvariantResult(
            "onboard-crash-never-demotes", False,
            "vacuous: the checkpoint-write fault never fired")
    if not crashed:
        return InvariantResult(
            "onboard-crash-never-demotes", False,
            "the injected checkpoint crash did not abort the session")
    weights_intact = (
        set(baseline_state) == set(after_state)
        and all(np.array_equal(baseline_state[key], after_state[key])
                for key in baseline_state))
    scores_intact = np.array_equal(np.asarray(baseline_scores),
                                   np.asarray(after_scores))
    not_promoted = session.state != "promoted"
    ok = weights_intact and scores_intact and not_promoted
    details = (f"serving weights and {len(probe)} probe scores byte-identical "
               f"after mid-onboarding crash (session state {session.state})"
               if ok else
               f"weights_intact={weights_intact} scores_intact={scores_intact} "
               f"session_state={session.state}")
    return InvariantResult("onboard-crash-never-demotes", ok, details)
